"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see DESIGN.md for the per-experiment index).  The ``--paper-scale``
flag switches to the full-size configuration for users with hours of CPU/GPU
time to spare.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def record_regenerated_tables(request, capsys):
    """Persist each benchmark's printed table/figure under ``benchmarks/results/``.

    pytest captures stdout, so the regenerated tables would otherwise be
    invisible in a default ``--benchmark-only`` run; this fixture writes them
    to one text file per benchmark (consumed by EXPERIMENTS.md) and re-emits
    them so ``-s`` runs still show them inline.
    """
    yield
    captured = capsys.readouterr()
    if captured.out.strip():
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{request.node.name}.txt").write_text(captured.out)
        sys.stdout.write(captured.out)


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the experiments at the paper's full node counts and epochs (very slow)",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def scale(paper_scale):
    """Common scale parameters used by the table benchmarks."""
    if paper_scale:
        return {
            "num_nodes": 207,
            "large_num_nodes": 2000,
            "num_steps": 2016,
            "epochs": 20,
            "batch_size": 32,
        }
    return {
        "num_nodes": 32,
        "large_num_nodes": 40,
        "num_steps": 700,
        "epochs": 3,
        "batch_size": 16,
    }
