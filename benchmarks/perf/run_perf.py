"""Micro-benchmark runner for the large-graph hot paths.

Times the three costs that dominate SAGDFN training at Table VI/VII scales
(N = 200 / 2000 / 10000 nodes):

* ``attention`` — the sparse spatial multi-head attention forward, both the
  vectorised batched-matmul path (:meth:`forward`) and the seed's per-head
  loop (:meth:`forward_looped`), at float32 and float64;
* ``gconv`` — one :class:`FastGraphConv` forward over the slim adjacency;
* ``train_step`` — one full SAGDFN forward + backward + optimiser step;
* ``serve`` — frozen-graph :class:`~repro.serve.ForecastService` request
  latency (p50/p95) and throughput at batch sizes 1 / 8 / 32;
* ``scaling`` — the memory-bounded large-N pathway: wall time and peak
  memory (tracemalloc + RSS high watermark) of one chunked SNS + attention
  forward at N ∈ {500, 2000, 5000, 10000}, with a bit-identity check against
  the unchunked path at every N where both are run;
* ``recurrence`` — the fused encoder–decoder hot path (schema v4): frozen-
  graph forward wall time of the pre-fusion per-gate reference loop, the
  fused autograd forward and the no-grad serving kernel (plus per-step
  times and max relative deviations), and the serve throughput-vs-batch
  curve of the kernel.  ``--assert-recurrence-speedup`` /
  ``--assert-serve-batch-growth`` gate CI on the fused speedup and on the
  batch-8-vs-batch-1 throughput ratio;
* ``backends`` — per-op wall time of the three registry ops (attention
  pair scoring, diffusion aggregation, fused GRU gates) on every built-in
  execution backend (schema v5).  Unavailable backends are recorded with a
  reason instead of numbers; ``--assert-backend-speedup`` gates CI on the
  numba-vs-numpy pair-scoring speedup (and fails when numba is absent).
  ``--backend`` reruns the whole suite on a specific backend by routing
  the model-level benches through ``REPRO_BACKEND``;
* ``cluster`` — multi-worker serving (schema v6): a frozen bundle served
  through :class:`~repro.serve.ServingCluster` at ``--cluster-workers``
  (default 1/2/4), recording throughput, request-level p50/p95 latency
  under concurrent load, and per-worker-count ``scaling_efficiency``
  (throughput over ``workers ×`` the 1-worker throughput).
  ``--assert-cluster-efficiency`` gates CI on the efficiency of every
  multi-worker entry; single-core hosts plateau near ``1/workers``.
* ``online`` — stateful online serving (schema v7): replays a synthetic
  stream through a :class:`~repro.serve.SessionManager` (push and forecast
  throughput), then measures the drift hot-swap on the underlying
  :class:`~repro.serve.ForecastService` — ``swap_latency_ms``, forecast p95
  while a background thread swaps the kernel in a loop (every request must
  complete), and the bitwise ``swap_parity`` of a hot-swapped service
  against a cold start from the same index set.
  ``--assert-swap-parity`` gates CI on that bitwise check.
* ``faults`` — fault tolerance (schema v8): the same concurrent burst is
  served twice through a supervised cluster, fault-free and under a seeded
  :class:`~repro.serve.FaultPlan` that SIGKILLs every worker once —
  recording throughput retention, how every request resolved (nothing may
  hang), and ``recovery_s``, the post-burst time the supervisor needed to
  respawn the pool to full strength.  ``--assert-fault-recovery`` gates CI
  on zero unresolved requests, a fully restored pool with no parked
  worker, and recovery within the restart backoff ceiling.

Results are written as JSON (default: ``BENCH_attention.json`` at the repo
root) so subsequent PRs have a perf trajectory to compare against::

    PYTHONPATH=src python benchmarks/perf/run_perf.py                 # N = 200, 2000
    PYTHONPATH=src python benchmarks/perf/run_perf.py --smoke         # CI: N = 200 only
    PYTHONPATH=src python benchmarks/perf/run_perf.py --sizes 200 2000 10000
    PYTHONPATH=src python benchmarks/perf/run_perf.py --scaling-only \\
        --scaling-sizes 2000 --assert-scaling-peak-mb 256             # large-N smoke

The headline ``attention_speedup_vs_seed`` compares the vectorised kernel
under the engine's float32 policy against the seed per-head loop at the
seed's pinned float64 — i.e. the combined effect of this PR's two hot-path
changes.  Per-dtype numbers are also recorded for apples-to-apples reading.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.backend import BackendUnavailableError, get_backend, resolve_backend_name
from repro.backend.registry import ENV_VAR as BACKEND_ENV_VAR
from repro.core import (
    SAGDFN,
    SAGDFNConfig,
    SignificantNeighborsSampling,
    SparseSpatialMultiHeadAttention,
    FastGraphConv,
)
from repro.nn.loss import masked_mae
from repro.nn.module import Parameter
from repro.optim import Adam, clip_grad_norm
from repro.serve import ForecastService
from repro.tensor import Tensor, default_dtype, no_grad

SCHEMA_VERSION = 8
DEFAULT_SIZES = (200, 2000)
BACKEND_BENCH_NAMES = ("numpy", "numba")
SCALING_SIZES = (500, 2000, 5000, 10000)
SERVE_BATCH_SIZES = (1, 8, 32)
CLUSTER_WORKERS = (1, 2, 4)
RECURRENCE_HISTORY = 12
RECURRENCE_HORIZON = 12


def _peak_rss_mb() -> float:
    """Process RSS high watermark in MiB (monotone; Linux reports KiB)."""
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return usage / divisor


def _traced_peak_mb(fn) -> float:
    """Peak tracemalloc allocation (MiB) while running ``fn`` once."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def _time(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in milliseconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def bench_attention(num_nodes: int, m: int, heads: int, embedding_dim: int,
                    ffn_hidden: int, repeats: int, dtype: str,
                    include_loop: bool) -> dict[str, float]:
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        attention = SparseSpatialMultiHeadAttention(
            embedding_dim=embedding_dim, num_heads=heads, ffn_hidden=ffn_hidden, seed=0
        )
        embeddings = Parameter(rng.normal(size=(num_nodes, embedding_dim)), name="embeddings")
        index_set = rng.choice(num_nodes, size=m, replace=False)

        timings = {
            "attention_vectorized_ms": _time(
                lambda: attention(embeddings, index_set), repeats
            )
        }
        if include_loop:
            timings["attention_loop_ms"] = _time(
                lambda: attention.forward_looped(embeddings, index_set), repeats
            )
        return timings


def bench_gconv(num_nodes: int, m: int, hidden: int, repeats: int, dtype: str) -> float:
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        conv = FastGraphConv(input_dim=hidden, output_dim=hidden, diffusion_steps=2, seed=0)
        x = Tensor(rng.normal(size=(1, num_nodes, hidden)))
        slim = Tensor(np.abs(rng.random((num_nodes, m))))
        index_set = rng.choice(num_nodes, size=m, replace=False)
        return _time(lambda: conv(x, slim, index_set), repeats)


def bench_train_step(num_nodes: int, m: int, heads: int, embedding_dim: int,
                     ffn_hidden: int, hidden: int, repeats: int, dtype: str) -> float:
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        config = SAGDFNConfig(
            num_nodes=num_nodes, history=6, horizon=6, embedding_dim=embedding_dim,
            num_significant=m, top_k=max(1, int(m * 0.8)), hidden_size=hidden,
            num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        x = rng.normal(size=(2, 6, num_nodes, config.input_dim))
        y = np.abs(rng.normal(size=(2, 6, num_nodes, 1))) + 1.0

        def step():
            model.zero_grad()
            loss = masked_mae(model(Tensor(x)), Tensor(y), null_value=0.0)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()

        return _time(step, repeats)


def bench_serve(num_nodes: int, m: int, heads: int, embedding_dim: int,
                ffn_hidden: int, hidden: int, repeats: int,
                batch_sizes=SERVE_BATCH_SIZES, dtype: str = "float32") -> dict:
    """Frozen-graph serving latency/throughput at several batch sizes.

    Builds a SAGDFN under the float32 policy, freezes its graph into a
    :class:`ForecastService` and times ``service.predict`` — the exact
    per-request hot path of ``python -m repro.serve``.
    """
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        config = SAGDFNConfig(
            num_nodes=num_nodes, history=6, horizon=6, embedding_dim=embedding_dim,
            num_significant=min(m, num_nodes), top_k=max(1, int(min(m, num_nodes) * 0.8)),
            hidden_size=hidden, num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)
        service = ForecastService(model)
        samples = max(5, repeats)

        results = []
        for batch_size in batch_sizes:
            windows = rng.normal(
                size=(batch_size, config.history, num_nodes, config.input_dim)
            )
            service.predict(windows)  # warm-up
            latencies = []
            for _ in range(samples):
                start = time.perf_counter()
                service.predict(windows)
                latencies.append((time.perf_counter() - start) * 1000.0)
            p50 = float(np.percentile(latencies, 50))
            p95 = float(np.percentile(latencies, 95))
            results.append(
                {
                    "batch_size": int(batch_size),
                    "latency_p50_ms": p50,
                    "latency_p95_ms": p95,
                    "throughput_rps": batch_size / (p50 / 1000.0) if p50 > 0 else float("inf"),
                }
            )
            print(
                f"serve N={num_nodes:>6} batch={batch_size:>3}: "
                f"p50 {p50:.2f} ms, p95 {p95:.2f} ms, "
                f"{results[-1]['throughput_rps']:.1f} req/s",
                flush=True,
            )
        return {
            "num_nodes": int(num_nodes),
            "dtype": dtype,
            "frozen_graph": True,
            "samples": int(samples),
            "results": results,
        }


def bench_recurrence(sizes, m, heads, embedding_dim, ffn_hidden, hidden, repeats,
                     dtype: str = "float32", history: int = RECURRENCE_HISTORY,
                     horizon: int = RECURRENCE_HORIZON,
                     batch_sizes=SERVE_BATCH_SIZES) -> dict:
    """Fused encoder–decoder hot path over a frozen graph (schema v4).

    For each ``N`` builds a SAGDFN, freezes its graph into a
    :class:`ForecastService`, and times the ``history + horizon``-step
    recurrence three ways on the same batch-1 window:

    * ``reference_ms`` — :meth:`forward_reference`, the pre-fusion per-gate
      concat loop (the seed implementation's math and cost);
    * ``fused_ms`` — the fused autograd forward (shared diffusion states,
      gate fusion, input-side precompute);
    * ``kernel_ms`` — the raw-ndarray no-grad serving kernel behind
      ``service.predict`` (the per-request production path);
    * ``train_*_ms`` — the same fused-vs-reference comparison through
      forward *plus* backward (the training direction, where the fused
      path's smaller autograd graph also pays).

    The recorded ``max_rel_diff_*`` values document the ≤1e-10 equivalence
    of both fast paths against the reference.  The serve throughput-vs-batch
    curve replays ``service.predict`` at growing batch sizes
    (``throughput_batch8_over_batch1`` summarises it; on a single-core host
    the curve is roughly flat because every op already saturates the core at
    batch 1 — multi-core BLAS bends it upward).
    """
    entries = []
    serve_curve = []
    with default_dtype(dtype):
        for num_nodes in sizes:
            m_eff = min(m, num_nodes)
            rng = np.random.default_rng(0)
            config = SAGDFNConfig(
                num_nodes=num_nodes, history=history, horizon=horizon,
                embedding_dim=embedding_dim, num_significant=m_eff,
                top_k=max(1, int(m_eff * 0.8)), hidden_size=hidden,
                num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
            )
            model = SAGDFN(config)
            model.refresh_graph(0)
            service = ForecastService(model)
            forecaster = model.forecaster
            adjacency = service._adjacency_tensor
            degree_scale = service._degree_scale_tensor
            index_set = service.frozen.index_set
            window = rng.normal(size=(1, history, num_nodes, config.input_dim))
            x = Tensor(window)

            with no_grad():
                reference = forecaster.forward_reference(
                    x, adjacency, index_set, degree_scale=degree_scale
                ).data
                fused = forecaster(
                    x, adjacency, index_set, degree_scale=degree_scale
                ).data
            kernel = service.predict(window)
            scale_ref = np.abs(reference).max()

            def time_no_grad(fn):
                with no_grad():
                    return _time(fn, repeats)

            reference_ms = time_no_grad(
                lambda: forecaster.forward_reference(
                    x, adjacency, index_set, degree_scale=degree_scale
                )
            )
            fused_ms = time_no_grad(
                lambda: forecaster(x, adjacency, index_set, degree_scale=degree_scale)
            )
            kernel_ms = _time(lambda: service.predict(window), repeats)

            def train_direction(forward):
                model.zero_grad()
                forward(x, adjacency, index_set, degree_scale=degree_scale).sum().backward()

            model.train()
            train_fused_ms = _time(lambda: train_direction(forecaster.forward), repeats)
            train_reference_ms = _time(
                lambda: train_direction(forecaster.forward_reference), repeats
            )
            model.eval()
            steps = history + horizon
            entry = {
                "num_nodes": int(num_nodes),
                "num_significant": int(m_eff),
                "dtype": dtype,
                "steps": int(steps),
                "reference_ms": reference_ms,
                "fused_ms": fused_ms,
                "kernel_ms": kernel_ms,
                "fused_speedup": reference_ms / fused_ms,
                "kernel_speedup": reference_ms / kernel_ms,
                "train_fused_ms": train_fused_ms,
                "train_reference_ms": train_reference_ms,
                "train_speedup": train_reference_ms / train_fused_ms,
                "per_step_reference_ms": reference_ms / steps,
                "per_step_fused_ms": fused_ms / steps,
                "per_step_kernel_ms": kernel_ms / steps,
                "max_rel_diff_fused": float(np.abs(fused - reference).max() / scale_ref),
                "max_rel_diff_kernel": float(np.abs(kernel - reference).max() / scale_ref),
            }
            entries.append(entry)
            print(
                f"recurrence N={num_nodes:>6} M={m_eff:>3} {dtype}: "
                f"reference {reference_ms:.1f} ms, fused {fused_ms:.1f} ms "
                f"({entry['fused_speedup']:.2f}x), kernel {kernel_ms:.1f} ms "
                f"({entry['kernel_speedup']:.2f}x), train fwd+bwd "
                f"{train_reference_ms:.0f}->{train_fused_ms:.0f} ms "
                f"({entry['train_speedup']:.2f}x), "
                f"rel diff fused {entry['max_rel_diff_fused']:.2e} "
                f"kernel {entry['max_rel_diff_kernel']:.2e}",
                flush=True,
            )

            if num_nodes == max(sizes):
                samples = max(5, repeats)
                for batch_size in batch_sizes:
                    windows = rng.normal(
                        size=(batch_size, history, num_nodes, config.input_dim)
                    )
                    service.predict(windows)  # warm-up (allocates the workspace)
                    latencies = []
                    for _ in range(samples):
                        start = time.perf_counter()
                        service.predict(windows)
                        latencies.append((time.perf_counter() - start) * 1000.0)
                    p50 = float(np.percentile(latencies, 50))
                    serve_curve.append(
                        {
                            "batch_size": int(batch_size),
                            "latency_p50_ms": p50,
                            "throughput_rps": batch_size / (p50 / 1000.0)
                            if p50 > 0 else float("inf"),
                        }
                    )
                    print(
                        f"recurrence serve N={num_nodes:>6} batch={batch_size:>3}: "
                        f"p50 {p50:.2f} ms, "
                        f"{serve_curve[-1]['throughput_rps']:.1f} req/s",
                        flush=True,
                    )

    by_batch = {entry["batch_size"]: entry["throughput_rps"] for entry in serve_curve}
    growth = None
    if 1 in by_batch and 8 in by_batch and by_batch[1] > 0:
        growth = by_batch[8] / by_batch[1]
    return {
        "history": int(history),
        "horizon": int(horizon),
        "hidden_size": int(hidden),
        "dtype": dtype,
        "results": entries,
        "serve_throughput": serve_curve,
        "throughput_batch8_over_batch1": growth,
    }


def bench_scaling(sizes, m, heads, embedding_dim, ffn_hidden, repeats,
                  memory_budget_mb, equivalence_max_n, dtype: str = "float32") -> dict:
    """Memory-bounded SNS + attention forward at growing N.

    Each entry times one chunked forward (index-set sampling followed by the
    node-tiled attention under ``no_grad``) and records its tracemalloc peak
    — ``peak_mem_mb``, the per-entry number the ``--assert-scaling-peak-mb``
    gate checks.  ``peak_rss_mb`` is the *process-lifetime* RSS high
    watermark at that point (``ru_maxrss`` cannot be reset on Linux), so it
    is context for the whole run — it includes every earlier bench section
    and the deliberately unbounded unchunked comparison runs — not a bound
    on the chunked forward itself.  At every ``N <= equivalence_max_n`` the
    unchunked path is also run and the two index sets / slim adjacencies are
    compared **bitwise** — the chunked pathway's core guarantee.
    """
    entries = []
    with default_dtype(dtype):
        for num_nodes in sizes:
            m_eff = min(m, num_nodes)
            top_k = max(1, int(m_eff * 0.8))
            rng = np.random.default_rng(0)
            embeddings_np = rng.normal(size=(num_nodes, embedding_dim))
            sampler = SignificantNeighborsSampling(
                num_nodes, m_eff, top_k, seed=0, memory_budget_mb=memory_budget_mb
            )
            attention = SparseSpatialMultiHeadAttention(
                embedding_dim=embedding_dim, num_heads=heads, ffn_hidden=ffn_hidden,
                seed=0, memory_budget_mb=memory_budget_mb,
            )
            embeddings = Tensor(embeddings_np)
            result: dict = {}

            def forward(sampler=sampler, attention=attention, result=result):
                index_set = sampler.sample(embeddings_np, explore=False)
                with no_grad():
                    adjacency = attention(embeddings, index_set)
                result["index_set"], result["adjacency"] = index_set, adjacency.data

            wall_ms = _time(forward, repeats)
            peak_mem_mb = _traced_peak_mb(forward)

            entry = {
                "num_nodes": int(num_nodes),
                "num_significant": int(m_eff),
                "dtype": dtype,
                "wall_ms": wall_ms,
                "peak_mem_mb": peak_mem_mb,
                "peak_rss_mb": _peak_rss_mb(),
                "within_budget": bool(peak_mem_mb <= memory_budget_mb),
                "chunked_equals_unchunked": None,
                "unchunked_peak_mem_mb": None,
            }

            if num_nodes <= equivalence_max_n:
                plain_sampler = SignificantNeighborsSampling(num_nodes, m_eff, top_k, seed=0)
                plain_attention = SparseSpatialMultiHeadAttention(
                    embedding_dim=embedding_dim, num_heads=heads, ffn_hidden=ffn_hidden,
                    seed=0,
                )
                plain: dict = {}

                def forward_plain():
                    index_set = plain_sampler.sample(embeddings_np, explore=False)
                    with no_grad():
                        adjacency = plain_attention(embeddings, index_set)
                    plain["index_set"], plain["adjacency"] = index_set, adjacency.data

                entry["unchunked_peak_mem_mb"] = _traced_peak_mb(forward_plain)
                entry["chunked_equals_unchunked"] = bool(
                    np.array_equal(result["index_set"], plain["index_set"])
                    and np.array_equal(result["adjacency"], plain["adjacency"])
                )

            entries.append(entry)
            equal = entry["chunked_equals_unchunked"]
            print(
                f"scaling N={num_nodes:>6} M={m_eff:>3}: {wall_ms:.1f} ms, "
                f"peak {peak_mem_mb:.1f} MiB (budget {memory_budget_mb} MiB, "
                f"rss {entry['peak_rss_mb']:.0f} MiB)"
                + (f", unchunked peak {entry['unchunked_peak_mem_mb']:.1f} MiB, "
                   f"bitwise-equal={equal}" if equal is not None else ""),
                flush=True,
            )
    return {
        "memory_budget_mb": float(memory_budget_mb),
        "embedding_dim": int(embedding_dim),
        "num_heads": int(heads),
        "ffn_hidden": int(ffn_hidden),
        "dtype": dtype,
        "results": entries,
    }


def bench_backends(num_nodes, m, heads, embedding_dim, ffn_hidden, hidden,
                   repeats, batch: int = 8, dtype: str = "float64") -> dict:
    """Per-op wall time of the three registry ops on every built-in backend.

    Times the raw :class:`~repro.backend.OpsBackend` entry points —
    ``pair_scores`` (attention scoring, the op the
    ``--assert-backend-speedup`` CI gate watches), the in-place
    ``diffusion_aggregate_`` and the serving GRU gate chain
    (``fused_gru_gates_`` + ``fused_gru_update_``) — on identical float64
    inputs, under ``no_grad`` so jitted backends take their fast path.
    Backends that cannot be constructed on this host (numba without the
    numba package) are recorded as unavailable with the reason, never
    skipped silently.  Each available non-reference backend also records
    its max relative deviation from the numpy pair scores, which must sit
    inside the documented 1e-10 envelope.
    """
    rng = np.random.default_rng(0)
    m_eff = min(m, num_nodes)
    embeddings = Tensor(rng.normal(size=(num_nodes, embedding_dim)).astype(dtype))
    neighbours = Tensor(rng.normal(size=(m_eff, embedding_dim)).astype(dtype))
    w1 = Tensor(0.1 * rng.normal(size=(heads, 2 * embedding_dim, ffn_hidden)).astype(dtype))
    b1 = Tensor(0.1 * rng.normal(size=(heads, ffn_hidden)).astype(dtype))
    w2 = Tensor(0.1 * rng.normal(size=(heads, ffn_hidden, 1)).astype(dtype))
    b2 = Tensor(0.1 * rng.normal(size=(heads, 1)).astype(dtype))

    adjacency = np.abs(rng.random((num_nodes, m_eff))).astype(dtype)
    gathered = rng.normal(size=(m_eff, batch, hidden)).astype(dtype)
    previous = rng.normal(size=(num_nodes, batch, hidden)).astype(dtype)
    scale = (1.0 / (adjacency.sum(axis=1, keepdims=True) + 1.0))[:, :, None]
    diffusion_out = np.empty_like(previous)

    gates_src = rng.normal(size=(num_nodes, batch, 2 * hidden)).astype(dtype)
    hidden_src = rng.normal(size=(num_nodes, batch, hidden)).astype(dtype)
    candidate_src = rng.normal(size=(num_nodes, batch, hidden)).astype(dtype)
    gates_buf = np.empty_like(gates_src)
    hidden_buf = np.empty_like(hidden_src)
    candidate_buf = np.empty_like(candidate_src)
    update_buf = np.empty_like(hidden_src)
    scratch = np.empty_like(hidden_src)

    results = []
    reference_scores = None
    for name in BACKEND_BENCH_NAMES:
        try:
            backend = get_backend(name)
        except BackendUnavailableError as exc:
            results.append({"backend": name, "available": False, "reason": str(exc)})
            print(f"backends {name}: unavailable ({exc})", flush=True)
            continue

        def time_op(fn):
            with no_grad():
                return _time(fn, repeats)

        def run_pair_scores():
            return backend.pair_scores(embeddings, neighbours, w1, b1, w2, b2)

        def run_diffusion():
            backend.diffusion_aggregate_(
                adjacency, gathered, previous, scale, diffusion_out
            )

        def run_gates():
            # The in-place chain mutates its buffers; refill from the
            # pristine sources each call so every repeat sees the same
            # inputs (the copy cost is identical across backends).  The
            # update gate goes through a contiguous copy exactly as the
            # serving kernel's ``_step`` does.
            np.copyto(gates_buf, gates_src)
            np.copyto(hidden_buf, hidden_src)
            np.copyto(candidate_buf, candidate_src)
            backend.fused_gru_gates_(gates_buf)
            np.copyto(update_buf, gates_buf[..., hidden:])
            backend.fused_gru_update_(
                hidden_buf, update_buf, candidate_buf, scratch
            )

        entry = {
            "backend": name,
            "available": True,
            "pair_scores_ms": time_op(run_pair_scores),
            "diffusion_aggregate_ms": time_op(run_diffusion),
            "fused_gru_gates_ms": time_op(run_gates),
        }
        with no_grad():
            scores = run_pair_scores().data
        if reference_scores is None:
            reference_scores = scores
        else:
            entry["pair_scores_max_rel_diff"] = float(
                np.abs(scores - reference_scores).max()
                / max(np.abs(reference_scores).max(), 1e-30)
            )
        results.append(entry)
        print(
            f"backends {name} N={num_nodes:>6} M={m_eff:>3} {dtype}: "
            f"pair scores {entry['pair_scores_ms']:.2f} ms, "
            f"diffusion {entry['diffusion_aggregate_ms']:.3f} ms, "
            f"gates {entry['fused_gru_gates_ms']:.3f} ms"
            + (f", rel diff {entry['pair_scores_max_rel_diff']:.2e}"
               if "pair_scores_max_rel_diff" in entry else ""),
            flush=True,
        )

    by_name = {entry["backend"]: entry for entry in results}
    speedup = None
    if by_name.get("numba", {}).get("available"):
        speedup = (by_name["numpy"]["pair_scores_ms"]
                   / by_name["numba"]["pair_scores_ms"])
    return {
        "num_nodes": int(num_nodes),
        "num_significant": int(m_eff),
        "batch_size": int(batch),
        "hidden_size": int(hidden),
        "dtype": dtype,
        "results": results,
        "attention_speedup_numba_over_numpy": speedup,
    }


def bench_cluster(num_nodes, m, heads, embedding_dim, ffn_hidden, hidden,
                  workers_list=CLUSTER_WORKERS, requests: int = 64,
                  max_batch: int = 8, dtype: str = "float32",
                  history: int = 6, horizon: int = 6) -> dict:
    """Multi-worker serving throughput and scaling efficiency (schema v6).

    Freezes one SAGDFN into a bundle, then serves the same ``requests``
    synthetic windows through a :class:`~repro.serve.ServingCluster` at
    each worker count.  All windows are submitted up front (concurrent
    load — the asyncio-front-door pattern), so per-request latency
    includes queueing behind the micro-batchers, which is what a caller
    of a saturated cluster actually observes.  ``scaling_efficiency`` is
    ``throughput / (workers * single_worker_throughput)`` — 1.0 is ideal
    linear scaling; a single-core host pins every worker to the same core
    and lands near ``1/workers``, so gates on this number belong on
    multi-core CI/bench boxes.
    """
    import tempfile

    from repro.serve.cluster import ServingCluster
    from repro.utils import save_bundle

    m_eff = min(m, num_nodes)
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        config = SAGDFNConfig(
            num_nodes=num_nodes, history=history, horizon=horizon,
            embedding_dim=embedding_dim, num_significant=m_eff,
            top_k=max(1, int(m_eff * 0.8)), hidden_size=hidden,
            num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)

    entries = []
    single_rps = None
    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = save_bundle(model, Path(tmp) / "bench_bundle")
        windows = rng.normal(
            size=(requests, history, num_nodes, config.input_dim)
        )
        for workers in workers_list:
            start_cluster = time.perf_counter()
            with ServingCluster(bundle_path, workers=workers,
                                max_batch=max_batch) as cluster:
                startup_s = time.perf_counter() - start_cluster
                # Warm every worker (first forward allocates the pinned
                # workspace) before the timed burst.
                for future in [cluster.submit(windows[i % requests])
                               for i in range(workers)]:
                    future.result(timeout=300)
                latencies: list[float] = []
                begin = time.perf_counter()
                futures = []
                for window in windows:
                    submitted = time.perf_counter()
                    future = cluster.submit(window)
                    future.add_done_callback(
                        lambda f, s=submitted: latencies.append(
                            (time.perf_counter() - s) * 1000.0
                        )
                    )
                    futures.append(future)
                for future in futures:
                    future.result(timeout=600)
                elapsed = time.perf_counter() - begin
                stats = cluster.stats
            throughput = requests / elapsed if elapsed > 0 else float("inf")
            entry = {
                "workers": int(workers),
                "requests": int(requests),
                "startup_s": startup_s,
                "throughput_rps": throughput,
                "latency_p50_ms": float(np.percentile(latencies, 50)),
                "latency_p95_ms": float(np.percentile(latencies, 95)),
                "num_batches": int(stats.num_batches),
                "mean_batch_size": float(stats.mean_batch_size),
            }
            if workers == min(workers_list):
                # Per-worker baseline (= the 1-worker throughput when the
                # sweep starts at 1, the usual case).
                single_rps = throughput / workers
            entry["scaling_efficiency"] = (
                throughput / (workers * single_rps)
                if single_rps and single_rps > 0 else None
            )
            entries.append(entry)
            print(
                f"cluster N={num_nodes:>6} workers={workers}: "
                f"{throughput:.1f} req/s, p50 {entry['latency_p50_ms']:.1f} ms, "
                f"p95 {entry['latency_p95_ms']:.1f} ms, "
                f"efficiency {entry['scaling_efficiency']:.2f} "
                f"(startup {startup_s:.1f} s)",
                flush=True,
            )

    by_workers = {entry["workers"]: entry["throughput_rps"] for entry in entries}
    speedup_2 = None
    if 1 in by_workers and 2 in by_workers and by_workers[1] > 0:
        speedup_2 = by_workers[2] / by_workers[1]
    return {
        "num_nodes": int(num_nodes),
        "num_significant": int(m_eff),
        "requests": int(requests),
        "max_batch": int(max_batch),
        "dtype": dtype,
        "results": entries,
        "throughput_workers2_over_workers1": speedup_2,
    }


def bench_online(num_nodes, m, heads, embedding_dim, ffn_hidden, hidden,
                 repeats, steps: int = 96, dtype: str = "float32",
                 history: int = 6, horizon: int = 6) -> dict:
    """Stateful online serving: session throughput and hot-swap cost (schema v7).

    Freezes one SAGDFN into a v3 bundle (scaler statistics + drift record),
    replays a synthetic stream through a
    :class:`~repro.serve.SessionManager` (``push_rows_per_s``, forecast
    latency once the window has filled), then measures the cost and safety
    of the drift hot-swap on the underlying
    :class:`~repro.serve.ForecastService`:

    * ``swap_latency_ms`` — best-of-``repeats`` wall time of
      ``swap_index_set``, i.e. one re-run of the cold-load freeze path
      (slim adjacency + kernel rebuild) behind the atomic state flip;
    * ``forecast_during_swap_*`` — forecast p95 while a background thread
      swaps the kernel in a loop; every request must complete
      (``errors == 0``) because a forward only ever sees one complete
      generation;
    * ``swap_parity`` — the hot-swapped service's forecast compared
      **bitwise** against a cold-started service built from the same bundle
      with the same index set (the ``--assert-swap-parity`` CI gate).
    """
    import tempfile
    import threading

    from repro.data import StandardScaler
    from repro.serve.online import DriftConfig, SessionManager
    from repro.utils import save_bundle
    from repro.utils.checkpoint import load_bundle, rehydrate_model, rehydrate_scaler

    m_eff = min(m, num_nodes)
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        config = SAGDFNConfig(
            num_nodes=num_nodes, history=history, horizon=horizon,
            embedding_dim=embedding_dim, num_significant=m_eff,
            top_k=max(1, int(m_eff * 0.8)), hidden_size=hidden,
            num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)
        scaler = StandardScaler()
        scaler.fit(rng.normal(loc=3.0, scale=2.0, size=(max(steps, 64), num_nodes)))
        stream = np.abs(rng.normal(loc=3.0, scale=2.0, size=(steps, num_nodes))) + 1.0
        cov_channels = int(config.input_dim) - 1  # exog-free default scenario
        covariates = (rng.normal(size=(steps, num_nodes, cov_channels))
                      if cov_channels else None)

        with tempfile.TemporaryDirectory() as tmp:
            bundle_path = save_bundle(
                model, Path(tmp) / "online_bundle", scaler=scaler,
                # Record a drift config (v3 provenance) but push the check
                # cadence out of range so the throughput numbers measure the
                # steady-state push path, not the SNS re-run.
                drift=DriftConfig(check_every=10**6),
            )
            manager = SessionManager.from_checkpoint(bundle_path)

            begin = time.perf_counter()
            for t in range(steps):
                manager.push_observations(
                    "bench", stream[t:t + 1],
                    covariates=None if covariates is None
                    else covariates[t:t + 1],
                )
            push_elapsed = time.perf_counter() - begin
            push_rows_per_s = (steps / push_elapsed
                               if push_elapsed > 0 else float("inf"))

            samples = max(5, repeats)
            manager.forecast("bench")  # warm-up (allocates the workspace)
            latencies = []
            for _ in range(samples):
                start = time.perf_counter()
                manager.forecast("bench")
                latencies.append((time.perf_counter() - start) * 1000.0)
            forecast_p50 = float(np.percentile(latencies, 50))
            forecast_p95 = float(np.percentile(latencies, 95))

            service = manager.target  # single-process ForecastService
            frozen = np.asarray(service.frozen.index_set, dtype=np.int64)
            swap_rng = np.random.default_rng(1)
            fresh = np.sort(
                swap_rng.choice(num_nodes, size=frozen.size, replace=False)
            ).astype(np.int64)
            sets = [fresh, np.sort(frozen)]

            swap_times = []
            for i in range(max(repeats, 2)):
                start = time.perf_counter()
                service.swap_index_set(sets[i % 2])
                swap_times.append((time.perf_counter() - start) * 1000.0)
            swap_latency_ms = float(min(swap_times))

            window = rng.normal(
                size=(1, history, num_nodes, config.input_dim)
            )
            stop = threading.Event()
            swap_errors: list[str] = []

            def swapper():
                i = 0
                while not stop.is_set():
                    try:
                        service.swap_index_set(sets[i % 2])
                    except Exception as exc:  # diagnosed via the error count
                        swap_errors.append(repr(exc))
                        return
                    i += 1

            generation_before = service.generation
            swap_thread = threading.Thread(target=swapper, daemon=True)
            swap_thread.start()
            during = []
            predict_errors = 0
            for _ in range(max(20, samples)):
                start = time.perf_counter()
                try:
                    service.predict(window)
                except Exception:
                    predict_errors += 1
                during.append((time.perf_counter() - start) * 1000.0)
            stop.set()
            swap_thread.join(timeout=60)
            swaps_during = service.generation - generation_before
            during_p95 = float(np.percentile(during, 95))

            generation = service.swap_index_set(fresh)
            hot = service.predict(window)
            bundle = load_bundle(bundle_path)
            cold_model = rehydrate_model(bundle)
            cold_model._index_set = fresh.copy()
            cold_service = ForecastService(
                cold_model, scaler=rehydrate_scaler(bundle)
            )
            cold = cold_service.predict(window)
            parity = bool(np.array_equal(hot, cold))

    errors = int(predict_errors + len(swap_errors))
    print(
        f"online N={num_nodes:>6} M={m_eff:>3}: push {push_rows_per_s:.0f} rows/s, "
        f"forecast p50 {forecast_p50:.2f} ms p95 {forecast_p95:.2f} ms, "
        f"swap {swap_latency_ms:.1f} ms, during-swap p95 {during_p95:.2f} ms "
        f"({swaps_during} swaps, {errors} errors), parity={parity}",
        flush=True,
    )
    return {
        "num_nodes": int(num_nodes),
        "num_significant": int(m_eff),
        "dtype": dtype,
        "history": int(history),
        "horizon": int(horizon),
        "steps": int(steps),
        "push_rows_per_s": push_rows_per_s,
        "push_ms_per_step": push_elapsed * 1000.0 / steps,
        "forecast_p50_ms": forecast_p50,
        "forecast_p95_ms": forecast_p95,
        "forecast_rps": 1000.0 / forecast_p50 if forecast_p50 > 0 else float("inf"),
        "swap_latency_ms": swap_latency_ms,
        "forecast_during_swap_p95_ms": during_p95,
        "forecast_during_swap_requests": len(during),
        "forecast_during_swap_errors": errors,
        "swaps_during_forecast": int(swaps_during),
        "swap_parity": parity,
        "generation": int(generation),
    }


def bench_faults(num_nodes, m, heads, embedding_dim, ffn_hidden, hidden,
                 workers: int = 2, requests: int = 32, max_batch: int = 1,
                 seed: int = 0, dtype: str = "float32",
                 history: int = 6, horizon: int = 6,
                 restart_backoff_s: float = 0.1,
                 restart_backoff_ceiling_s: float = 8.0) -> dict:
    """Throughput and recovery under a standard kill schedule (schema v8).

    Runs the same concurrent burst twice through a supervised
    :class:`~repro.serve.ServingCluster`: once fault-free (the baseline)
    and once under a seeded :class:`~repro.serve.FaultPlan` that SIGKILLs
    every worker once.  Records how much throughput the faulted run
    retains, how every request resolved (``unresolved`` must be zero —
    nothing may hang), and how long after the burst the supervisor needed
    to respawn the pool to full strength.  ``recovery_s`` is gated against
    ``restart_backoff_ceiling_s`` by ``--assert-fault-recovery``.
    """
    import tempfile
    from concurrent.futures import TimeoutError as FutureTimeoutError

    from repro.serve.batching import DeadlineExceeded, Overloaded
    from repro.serve.cluster import ClusterError, ServingCluster
    from repro.serve.faults import FaultPlan
    from repro.utils import save_bundle

    m_eff = min(m, num_nodes)
    with default_dtype(dtype):
        rng = np.random.default_rng(0)
        config = SAGDFNConfig(
            num_nodes=num_nodes, history=history, horizon=horizon,
            embedding_dim=embedding_dim, num_significant=m_eff,
            top_k=max(1, int(m_eff * 0.8)), hidden_size=hidden,
            num_heads=heads, ffn_hidden=ffn_hidden, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)

    plan = FaultPlan(
        workers=workers, seed=seed,
        # The schedule is keyed by per-worker served *jobs*; max_batch=1
        # keeps jobs == requests, and halving the per-worker share keeps
        # every kill ordinal inside the burst even when re-dispatches skew
        # the round-robin split.
        horizon=max(2, requests // (2 * workers)),
        kills_per_worker=1,
    )

    def burst(cluster, windows):
        latencies: list[float] = []
        begin = time.perf_counter()
        futures = []
        for window in windows:
            submitted = time.perf_counter()
            future = cluster.submit(window)
            future.add_done_callback(
                lambda f, s=submitted: latencies.append(
                    (time.perf_counter() - s) * 1000.0
                )
            )
            futures.append(future)
        ok = typed_errors = unresolved = 0
        for future in futures:
            try:
                future.result(timeout=600)
            except (ClusterError, Overloaded, DeadlineExceeded):
                typed_errors += 1  # RingCorruptionError is a ClusterError
            except FutureTimeoutError:
                unresolved += 1
            else:
                ok += 1
        elapsed = time.perf_counter() - begin
        return {
            "ok": int(ok),
            "typed_errors": int(typed_errors),
            "unresolved": int(unresolved),
            "throughput_rps": (
                len(windows) / elapsed if elapsed > 0 else float("inf")
            ),
            "latency_p95_ms": float(np.percentile(latencies, 95))
            if latencies else None,
        }

    with tempfile.TemporaryDirectory() as tmp:
        bundle_path = save_bundle(model, Path(tmp) / "bench_bundle")
        windows = rng.normal(
            size=(requests, history, num_nodes, config.input_dim)
        )
        supervisor_kwargs = dict(
            workers=workers, max_batch=max_batch,
            supervise=True, supervise_interval_s=0.05,
            restart_backoff_s=restart_backoff_s,
            restart_backoff_ceiling_s=restart_backoff_ceiling_s,
        )
        with ServingCluster(bundle_path, **supervisor_kwargs) as cluster:
            for future in [cluster.submit(windows[i % requests])
                           for i in range(workers)]:
                future.result(timeout=300)
            baseline = burst(cluster, windows)

        with ServingCluster(bundle_path, fault_plan=plan,
                            **supervisor_kwargs) as cluster:
            faulted = burst(cluster, windows)
            # Recovery: time after the burst until the supervisor has the
            # full pool live again (respawns overlap the burst, so this is
            # often near zero).
            recover_begin = time.perf_counter()
            deadline = recover_begin + 120.0
            while (cluster.alive_workers < workers
                   and time.perf_counter() < deadline):
                time.sleep(0.02)
            recovery_s = time.perf_counter() - recover_begin
            health = cluster.health()
            pool_restored = health.num_alive == workers

    retention = (
        faulted["throughput_rps"] / baseline["throughput_rps"]
        if baseline["throughput_rps"] else None
    )
    print(
        f"faults N={num_nodes:>6} workers={workers}: baseline "
        f"{baseline['throughput_rps']:.1f} req/s -> faulted "
        f"{faulted['throughput_rps']:.1f} req/s "
        f"({faulted['ok']} ok / {faulted['typed_errors']} typed / "
        f"{faulted['unresolved']} unresolved), recovery {recovery_s:.2f} s, "
        f"{health.total_restarts} restart(s), {health.num_parked} parked",
        flush=True,
    )
    return {
        "num_nodes": int(num_nodes),
        "num_significant": int(m_eff),
        "workers": int(workers),
        "requests": int(requests),
        "max_batch": int(max_batch),
        "dtype": dtype,
        "plan": plan.summary(),
        "baseline": baseline,
        "faulted": faulted,
        "throughput_retention": retention,
        "recovery_s": recovery_s,
        "pool_restored": bool(pool_restored),
        "parked_workers": int(health.num_parked),
        "total_restarts": int(health.total_restarts),
        "redispatches": int(health.redispatches),
        "restart_backoff_s": float(restart_backoff_s),
        "restart_backoff_ceiling_s": float(restart_backoff_ceiling_s),
    }


def run(sizes, m, heads, embedding_dim, ffn_hidden, hidden, repeats,
        train_step_max_n, scaling_sizes=SCALING_SIZES, scaling_budget_mb=64.0,
        scaling_embedding_dim=64, scaling_equivalence_max_n=10_000,
        recurrence_sizes=None, cluster_workers=CLUSTER_WORKERS,
        cluster_requests=64, online_steps=96) -> dict:
    results = []
    for num_nodes in sizes:
        m_eff = min(m, num_nodes)
        for dtype in ("float32", "float64"):
            entry = {
                "num_nodes": int(num_nodes),
                "num_significant": int(m_eff),
                "dtype": dtype,
            }
            entry.update(
                bench_attention(num_nodes, m_eff, heads, embedding_dim, ffn_hidden,
                                repeats, dtype, include_loop=True)
            )
            if "attention_loop_ms" in entry:
                entry["attention_speedup"] = (
                    entry["attention_loop_ms"] / entry["attention_vectorized_ms"]
                )
            entry["gconv_ms"] = bench_gconv(num_nodes, m_eff, hidden, repeats, dtype)
            if num_nodes <= train_step_max_n:
                entry["train_step_ms"] = bench_train_step(
                    num_nodes, m_eff, heads, embedding_dim, ffn_hidden, hidden,
                    repeats, dtype
                )
            results.append(entry)
            print(
                f"N={num_nodes:>6} M={m_eff:>3} {dtype}: "
                f"attention vectorized {entry['attention_vectorized_ms']:.2f} ms, "
                f"loop {entry.get('attention_loop_ms', float('nan')):.2f} ms "
                f"({entry.get('attention_speedup', float('nan')):.2f}x), "
                f"gconv {entry['gconv_ms']:.2f} ms, "
                f"train step {entry.get('train_step_ms', float('nan')):.2f} ms",
                flush=True,
            )

    # Headline: vectorised kernel under the float32 policy vs the seed's
    # float64 per-head loop, per node count.
    headline = {}
    by_key = {(e["num_nodes"], e["dtype"]): e for e in results}
    for num_nodes in sizes:
        seed_entry = by_key.get((num_nodes, "float64"))
        new_entry = by_key.get((num_nodes, "float32"))
        if seed_entry and new_entry and "attention_loop_ms" in seed_entry:
            headline[str(num_nodes)] = (
                seed_entry["attention_loop_ms"] / new_entry["attention_vectorized_ms"]
            )

    # Serving hot path: frozen-graph latency/throughput on the largest
    # benchmarked graph that still allows a full train step (the serving
    # forward itself is the same cost at any N, scaled by the bench sizes).
    serve_n = min(max(sizes), train_step_max_n)
    serve = bench_serve(serve_n, min(m, serve_n), heads, embedding_dim,
                        ffn_hidden, hidden, repeats)

    # Large-N pathway: wall time + peak memory of the chunked SNS/attention
    # forward, with the bitwise chunked-vs-unchunked check.
    scaling = bench_scaling(scaling_sizes, m, heads, scaling_embedding_dim,
                            ffn_hidden, repeats, scaling_budget_mb,
                            scaling_equivalence_max_n)

    # Fused recurrence hot path: reference vs fused vs serving kernel, plus
    # the kernel's throughput-vs-batch curve.
    if recurrence_sizes is None:
        recurrence_sizes = [max(sizes)]
    recurrence = bench_recurrence(recurrence_sizes, m, heads, embedding_dim,
                                  ffn_hidden, hidden, repeats)

    # Per-op backend comparison at the largest benched N (2000 by default —
    # the size the numba speedup gate is specified at).
    backends = bench_backends(max(sizes), m, heads, embedding_dim, ffn_hidden,
                              hidden, repeats)

    # Multi-worker serving: throughput vs worker count at the serve size.
    cluster = bench_cluster(serve_n, m, heads, embedding_dim, ffn_hidden,
                            hidden, workers_list=cluster_workers,
                            requests=cluster_requests)

    # Stateful online serving: session throughput + hot-swap cost/parity.
    online = bench_online(serve_n, m, heads, embedding_dim, ffn_hidden,
                          hidden, repeats, steps=online_steps)

    # Fault tolerance: throughput retention and pool recovery under the
    # standard kill schedule.
    faults = bench_faults(serve_n, m, heads, embedding_dim, ffn_hidden,
                          hidden, requests=cluster_requests)

    return {
        "benchmark": "attention",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "num_significant": int(m),
            "num_heads": int(heads),
            "embedding_dim": int(embedding_dim),
            "ffn_hidden": int(ffn_hidden),
            "hidden_size": int(hidden),
            "repeats": int(repeats),
            "numpy": np.__version__,
        },
        "attention_speedup_vs_seed": headline,
        "serve": serve,
        "scaling": scaling,
        "recurrence": recurrence,
        "backends": backends,
        "cluster": cluster,
        "online": online,
        "faults": faults,
        "results": results,
    }


def validate_scaling(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid scaling section."""
    if not isinstance(section, dict) or not section.get("results"):
        raise ValueError("scaling section must hold a non-empty results list")
    if "memory_budget_mb" not in section:
        raise ValueError("scaling section missing key 'memory_budget_mb'")
    for entry in section["results"]:
        for key in ("num_nodes", "num_significant", "dtype", "wall_ms",
                    "peak_mem_mb", "peak_rss_mb", "within_budget",
                    "chunked_equals_unchunked"):
            if key not in entry:
                raise ValueError(f"scaling entry missing key {key!r}: {entry}")
        if entry["chunked_equals_unchunked"] is False:
            raise ValueError(
                f"chunked path diverged from the unchunked path at "
                f"N={entry['num_nodes']}"
            )


def validate_recurrence(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid recurrence section."""
    if not isinstance(section, dict) or not section.get("results"):
        raise ValueError("recurrence section must hold a non-empty results list")
    for key in ("history", "horizon", "serve_throughput",
                "throughput_batch8_over_batch1"):
        if key not in section:
            raise ValueError(f"recurrence section missing key {key!r}")
    for entry in section["results"]:
        for key in ("num_nodes", "dtype", "steps", "reference_ms", "fused_ms",
                    "kernel_ms", "fused_speedup", "kernel_speedup",
                    "train_fused_ms", "train_reference_ms", "train_speedup",
                    "per_step_fused_ms", "per_step_kernel_ms",
                    "max_rel_diff_fused", "max_rel_diff_kernel"):
            if key not in entry:
                raise ValueError(f"recurrence entry missing key {key!r}: {entry}")
    for entry in section["serve_throughput"]:
        for key in ("batch_size", "latency_p50_ms", "throughput_rps"):
            if key not in entry:
                raise ValueError(f"recurrence serve entry missing key {key!r}: {entry}")


def validate_backends(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid backends section."""
    if not isinstance(section, dict) or not section.get("results"):
        raise ValueError("backends section must hold a non-empty results list")
    for key in ("num_nodes", "num_significant", "dtype",
                "attention_speedup_numba_over_numpy"):
        if key not in section:
            raise ValueError(f"backends section missing key {key!r}")
    names = set()
    for entry in section["results"]:
        if "backend" not in entry or "available" not in entry:
            raise ValueError(f"backends entry missing identity keys: {entry}")
        names.add(entry["backend"])
        if entry["available"]:
            for key in ("pair_scores_ms", "diffusion_aggregate_ms",
                        "fused_gru_gates_ms"):
                if key not in entry:
                    raise ValueError(f"backends entry missing key {key!r}: {entry}")
        elif "reason" not in entry:
            raise ValueError(
                f"unavailable backend entry must record a reason: {entry}"
            )
    if "numpy" not in names:
        raise ValueError("backends section must include the numpy reference")


def validate_cluster(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid cluster section."""
    if not isinstance(section, dict) or not section.get("results"):
        raise ValueError("cluster section must hold a non-empty results list")
    for key in ("num_nodes", "requests", "max_batch", "dtype",
                "throughput_workers2_over_workers1"):
        if key not in section:
            raise ValueError(f"cluster section missing key {key!r}")
    for entry in section["results"]:
        for key in ("workers", "requests", "throughput_rps", "latency_p50_ms",
                    "latency_p95_ms", "scaling_efficiency", "num_batches",
                    "mean_batch_size"):
            if key not in entry:
                raise ValueError(f"cluster entry missing key {key!r}: {entry}")
        if entry["workers"] < 1:
            raise ValueError(f"cluster entry has invalid workers: {entry}")


def validate_online(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid online section."""
    if not isinstance(section, dict):
        raise ValueError("online section must be a dict")
    for key in ("num_nodes", "num_significant", "dtype", "steps",
                "push_rows_per_s", "push_ms_per_step", "forecast_p50_ms",
                "forecast_p95_ms", "forecast_rps", "swap_latency_ms",
                "forecast_during_swap_p95_ms", "forecast_during_swap_requests",
                "forecast_during_swap_errors", "swaps_during_forecast",
                "swap_parity", "generation"):
        if key not in section:
            raise ValueError(f"online section missing key {key!r}")
    if section["forecast_during_swap_errors"]:
        raise ValueError(
            f"{section['forecast_during_swap_errors']} request(s) errored "
            "during the concurrent hot-swap; in-flight requests must always "
            "complete"
        )


def validate_faults(section: dict) -> None:
    """Raise ``ValueError`` if ``section`` is not a valid faults section."""
    if not isinstance(section, dict):
        raise ValueError("faults section must be a dict")
    for key in ("num_nodes", "workers", "requests", "plan", "baseline",
                "faulted", "throughput_retention", "recovery_s",
                "pool_restored", "parked_workers", "total_restarts",
                "redispatches", "restart_backoff_s",
                "restart_backoff_ceiling_s"):
        if key not in section:
            raise ValueError(f"faults section missing key {key!r}")
    for name in ("baseline", "faulted"):
        entry = section[name]
        for key in ("ok", "typed_errors", "unresolved", "throughput_rps",
                    "latency_p95_ms"):
            if key not in entry:
                raise ValueError(
                    f"faults {name} entry missing key {key!r}: {entry}"
                )
        if entry["unresolved"]:
            raise ValueError(
                f"{entry['unresolved']} request(s) never resolved in the "
                f"{name} run; every future must resolve with a result or a "
                "typed error"
            )
    plan = section["plan"]
    for key in ("workers", "seed", "horizon", "events", "by_kind"):
        if key not in plan:
            raise ValueError(f"faults plan summary missing key {key!r}")


def validate_schema(report: dict) -> None:
    """Raise ``ValueError`` if ``report`` is not a valid benchmark report."""
    for key in ("benchmark", "schema_version", "config", "results",
                "attention_speedup_vs_seed", "serve", "scaling", "recurrence",
                "backends", "cluster", "online", "faults"):
        if key not in report:
            raise ValueError(f"missing top-level key {key!r}")
    if not isinstance(report["results"], list) or not report["results"]:
        raise ValueError("results must be a non-empty list")
    for entry in report["results"]:
        for key in ("num_nodes", "num_significant", "dtype",
                    "attention_vectorized_ms", "gconv_ms"):
            if key not in entry:
                raise ValueError(f"result entry missing key {key!r}: {entry}")
        if entry["dtype"] not in {"float32", "float64"}:
            raise ValueError(f"unexpected dtype {entry['dtype']!r}")
    serve = report["serve"]
    if not isinstance(serve, dict) or not serve.get("results"):
        raise ValueError("serve section must hold a non-empty results list")
    for entry in serve["results"]:
        for key in ("batch_size", "latency_p50_ms", "latency_p95_ms", "throughput_rps"):
            if key not in entry:
                raise ValueError(f"serve entry missing key {key!r}: {entry}")
    validate_scaling(report["scaling"])
    validate_recurrence(report["recurrence"])
    validate_backends(report["backends"])
    validate_cluster(report["cluster"])
    validate_online(report["online"])
    validate_faults(report["faults"])


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES),
                        help="node counts N to benchmark (default: 200 2000)")
    parser.add_argument("--m", type=int, default=40,
                        help="number of significant neighbours M (default: 40)")
    parser.add_argument("--heads", type=int, default=8)
    parser.add_argument("--embedding-dim", type=int, default=16)
    parser.add_argument("--ffn-hidden", type=int, default=32)
    parser.add_argument("--hidden", type=int, default=16,
                        help="GRU/gconv hidden size for the gconv and train-step benches")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--train-step-max-n", type=int, default=2000,
                        help="skip the train-step bench above this node count")
    parser.add_argument("--scaling-sizes", type=int, nargs="+",
                        default=list(SCALING_SIZES),
                        help="node counts of the large-N scaling bench")
    parser.add_argument("--scaling-budget-mb", type=float, default=64.0,
                        help="memory budget (MiB) of the chunked scaling forward")
    parser.add_argument("--scaling-embedding-dim", type=int, default=64,
                        help="embedding width of the scaling bench (larger than the "
                             "micro-bench default so the O(N*M*d) term dominates)")
    parser.add_argument("--scaling-equivalence-max-n", type=int, default=10_000,
                        help="run the unchunked path and the bitwise check up to this N")
    parser.add_argument("--scaling-only", action="store_true",
                        help="run (and write) only the scaling section")
    parser.add_argument("--assert-scaling-peak-mb", type=float, default=None,
                        help="exit non-zero if any scaling entry's tracemalloc peak "
                             "exceeds this many MiB")
    parser.add_argument("--recurrence-sizes", type=int, nargs="+", default=None,
                        help="node counts of the fused-recurrence bench "
                             "(default: the largest of --sizes)")
    parser.add_argument("--recurrence-only", action="store_true",
                        help="run (and write) only the recurrence section")
    parser.add_argument("--assert-recurrence-speedup", type=float, default=None,
                        help="exit non-zero if the serving-kernel-vs-reference "
                             "speedup of any recurrence entry is below this factor")
    parser.add_argument("--assert-serve-batch-growth", type=float, default=None,
                        help="exit non-zero if serve throughput at batch 8 is not "
                             "at least this multiple of the batch-1 throughput")
    parser.add_argument("--backend", type=str, default=None,
                        help="run the model-level benches on this execution "
                             "backend (routes through REPRO_BACKEND; the per-op "
                             "backends section always covers every built-in)")
    parser.add_argument("--backend-only", action="store_true",
                        help="run (and write) only the per-op backends section")
    parser.add_argument("--assert-backend-speedup", type=float, default=None,
                        help="exit non-zero unless the numba backend is available "
                             "and its attention pair-scoring speedup over numpy "
                             "is at least this factor")
    parser.add_argument("--cluster-workers", type=int, nargs="+",
                        default=list(CLUSTER_WORKERS),
                        help="worker counts of the multi-worker serving bench "
                             "(default: 1 2 4)")
    parser.add_argument("--cluster-requests", type=int, default=64,
                        help="requests per worker-count of the cluster bench")
    parser.add_argument("--cluster-only", action="store_true",
                        help="run (and write) only the cluster section")
    parser.add_argument("--assert-cluster-efficiency", type=float, default=None,
                        help="exit non-zero if the scaling efficiency of any "
                             "multi-worker cluster entry is below this fraction "
                             "(meaningful on multi-core hosts only)")
    parser.add_argument("--online-steps", type=int, default=96,
                        help="stream length replayed through the online "
                             "session bench (default: 96)")
    parser.add_argument("--online-only", action="store_true",
                        help="run (and write) only the online serving section")
    parser.add_argument("--assert-swap-parity", action="store_true",
                        help="exit non-zero unless the hot-swapped service's "
                             "forecast is bit-identical to a cold start from "
                             "the same index set (and no request errored "
                             "during the concurrent swap)")
    parser.add_argument("--fault-workers", type=int, default=2,
                        help="worker count of the fault-tolerance bench "
                             "(default: 2)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="FaultPlan seed of the fault-tolerance bench")
    parser.add_argument("--faults-only", action="store_true",
                        help="run (and write) only the fault-tolerance section")
    parser.add_argument("--assert-fault-recovery", action="store_true",
                        help="exit non-zero unless the faulted burst resolved "
                             "every request, the pool respawned to full "
                             "strength with no parked worker, and recovery "
                             "stayed within the restart backoff ceiling")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: smallest N only, single repeat")
    parser.add_argument("--output", type=Path, default=None,
                        help="report path (default: BENCH_attention.json at the repo "
                             "root, or BENCH_scaling.json with --scaling-only — the "
                             "scaling-only report has a reduced schema and must not "
                             "clobber the committed full benchmark)")
    args = parser.parse_args(argv)

    if any(size < 1 for size in args.sizes + args.scaling_sizes):
        parser.error("--sizes/--scaling-sizes values must be positive node counts")
    if args.recurrence_sizes is not None and any(s < 1 for s in args.recurrence_sizes):
        parser.error("--recurrence-sizes values must be positive node counts")
    if args.m < 1 or args.repeats < 1:
        parser.error("--m and --repeats must be >= 1")
    if args.fault_workers < 1:
        parser.error("--fault-workers must be >= 1")
    if any(w < 1 for w in args.cluster_workers) or args.cluster_requests < 1:
        parser.error("--cluster-workers/--cluster-requests must be >= 1")
    if args.online_steps < 8:
        parser.error("--online-steps must be >= 8 (the window must fill)")
    only_flags = {
        "--scaling-only": args.scaling_only,
        "--recurrence-only": args.recurrence_only,
        "--backend-only": args.backend_only,
        "--cluster-only": args.cluster_only,
        "--online-only": args.online_only,
        "--faults-only": args.faults_only,
    }
    if sum(only_flags.values()) > 1:
        parser.error(" and ".join(only_flags) + " are mutually exclusive")
    # Each --assert-* gate needs its section; a *different* --X-only drops it.
    for gate, value, section_flag in (
        ("--assert-scaling-peak-mb", args.assert_scaling_peak_mb, "--scaling-only"),
        ("--assert-recurrence-speedup", args.assert_recurrence_speedup,
         "--recurrence-only"),
        ("--assert-serve-batch-growth", args.assert_serve_batch_growth,
         "--recurrence-only"),
        ("--assert-backend-speedup", args.assert_backend_speedup, "--backend-only"),
        ("--assert-cluster-efficiency", args.assert_cluster_efficiency,
         "--cluster-only"),
        ("--assert-swap-parity", args.assert_swap_parity or None,
         "--online-only"),
        ("--assert-fault-recovery", args.assert_fault_recovery or None,
         "--faults-only"),
    ):
        other_only = any(flag for name, flag in only_flags.items()
                         if name != section_flag)
        if value is not None and other_only and not only_flags[section_flag]:
            parser.error(f"{gate} requires the section that a different "
                         f"--*-only flag excludes")

    if args.smoke:
        args.sizes = [min(args.sizes)]
        args.scaling_sizes = [min(args.scaling_sizes)]
        if args.recurrence_sizes is not None:
            args.recurrence_sizes = [min(args.recurrence_sizes)]
        args.cluster_workers = sorted(set(args.cluster_workers))[:2]
        args.cluster_requests = min(args.cluster_requests, 16)
        args.online_steps = min(args.online_steps, 32)
        args.repeats = 1

    if args.output is None:
        if args.scaling_only:
            default_name = "BENCH_scaling.json"
        elif args.recurrence_only:
            default_name = "BENCH_recurrence.json"
        elif args.backend_only:
            default_name = "BENCH_backends.json"
        elif args.cluster_only:
            default_name = "BENCH_cluster.json"
        elif args.online_only:
            default_name = "BENCH_online.json"
        elif args.faults_only:
            default_name = "BENCH_faults.json"
        else:
            default_name = "BENCH_attention.json"
        args.output = REPO_ROOT / default_name

    if args.backend is not None:
        get_backend(args.backend)  # fail fast on unknown/unavailable names
    previous_env = os.environ.get(BACKEND_ENV_VAR)
    try:
        if args.backend is not None:
            # Route every model construction of the model-level benches
            # through the requested backend, exactly as a user would.
            os.environ[BACKEND_ENV_VAR] = args.backend
        if args.scaling_only:
            scaling = bench_scaling(args.scaling_sizes, args.m, args.heads,
                                    args.scaling_embedding_dim, args.ffn_hidden,
                                    args.repeats, args.scaling_budget_mb,
                                    args.scaling_equivalence_max_n)
            report = {
                "benchmark": "attention-scaling",
                "schema_version": SCHEMA_VERSION,
                "scaling": scaling,
            }
        elif args.recurrence_only:
            recurrence = bench_recurrence(
                args.recurrence_sizes or [max(args.sizes)], args.m, args.heads,
                args.embedding_dim, args.ffn_hidden, args.hidden, args.repeats,
            )
            report = {
                "benchmark": "attention-recurrence",
                "schema_version": SCHEMA_VERSION,
                "recurrence": recurrence,
            }
        elif args.backend_only:
            backends = bench_backends(max(args.sizes), args.m, args.heads,
                                      args.embedding_dim, args.ffn_hidden,
                                      args.hidden, args.repeats)
            report = {
                "benchmark": "attention-backends",
                "schema_version": SCHEMA_VERSION,
                "backends": backends,
            }
        elif args.cluster_only:
            cluster = bench_cluster(
                min(args.sizes), args.m, args.heads, args.embedding_dim,
                args.ffn_hidden, args.hidden,
                workers_list=args.cluster_workers,
                requests=args.cluster_requests,
            )
            report = {
                "benchmark": "attention-cluster",
                "schema_version": SCHEMA_VERSION,
                "cluster": cluster,
            }
        elif args.online_only:
            online = bench_online(
                min(args.sizes), args.m, args.heads, args.embedding_dim,
                args.ffn_hidden, args.hidden, args.repeats,
                steps=args.online_steps,
            )
            report = {
                "benchmark": "attention-online",
                "schema_version": SCHEMA_VERSION,
                "online": online,
            }
        elif args.faults_only:
            faults = bench_faults(
                min(args.sizes), args.m, args.heads, args.embedding_dim,
                args.ffn_hidden, args.hidden,
                workers=args.fault_workers,
                requests=args.cluster_requests,
                seed=args.fault_seed,
            )
            report = {
                "benchmark": "attention-faults",
                "schema_version": SCHEMA_VERSION,
                "faults": faults,
            }
        else:
            report = run(args.sizes, args.m, args.heads, args.embedding_dim,
                         args.ffn_hidden, args.hidden, args.repeats,
                         args.train_step_max_n,
                         scaling_sizes=args.scaling_sizes,
                         scaling_budget_mb=args.scaling_budget_mb,
                         scaling_embedding_dim=args.scaling_embedding_dim,
                         scaling_equivalence_max_n=args.scaling_equivalence_max_n,
                         recurrence_sizes=args.recurrence_sizes,
                         cluster_workers=args.cluster_workers,
                         cluster_requests=args.cluster_requests,
                         online_steps=args.online_steps)
            report["config"]["backend"] = resolve_backend_name(args.backend)
    finally:
        if args.backend is not None:
            if previous_env is None:
                os.environ.pop(BACKEND_ENV_VAR, None)
            else:
                os.environ[BACKEND_ENV_VAR] = previous_env

    # Write the report before any gate (schema validation, the bitwise
    # divergence check inside it, the peak assertion): a failing gate in CI
    # must still leave the per-N diagnostic JSON for the artifact upload.
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.scaling_only:
        validate_scaling(report["scaling"])
    elif args.recurrence_only:
        validate_recurrence(report["recurrence"])
    elif args.backend_only:
        validate_backends(report["backends"])
    elif args.cluster_only:
        validate_cluster(report["cluster"])
    elif args.online_only:
        validate_online(report["online"])
    elif args.faults_only:
        validate_faults(report["faults"])
    else:
        validate_schema(report)

    if args.assert_scaling_peak_mb is not None:
        for entry in report["scaling"]["results"]:
            if entry["peak_mem_mb"] > args.assert_scaling_peak_mb:
                raise SystemExit(
                    f"scaling peak {entry['peak_mem_mb']:.1f} MiB at "
                    f"N={entry['num_nodes']} exceeds the "
                    f"{args.assert_scaling_peak_mb} MiB assertion"
                )
        print(f"scaling peak assertion (<= {args.assert_scaling_peak_mb} MiB) ok")

    if args.assert_recurrence_speedup is not None:
        for entry in report["recurrence"]["results"]:
            if entry["kernel_speedup"] < args.assert_recurrence_speedup:
                raise SystemExit(
                    f"serving-kernel recurrence speedup "
                    f"{entry['kernel_speedup']:.2f}x at "
                    f"N={entry['num_nodes']} is below the "
                    f"{args.assert_recurrence_speedup}x assertion"
                )
        print(
            f"recurrence speedup assertion (>= {args.assert_recurrence_speedup}x) ok"
        )
    if args.assert_serve_batch_growth is not None:
        growth = report["recurrence"]["throughput_batch8_over_batch1"]
        if growth is None or growth < args.assert_serve_batch_growth:
            raise SystemExit(
                f"serve throughput at batch 8 is {growth!r}x the batch-1 "
                f"throughput, below the {args.assert_serve_batch_growth}x assertion"
            )
        print(
            f"serve batch-growth assertion (>= {args.assert_serve_batch_growth}x) ok"
        )
    if args.assert_backend_speedup is not None:
        section = report["backends"]
        entries = {entry["backend"]: entry for entry in section["results"]}
        numba_entry = entries.get("numba")
        if numba_entry is None or not numba_entry.get("available"):
            reason = (numba_entry or {}).get(
                "reason", "the numba backend was not benchmarked"
            )
            raise SystemExit(
                f"--assert-backend-speedup needs the numba backend: {reason}"
            )
        speedup = section["attention_speedup_numba_over_numpy"]
        if speedup is None or speedup < args.assert_backend_speedup:
            raise SystemExit(
                f"numba pair-scoring speedup {speedup!r}x at "
                f"N={section['num_nodes']} is below the "
                f"{args.assert_backend_speedup}x assertion"
            )
        print(f"backend speedup assertion (>= {args.assert_backend_speedup}x) ok")
    if args.assert_cluster_efficiency is not None:
        for entry in report["cluster"]["results"]:
            if entry["workers"] == 1:
                continue
            efficiency = entry["scaling_efficiency"]
            if efficiency is None or efficiency < args.assert_cluster_efficiency:
                raise SystemExit(
                    f"cluster scaling efficiency {efficiency!r} at "
                    f"{entry['workers']} workers is below the "
                    f"{args.assert_cluster_efficiency} assertion"
                )
        print(
            "cluster efficiency assertion "
            f"(>= {args.assert_cluster_efficiency}) ok"
        )
    if args.assert_swap_parity:
        section = report["online"]
        if not section["swap_parity"]:
            raise SystemExit(
                "hot-swapped forecasts are not bit-identical to a cold start "
                "from the same index set"
            )
        if section["forecast_during_swap_errors"]:
            raise SystemExit(
                f"{section['forecast_during_swap_errors']} request(s) errored "
                "during the concurrent hot-swap"
            )
        print("swap parity assertion (hot == cold start, bitwise) ok")
    if args.assert_fault_recovery:
        section = report["faults"]
        problems = []
        for name in ("baseline", "faulted"):
            if section[name]["unresolved"]:
                problems.append(
                    f"{section[name]['unresolved']} request(s) never "
                    f"resolved in the {name} run"
                )
        if not section["pool_restored"]:
            problems.append("the supervisor did not respawn the pool to "
                            "full strength")
        if section["parked_workers"]:
            problems.append(
                f"{section['parked_workers']} worker(s) were parked by the "
                "crash-loop circuit breaker"
            )
        ceiling = section["restart_backoff_ceiling_s"]
        if section["recovery_s"] > ceiling:
            problems.append(
                f"pool recovery took {section['recovery_s']:.2f} s, beyond "
                f"the {ceiling:.1f} s backoff ceiling"
            )
        if problems:
            raise SystemExit("fault recovery assertion failed: "
                             + "; ".join(problems))
        print(
            "fault recovery assertion (all resolved, pool restored within "
            f"{ceiling:.1f} s) ok"
        )
    return report


if __name__ == "__main__":
    main()
