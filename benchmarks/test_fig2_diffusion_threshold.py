"""Benchmark for Figure 2: sensitivity of one sensor's diffused features to the slim width M.

Shape check from the paper: the features change a lot for very small M and
stabilise once M is large enough (the relative change shrinks as M grows),
which is the empirical basis for choosing M ≈ 5% of N.
"""

import numpy as np

from repro.experiments.fig2_diffusion_threshold import run_fig2


def test_fig2_diffusion_threshold(benchmark, scale):
    m_values = (2, 4, 8, 12) if scale["num_nodes"] <= 64 else (10, 20, 50, 100)
    result = benchmark.pedantic(
        run_fig2,
        kwargs=dict(
            m_values=m_values,
            sensor=3,
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=1,
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    changes = result["relative_change"]
    print()
    print("relative feature change per M:", {m: round(v, 3) for m, v in changes.items()})
    print("stabilisation threshold M:", result["threshold_m"])

    assert set(result["features"]) == set(m_values)
    for features in result["features"].values():
        assert np.all(np.isfinite(features))
    # Every recorded change is a finite non-negative relative norm.
    assert all(np.isfinite(value) and value >= 0 for value in changes.values())
    # The change at the largest M is smaller than the maximum observed change —
    # i.e. the features are stabilising rather than diverging.
    ordered = [changes[m] for m in sorted(changes)]
    assert ordered[-1] <= max(ordered) + 1e-12
    assert ordered[-1] <= ordered[0] * 1.5
