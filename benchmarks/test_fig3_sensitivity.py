"""Benchmark for Figure 3: hyper-parameter sensitivity (α, attention heads, slim width M).

Shape checks from the paper: performance is reasonably stable across the
swept ranges; extremely small M is never better than the largest swept M, and
every sweep returns finite MAEs.
"""

import numpy as np

from repro.experiments.fig3_sensitivity import run_fig3


def test_fig3_sensitivity(benchmark, scale):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(
            alphas=(1.0, 1.5, 2.0),
            head_counts=(1, 2, 4),
            m_values=(2, 6, 10),
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=1,
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for panel, sweep in result.items():
        print(f"  {panel}: " + ", ".join(f"{key}={value:.3f}" for key, value in sweep.items()))

    assert set(result) == {"alpha", "heads", "m"}
    for sweep in result.values():
        assert all(np.isfinite(value) and value > 0 for value in sweep.values())

    # Sparse normalisation (α > 1) is competitive with softmax: the best sparse
    # setting is within 20% of the softmax baseline (the paper finds it better).
    alpha_sweep = result["alpha"]
    best_sparse = min(value for alpha, value in alpha_sweep.items() if alpha > 1.0)
    assert best_sparse <= alpha_sweep[1.0] * 1.2

    # Performance with the largest M is at least as good as with the tiniest M.
    m_sweep = result["m"]
    assert m_sweep[max(m_sweep)] <= m_sweep[min(m_sweep)] * 1.15
