"""Benchmark for Figure 4: prediction vs ground truth on METR-LA and CARPARK stand-ins.

Shape checks from the paper's discussion of the figure: the predictions track
the ground truth (low MAE relative to the signal's scale) and are *smoother*
than the noisy ground truth (lower total variation), i.e. the model does not
overfit sensor noise.
"""

import numpy as np

from repro.experiments.fig4_visualization import run_fig4


def test_fig4_visualization(benchmark, scale):
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(
            datasets=("metr_la_like", "carpark1918_like"),
            sensors=(0, 3),
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    for dataset_name, payload in result.items():
        print()
        print(f"{dataset_name}: {payload['num_plotted_steps']} plotted steps")
        for sensor, series in payload["sensors"].items():
            print(f"  sensor {sensor}: mae={series['mae']:.3f} "
                  f"TV(truth)={series['truth_total_variation']:.1f} "
                  f"TV(prediction)={series['prediction_total_variation']:.1f}")
            truth = series["ground_truth"]
            prediction = series["prediction"]
            assert truth.shape == prediction.shape
            assert np.isfinite(series["mae"])
            # Predictions track the signal: error well below the signal's own spread.
            observed = truth[truth != 0]
            assert series["mae"] < observed.std() * 2.0
            # Predictions are smoother than (or comparable to) the noisy ground truth.
            assert series["prediction_total_variation"] <= series["truth_total_variation"] * 1.2
