"""Benchmark for Table X: parameter count, training time per epoch and inference time.

At the paper's scale (1918 nodes, 32 GB V100) SAGDFN is by far the cheapest of
the profiled models because its spatial step is O(N·M) instead of O(N²).  At
the benchmark's reduced node count the N² terms are no longer dominant, so the
shape checks compare like with like:

* SAGDFN is cheaper to train and to run than DCRNN, the other
  encoder–decoder recurrent forecaster (dense vs slim graph convolution);
* SAGDFN's analytic training-memory footprint at the paper's 1918-node scale
  is the smallest of all profiled models (the mechanism behind Table X's
  ordering);
* every measured report is internally consistent.
"""

from repro.evaluation import estimate_training_memory_gb
from repro.experiments.table10_cost import run_table10

MODELS = ("DCRNN", "AGCRN", "MTGNN", "GTS")


def test_table10_cost(benchmark, scale):
    reports = benchmark.pedantic(
        run_table10,
        kwargs=dict(
            models=MODELS,
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            batch_size=scale["batch_size"],
            max_batches=2,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'model':12s} {'params':>10s} {'train s/epoch':>14s} {'inference s':>12s} "
          f"{'mem@1918 (GB)':>14s}")
    paper_scale_memory = {}
    for report in reports:
        estimate = estimate_training_memory_gb(report.model, 1918, batch_size=32, history=24)
        paper_scale_memory[report.model] = estimate.total_gb
        print(f"{report.model:12s} {report.num_parameters:10d} "
              f"{report.train_seconds_per_epoch:14.2f} {report.inference_seconds:12.2f} "
              f"{estimate.total_gb:14.1f}")

    by_name = {report.model: report for report in reports}
    assert set(by_name) == set(MODELS) | {"SAGDFN"}

    sagdfn = by_name["SAGDFN"]
    dcrnn = by_name["DCRNN"]

    # Slim vs dense diffusion in the same encoder-decoder architecture: SAGDFN's
    # measured cost stays in the same ballpark as DCRNN's at this small node count
    # (the strict ordering of Table X only emerges when the O(N²) terms dominate;
    # wall-clock at N≈32 is noisy, hence the generous factor).
    assert sagdfn.train_seconds_per_epoch <= dcrnn.train_seconds_per_epoch * 2.0
    assert sagdfn.inference_seconds <= dcrnn.inference_seconds * 2.0

    # The mechanism behind Table X's ordering: at the paper's 1918-node scale,
    # SAGDFN's training memory is the smallest of all profiled models.
    assert paper_scale_memory["SAGDFN"] == min(paper_scale_memory.values())

    # Pair-wise graph learning (GTS) carries more parameters than SAGDFN.
    assert sagdfn.num_parameters < by_name["GTS"].num_parameters

    # Every report is internally consistent.
    for report in reports:
        assert report.num_parameters > 0
        assert report.train_seconds_per_epoch > report.inference_seconds > 0
