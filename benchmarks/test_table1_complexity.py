"""Benchmark for Table I + Examples 1–2: complexity of adaptive-weight-GNN methods.

Checks the headline claims of the paper's complexity analysis:

* against the pair-wise methods (GTS, STEP) SAGDFN reduces both computation
  and memory by exactly ``N / M`` (= 20 at the paper's large-dataset setting);
* SAGDFN is the only method whose cost grows *linearly* in ``N`` — the
  quadratic methods (including AGCRN, which is cheap per node-pair) are
  overtaken once the graph is large enough;
* the Example 1 / Example 2 GPU-memory figures shrink by the same ``N / M``
  factor.
"""

import pytest

from repro.core.complexity import computation_cost, memory_cost
from repro.experiments.table1_complexity import run_table1


def test_table1_complexity(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    profiles = {profile.model: profile for profile in result["profiles"]}
    assert set(profiles) == {"AGCRN", "GTS", "STEP", "SAGDFN"}

    # Against the pair-wise family (GTS / STEP) SAGDFN is cheaper in both
    # computation and memory, by exactly N / M = 20.
    for name in ("GTS", "STEP"):
        assert profiles["SAGDFN"].computation < profiles[name].computation
        assert profiles["SAGDFN"].memory < profiles[name].memory
    assert result["reduction_vs_gts"]["memory"] == pytest.approx(20.0)
    assert result["reduction_vs_gts"]["computation"] == pytest.approx(20.0, rel=0.05)

    # Scaling shape: doubling N doubles SAGDFN's cost but quadruples everyone else's.
    for name in ("AGCRN", "GTS", "STEP"):
        ratio = (computation_cost(name, 4000, 100, 64, 100)
                 / computation_cost(name, 2000, 100, 64, 100))
        assert ratio == pytest.approx(4.0, rel=0.01)
    sagdfn_ratio = (computation_cost("SAGDFN", 4000, 100, 64, 100)
                    / computation_cost("SAGDFN", 2000, 100, 64, 100))
    assert sagdfn_ratio == pytest.approx(2.0, rel=0.01)

    # Crossover: AGCRN's per-pair cost is lower (no d² term), so it is cheaper at
    # N = 2000, but the quadratic growth overtakes SAGDFN for large enough graphs.
    assert computation_cost("AGCRN", 2000, 100, 64, 100) < computation_cost(
        "SAGDFN", 2000, 100, 64, 100
    )
    assert computation_cost("AGCRN", 50_000, 100, 64, 100) > computation_cost(
        "SAGDFN", 50_000, 100, 64, 100
    )
    assert memory_cost("AGCRN", 50_000, 100, 64, 100) > memory_cost(
        "SAGDFN", 50_000, 100, 64, 100
    )

    # Example 1 vs Example 2: hidden states and node-pair embeddings both shrink 20x.
    memory = result["example_memory"]
    assert memory["gts_hidden_state_gb"] / memory["sagdfn_hidden_state_gb"] == pytest.approx(20.0)
    assert memory["gts_embedding_gb"] / memory["sagdfn_embedding_gb"] == pytest.approx(20.0)
    assert memory["gts_hidden_state_gb"] == pytest.approx(1.46, abs=0.2)  # Example 1's ~1.57 GB

    print()
    print("Table I at N=2000, d=100, D=64, M=100")
    for name, profile in profiles.items():
        print(f"  {name:8s} computation={profile.computation:.3e}  memory={profile.memory:.3e}")
    print(f"  Example 1/2 memory: {memory}")
