"""Benchmark for Table III: performance comparison on the METR-LA stand-in.

Shape checks (not absolute numbers): every model trains without OOM at this
scale, the spatial deep models beat the classical ones, and SAGDFN is
competitive with the best baseline (the paper reports it best-or-tied on 6 of
9 metrics).
"""

import numpy as np

from repro.experiments.table3_metr_la import run_table3

MODELS = ("ARIMA", "VAR", "LSTM", "DCRNN", "GTS")


def test_table3_metr_la(benchmark, scale):
    table = benchmark.pedantic(
        run_table3,
        kwargs=dict(
            models=MODELS,
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    # Every requested model produced finite metrics (no OOM on METR-LA).
    assert set(table.rows) == set(MODELS) | {"SAGDFN"}
    for name in table.rows:
        for horizon in (3, 6, 12):
            entry = table.get(name, horizon)
            assert entry is not None and np.isfinite(entry.mae)

    # SAGDFN is competitive: within 35% of the best model at every horizon and
    # never the worst.
    for horizon in (3, 6, 12):
        maes = {name: table.get(name, horizon).mae for name in table.rows}
        best = min(maes.values())
        assert maes["SAGDFN"] <= best * 1.35
        assert maes["SAGDFN"] < max(maes.values())

    # Error grows with the forecasting horizon for the sequence models.
    assert table.get("SAGDFN", 12).mae >= table.get("SAGDFN", 3).mae * 0.9
