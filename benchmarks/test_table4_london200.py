"""Benchmark for Table IV: accuracy on a fixed sensor subset vs training-graph size.

Shape checks: the analytic memory model reproduces the paper's maximum
processable graph sizes (AGCRN ≈ 1750, GTS ≈ 1000, D2STGNN ≈ 200 at batch
64), and SAGDFN's error on the fixed evaluation subset does not degrade — and
typically improves — as the training graph grows.
"""

import numpy as np

from repro.experiments.table4_london200 import run_table4


def test_table4_london200(benchmark, scale):
    training_sizes = (24, 48, 72) if scale["num_nodes"] <= 64 else (200, 1000, 1750)
    result = benchmark.pedantic(
        run_table4,
        kwargs=dict(
            eval_nodes=training_sizes[0],
            training_sizes=training_sizes,
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result["table"].to_text())
    print("paper-scale maximum trainable nodes:", result["paper_max_nodes"])

    # The memory model reproduces the "# nodes in training set" column of Table IV.
    paper_max = result["paper_max_nodes"]
    assert 1600 <= paper_max["AGCRN"] <= 1900
    assert 900 <= paper_max["GTS"] <= 1100
    assert 150 <= paper_max["D2STGNN"] <= 260

    # Training on a larger graph never hurts the fixed evaluation subset by more
    # than noise (the paper reports a strict improvement after full-length training;
    # at a few CPU epochs we only require no meaningful degradation).
    sagdfn = result["sagdfn"]
    mean_mae = {size: float(np.mean([entry.mae for entry in metrics]))
                for size, metrics in sagdfn.items()}
    assert mean_mae[max(mean_mae)] <= mean_mae[min(mean_mae)] * 1.15

    # SAGDFN (at its best training size) beats every memory-limited baseline trained
    # at its maximum processable graph, as in Table IV.
    best_sagdfn = min(mean_mae.values())
    for name, row in result["baselines"].items():
        baseline_mae = np.mean([entry.mae for entry in row["metrics"]])
        assert best_sagdfn <= baseline_mae * 1.1, name
