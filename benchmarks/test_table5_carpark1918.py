"""Benchmark for Table V: CARPARK1918 stand-in with OOM markers.

Shape checks: the eight quadratic-memory baselines are flagged OOM exactly as
in the paper, the feasible models produce finite metrics, and SAGDFN is the
best (or near-best) of the trained deep models.
"""

import numpy as np

from repro.experiments.large_datasets import run_table5

MODELS = ("ARIMA", "LSTM", "DCRNN", "GraphWaveNet", "MTGNN", "GTS", "AGCRN", "STEP")
EXPECTED_OOM = {"GTS", "AGCRN", "STEP"}


def test_table5_carpark1918(benchmark, scale):
    table = benchmark.pedantic(
        run_table5,
        kwargs=dict(
            models=MODELS,
            num_nodes=scale["large_num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    # OOM pattern matches Tables V–VII for the requested subset of models.
    assert set(table.oom_models()) == EXPECTED_OOM

    trained = [name for name in table.rows if table.rows[name] is not None]
    for name in trained:
        for entry in table.rows[name]:
            assert np.isfinite(entry.mae)

    # SAGDFN is the best (or near-best) deep model that actually fits in memory:
    # within a small tolerance of the strongest competitor at every horizon and
    # competitive on average across horizons.
    deep_models = [name for name in trained if name not in {"ARIMA", "VAR", "SVR", "HA"}]
    mean_mae = {name: np.mean([table.get(name, h).mae for h in table.horizons])
                for name in deep_models}
    best_other_mean = min(value for name, value in mean_mae.items() if name != "SAGDFN")
    assert mean_mae["SAGDFN"] <= best_other_mean * 1.2
    for horizon in table.horizons:
        maes = {name: table.get(name, horizon).mae for name in deep_models}
        best_other = min(value for name, value in maes.items() if name != "SAGDFN")
        assert maes["SAGDFN"] <= best_other * 1.3
