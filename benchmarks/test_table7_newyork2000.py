"""Benchmark for Table VII: NewYork2000 stand-in with OOM markers."""

import numpy as np

from repro.experiments.large_datasets import run_table7

MODELS = ("ARIMA", "VAR", "LSTM", "DCRNN", "GraphWaveNet", "MTGNN", "ASTGCN", "STSGCN", "D2STGNN")
EXPECTED_OOM = {"ASTGCN", "STSGCN", "D2STGNN"}


def test_table7_newyork2000(benchmark, scale):
    table = benchmark.pedantic(
        run_table7,
        kwargs=dict(
            models=MODELS,
            num_nodes=scale["large_num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    assert set(table.oom_models()) == EXPECTED_OOM

    trained = [name for name in table.rows if table.rows[name] is not None]
    for name in trained:
        for entry in table.rows[name]:
            assert np.isfinite(entry.mae) and entry.mae > 0

    # SAGDFN is competitive with the best surviving baseline: close at every horizon
    # and near-best on the cross-horizon average (the paper reports a strict win).
    mean_mae = {name: np.mean([table.get(name, h).mae for h in table.horizons])
                for name in trained}
    best_other_mean = min(value for name, value in mean_mae.items() if name != "SAGDFN")
    assert mean_mae["SAGDFN"] <= best_other_mean * 1.2
    for horizon in table.horizons:
        maes = {name: table.get(name, horizon).mae for name in trained}
        best_other = min(value for name, value in maes.items() if name != "SAGDFN")
        assert maes["SAGDFN"] <= best_other * 1.3
