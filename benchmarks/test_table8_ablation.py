"""Benchmark for Table VIII: ablation of SAGDFN's components on the CARPARK stand-in.

Shape check from the paper: the full model outperforms (or at worst ties with)
every ablated variant on average across horizons.
"""

import numpy as np

from repro.experiments.table8_ablation import ABLATION_VARIANTS, run_table8


def _mean_mae(table, variant) -> float:
    return float(np.mean([entry.mae for entry in table.rows[variant]]))


def test_table8_ablation(benchmark, scale):
    table = benchmark.pedantic(
        run_table8,
        kwargs=dict(
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    assert set(table.rows) == set(ABLATION_VARIANTS)
    full_model = _mean_mae(table, "SAGDFN")
    ablated = {variant: _mean_mae(table, variant) for variant in ABLATION_VARIANTS
               if variant != "SAGDFN"}

    for variant, mae in ablated.items():
        assert np.isfinite(mae)
        # The full model should not be meaningfully worse than any ablation.
        assert full_model <= mae * 1.1, f"full SAGDFN lost to ablation {variant}"

    # And it should strictly beat at least half of the ablations, as in Table VIII
    # where the full model wins every row.
    wins = sum(1 for mae in ablated.values() if full_model < mae)
    assert wins >= len(ablated) / 2
