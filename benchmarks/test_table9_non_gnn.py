"""Benchmark for Table IX: SAGDFN vs non-GNN long-sequence forecasters.

Shape check from the paper: TimesNet / FEDformer / ETSformer have no spatial
mechanism and consistently trail SAGDFN on both datasets.
"""

import numpy as np

from repro.experiments.table9_non_gnn import NON_GNN_MODELS, run_table9


def test_table9_non_gnn(benchmark, scale):
    tables = benchmark.pedantic(
        run_table9,
        kwargs=dict(
            datasets=("metr_la_like", "carpark1918_like"),
            num_nodes=scale["num_nodes"],
            num_steps=scale["num_steps"],
            epochs=scale["epochs"],
            batch_size=scale["batch_size"],
        ),
        rounds=1,
        iterations=1,
    )
    for dataset_name, table in tables.items():
        print()
        print(table.to_text())
        assert set(table.rows) == set(NON_GNN_MODELS) | {"SAGDFN"}
        for name in table.rows:
            for entry in table.rows[name]:
                assert np.isfinite(entry.mae)
        # SAGDFN is competitive with the best non-GNN model at every horizon and
        # better on average (the paper reports it strictly better everywhere).
        sagdfn_mean = np.mean([table.get("SAGDFN", h).mae for h in table.horizons])
        non_gnn_means = {name: np.mean([table.get(name, h).mae for h in table.horizons])
                         for name in NON_GNN_MODELS}
        assert sagdfn_mean <= min(non_gnn_means.values()) * 1.1, dataset_name
        for horizon in table.horizons:
            maes = {name: table.get(name, horizon).mae for name in table.rows}
            best_non_gnn = min(maes[name] for name in NON_GNN_MODELS)
            assert maes["SAGDFN"] <= best_non_gnn * 1.35, (dataset_name, horizon)
