"""Car-park availability forecasting with SAGDFN, plus the Table VIII ablation.

The CARPARK1918 scenario of the paper: predict the number of available parking
lots one hour ahead (12 five-minute steps) from the previous two hours (24
steps).  The script trains the full SAGDFN and its ablated variants —
softmax instead of α-entmax, inner-product instead of pair-wise attention,
random instead of learned neighbour sampling — on a synthetic CARPARK-like
dataset and prints the resulting comparison.

Run with::

    python examples/carpark_ablation.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.table8_ablation import ABLATION_VARIANTS
from repro.experiments.common import prepare_data, train_sagdfn
from repro.evaluation import ResultTable


def main() -> None:
    data = prepare_data("carpark1918_like", num_nodes=48, num_steps=1200, batch_size=16, seed=0)
    print(f"dataset: carpark1918_like  nodes={data.num_nodes}  "
          f"history={data.history} steps (2 h)  horizon={data.horizon} steps (1 h)")

    table = ResultTable(title="SAGDFN ablation on the car-park dataset")
    for variant, overrides in ABLATION_VARIANTS.items():
        print(f"training {variant} ...")
        _, metrics = train_sagdfn(data, epochs=3, **overrides)
        table.add(variant, metrics)

    print()
    print(table.to_text())

    full = np.mean([entry.mae for entry in table.rows["SAGDFN"]])
    print("\nmean MAE across horizons:")
    for variant in ABLATION_VARIANTS:
        mean_mae = np.mean([entry.mae for entry in table.rows[variant]])
        delta = (mean_mae - full) / full * 100
        print(f"  {variant:16s} {mean_mae:7.3f}  ({delta:+.1f}% vs full model)")


if __name__ == "__main__":
    main()
