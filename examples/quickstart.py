"""Quickstart: train SAGDFN on a small synthetic traffic dataset and evaluate it.

Run with::

    python examples/quickstart.py

The script generates a METR-LA-like dataset (48 sensors), trains SAGDFN for a
few epochs on CPU and prints the per-horizon MAE / RMSE / MAPE on the test
split — the same protocol as Table III of the paper, at toy scale.
"""

from __future__ import annotations

from repro.core import SAGDFN, SAGDFNConfig, Trainer
from repro.evaluation import evaluate_neural
from repro.experiments.common import prepare_data
from repro.optim import Adam


def main() -> None:
    # 1. Data: 48-sensor traffic network, one week of 5-minute readings,
    #    70/10/20 chronological split, z-scored inputs, time-of-day covariate.
    data = prepare_data("metr_la_like", num_nodes=48, num_steps=2016, batch_size=16, seed=0)
    print(f"dataset: {data.name}  nodes={data.num_nodes}  "
          f"train/val/test steps = {data.train.num_steps}/{data.val.num_steps}/{data.test.num_steps}")

    # 2. Model: SAGDFN with a slim width of M=10 significant neighbours.
    config = SAGDFNConfig(
        num_nodes=data.num_nodes,
        input_dim=data.input_dim,
        history=data.history,
        horizon=data.horizon,
        embedding_dim=16,
        num_significant=10,
        top_k=8,
        hidden_size=32,
        num_heads=2,
        alpha=1.5,
        diffusion_steps=2,
    )
    model = SAGDFN(config)
    print(f"SAGDFN parameters: {model.num_parameters():,}")

    # 3. Train with Adam on the masked MAE (Eq. 11), early-stopping on validation MAE.
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    history = trainer.fit(data.train_loader, data.val_loader, epochs=5, patience=2)
    print("train losses:", [round(loss, 3) for loss in history.train_losses])
    print("val MAEs:    ", [round(mae, 3) for mae in history.val_maes])

    # 4. Evaluate at the paper's horizons.
    print(f"\nselected significant neighbours (M={config.num_significant}):", model.index_set)
    print("\ntest metrics:")
    for entry in evaluate_neural(model, data.test_loader, data.scaler, horizons=(3, 6, 12)):
        print(f"  horizon {entry.horizon:2d}:  MAE {entry.mae:6.3f}  "
              f"RMSE {entry.rmse:6.3f}  MAPE {entry.mape * 100:5.1f}%")


if __name__ == "__main__":
    main()
