"""Scalability study: why the O(N·M) design matters.

Three views of the paper's scalability argument, none of which needs a GPU:

1. **Analytic complexity (Table I)** — computation and memory of AGCRN / GTS /
   STEP / SAGDFN as the node count grows.
2. **Analytic training memory (Tables IV–VII)** — which models fit a 32 GB
   GPU at 207 / 1918 / 2000 nodes and each model's maximum trainable graph.
3. **Measured forward time** — wall-clock cost of one SAGDFN forward pass as
   N grows with M fixed, demonstrating the near-linear scaling.

Run with::

    python examples/scalability_study.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SAGDFN, SAGDFNConfig
from repro.core.complexity import complexity_table
from repro.evaluation import estimate_training_memory_gb, max_trainable_nodes
from repro.evaluation.memory import MEMORY_COEFFICIENTS
from repro.tensor import Tensor


def analytic_complexity() -> None:
    print("=" * 70)
    print("1. Table I complexity at d=100, D=64, M=100")
    for num_nodes in (500, 1000, 2000, 4000):
        rows = complexity_table(num_nodes, 100, 64, 100)
        line = "  N=%-5d " % num_nodes
        line += "  ".join(f"{row.model}: {row.computation:.2e}" for row in rows)
        print(line)


def memory_limits() -> None:
    print("=" * 70)
    print("2. Estimated training memory (GB) on a 32 GB budget, batch 32, T=12, D=64")
    models = ["LSTM", "DCRNN", "GraphWaveNet", "MTGNN", "AGCRN", "GTS", "STEP", "D2STGNN",
              "GMAN", "SAGDFN"]
    header = f"  {'model':14s}" + "".join(f"{n:>10d}" for n in (207, 1918, 2000))
    print(header)
    for name in models:
        cells = []
        for num_nodes in (207, 1918, 2000):
            estimate = estimate_training_memory_gb(name, num_nodes, batch_size=32)
            marker = "OOM" if estimate.total_gb > 32 else f"{estimate.total_gb:.1f}"
            cells.append(f"{marker:>10s}")
        print(f"  {name:14s}" + "".join(cells))
    print("\n  maximum trainable nodes at batch 64 (Table IV column):")
    for name in ("AGCRN", "GTS", "D2STGNN", "SAGDFN"):
        print(f"    {name:10s} {max_trainable_nodes(name, batch_size=64)}")


def measured_forward_time() -> None:
    print("=" * 70)
    print("3. Measured SAGDFN forward time (batch 8, h=12, M=8 fixed)")
    timings = {}
    for num_nodes in (25, 50, 100, 200):
        config = SAGDFNConfig(
            num_nodes=num_nodes, input_dim=2, history=12, horizon=12, embedding_dim=8,
            num_significant=8, top_k=6, hidden_size=16, num_heads=2, ffn_hidden=8,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)
        batch = Tensor(np.random.default_rng(0).normal(size=(8, 12, num_nodes, 2)))
        model(batch)  # warm-up
        start = time.perf_counter()
        for _ in range(3):
            model(batch)
        timings[num_nodes] = (time.perf_counter() - start) / 3
    base = timings[25]
    for num_nodes, seconds in timings.items():
        print(f"  N={num_nodes:4d}  {seconds * 1000:8.1f} ms   ({seconds / base:4.1f}x the N=25 cost)")
    print("  -> roughly linear in N, as promised by the O(N M) design.")


def main() -> None:
    analytic_complexity()
    memory_limits()
    measured_forward_time()


if __name__ == "__main__":
    main()
