"""Traffic forecasting comparison: SAGDFN vs representative baselines.

Reproduces a miniature version of Table III (METR-LA) / Table VI (London2000):
a classical baseline (ARIMA), a univariate deep baseline (LSTM), a
predefined-graph STGNN (DCRNN) and SAGDFN are trained on the same synthetic
traffic dataset and compared at horizons 3, 6 and 12.

Run with::

    python examples/traffic_comparison.py [--large]

``--large`` switches from the 48-node METR-LA-like dataset to a 96-node
London2000-like dataset, illustrating that only the scalable models keep
their accuracy as the graph grows.
"""

from __future__ import annotations

import argparse

from repro.evaluation import ResultTable
from repro.experiments.common import (
    prepare_data,
    run_classical_baseline,
    run_neural_baseline,
    train_sagdfn,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--large", action="store_true",
                        help="use the 96-node London2000-like dataset instead of METR-LA-like")
    parser.add_argument("--epochs", type=int, default=3)
    args = parser.parse_args()

    dataset = "london2000_like" if args.large else "metr_la_like"
    num_nodes = 96 if args.large else 48
    data = prepare_data(dataset, num_nodes=num_nodes, num_steps=1400, batch_size=16, seed=0)
    print(f"dataset: {dataset}  nodes={data.num_nodes}  history={data.history}  "
          f"horizon={data.horizon}")

    table = ResultTable(title=f"Traffic forecasting comparison on {dataset} (N={num_nodes})")
    print("\ntraining ARIMA ...")
    table.add("ARIMA", run_classical_baseline("ARIMA", data))
    print("training LSTM ...")
    table.add("LSTM", run_neural_baseline("LSTM", data, epochs=args.epochs))
    print("training DCRNN ...")
    table.add("DCRNN", run_neural_baseline("DCRNN", data, epochs=args.epochs))
    print("training SAGDFN ...")
    _, sagdfn_metrics = train_sagdfn(data, epochs=args.epochs)
    table.add("SAGDFN", sagdfn_metrics)

    print()
    print(table.to_text())
    print(f"\nbest model at horizon 12 (MAE): {table.best_model(12)}")


if __name__ == "__main__":
    main()
