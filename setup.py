"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs work in fully offline environments where the
``wheel`` package (required by PEP 517 editable builds) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
