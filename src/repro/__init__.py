"""SAGDFN reproduction: Scalable Adaptive Graph Diffusion Forecasting Network.

This package is a from-scratch, NumPy-based reproduction of the ICDE 2024
paper *"SAGDFN: A Scalable Adaptive Graph Diffusion Forecasting Network for
Multivariate Time Series Forecasting"*.  It contains:

* ``repro.tensor`` / ``repro.nn`` / ``repro.optim`` — the deep-learning
  substrate (reverse-mode autodiff, layers, optimisers).
* ``repro.sparse`` — softmax / sparsemax / α-entmax normalisers.
* ``repro.graph`` and ``repro.data`` — graph and time-series substrates,
  including synthetic stand-ins for METR-LA, London2000, NewYork2000 and
  CARPARK1918.
* ``repro.core`` — the paper's contribution: Significant Neighbors Sampling,
  Sparse Spatial Multi-Head Attention, the fast slim-adjacency graph
  diffusion GRU, and the end-to-end SAGDFN model and trainer.
* ``repro.baselines`` — the fifteen comparison methods of the evaluation.
* ``repro.metrics`` / ``repro.evaluation`` / ``repro.experiments`` — the
  benchmark harness regenerating every table and figure (evaluation is
  streaming: metric sums accumulate batch-by-batch).
* ``repro.serve`` — the inference layer: frozen-graph
  :class:`~repro.serve.ForecastService` rehydrated from a single checkpoint
  bundle, with micro-batched request coalescing and a CLI
  (``python -m repro.serve``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
