"""Pluggable execution backends for the three hot kernels.

Public surface::

    from repro.backend import get_backend, register_backend

    backend = get_backend()          # REPRO_BACKEND env var or "numpy"
    backend = get_backend("numba")   # explicit; raises if unavailable
    plan = backend.make_plan(chunk_size=512)

Built-ins: ``numpy`` (bit-exact reference, the default) and ``numba``
(jitted, opt-in; registered lazily so importing this package never pays
for — or requires — numba).
"""

from repro.backend.base import ExecutionPlan, OpsBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BackendUnavailableError,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)

register_backend("numpy", NumpyBackend)


def _numba_factory() -> OpsBackend:
    from repro.backend.numba_backend import NUMBA_AVAILABLE, NumbaBackend

    if not NUMBA_AVAILABLE:
        raise BackendUnavailableError(
            "backend 'numba' requires the numba package, which is not "
            "installed; install numba or select backend 'numpy'"
        )
    return NumbaBackend()


register_backend("numba", _numba_factory)

__all__ = [
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "ExecutionPlan",
    "NumpyBackend",
    "OpsBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "unregister_backend",
]
