"""Ops-backend abstraction: one execution concept behind the three hot kernels.

Every hot path of the engine bottoms out in one of three operations:

* **pair scoring** — the sparse spatial attention's batched scoring FFNs
  over every (node, significant-neighbour) pair, including the canonical
  tiled scoring grid (:meth:`OpsBackend.pair_scores`);
* **diffusion aggregation** — the ``(N, M) @ (M, B·C)`` neighbour-gather
  gemms of the fast graph convolution, slim and dense, in both the autograd
  module forward (:meth:`OpsBackend.diffusion_hop`) and the raw-ndarray
  serving kernel (:meth:`OpsBackend.diffusion_aggregate_`);
* **fused GRU gates** — the element-wise sigmoid/tanh/blend chain of the
  fused OneStepFastGConv cell (:meth:`OpsBackend.fused_gru_gates` /
  :meth:`OpsBackend.fused_gru_update` and their in-place serving
  counterparts).

An :class:`OpsBackend` owns the implementation of those entry points plus
workspace allocation (:meth:`OpsBackend.empty`), so swapping "which code
executes this op" — reference numpy, numba-jitted, eventually GPU — is one
registry lookup instead of edits across five modules.  Backends are
selected by name through :func:`repro.backend.get_backend`
(``SAGDFNConfig.backend`` > the ``REPRO_BACKEND`` environment variable >
``"numpy"``).

The acceleration knobs that used to be scattered ad-hoc switches
(``use_kernel``, ``node_chunk_size``, ``chunk_size`` /
``memory_budget_mb``) are grouped into an :class:`ExecutionPlan`, resolved
once at model/service construction and shared by every module of a model —
mutating one field (e.g. a serving host overriding the chunk size) is seen
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np


@dataclass
class ExecutionPlan:
    """Resolved execution knobs of one model/service instance.

    One plan object is created per model (from its config and backend
    defaults) and *shared* by the sampler, the attention and every graph
    convolution, so a host-side override — e.g.
    ``ForecastService(..., chunk_size=...)`` — is a single mutation.

    Attributes
    ----------
    backend:
        Name of the :class:`OpsBackend` the plan was resolved for.
    use_kernel:
        Whether frozen-graph serving runs through the raw-ndarray
        :class:`~repro.core.serving_kernel.FrozenRecurrenceKernel`
        (``False`` = the autograd module forward, bit-identical to the
        trainer's evaluation path).
    node_chunk_size:
        Node-block size of the graph convolutions' per-hop aggregation
        (``None`` = unchunked).
    chunk_size:
        Node-block size of the SNS distance ranking and the node-tiled
        attention scoring (``None`` = single pass / cache-heuristic tiles).
    memory_budget_mb:
        Alternative to ``chunk_size``: a scratch budget in MiB from which
        each module derives its own block size.
    """

    backend: str = "numpy"
    use_kernel: bool = True
    node_chunk_size: int | None = None
    chunk_size: int | None = None
    memory_budget_mb: float | None = None

    def __post_init__(self) -> None:
        if self.node_chunk_size is not None and self.node_chunk_size < 1:
            raise ValueError("node_chunk_size must be >= 1 (or None)")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None)")
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive (or None)")

    def replace(self, **overrides) -> "ExecutionPlan":
        """A copy of the plan with ``overrides`` applied (validated)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(overrides)
        return ExecutionPlan(**values)


class OpsBackend:
    """Abstract execution backend behind the three hot kernels.

    Subclasses implement the Tensor-level (autograd) entry points used by
    the training/module forward and the in-place ndarray entry points used
    by the frozen-graph serving kernel.  The numpy backend is the bit-exact
    reference; every other backend is validated against it by the
    equivalence suites at ≤ 1e-10 relative in float64.

    Register a subclass with::

        from repro.backend import register_backend

        @register_backend("mybackend")
        class MyBackend(NumpyBackend):
            name = "mybackend"
            ...

    after which ``SAGDFNConfig(backend="mybackend")`` or
    ``REPRO_BACKEND=mybackend`` selects it everywhere.
    """

    #: Registry name of the backend (subclasses override).
    name = "abstract"
    #: Default ``ExecutionPlan.use_kernel`` of this backend.
    default_use_kernel = True

    # ------------------------------------------------------------------ #
    # Plan resolution
    # ------------------------------------------------------------------ #
    def make_plan(
        self,
        *,
        use_kernel: bool | None = None,
        node_chunk_size: int | None = None,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
    ) -> ExecutionPlan:
        """Resolve an :class:`ExecutionPlan` with this backend's defaults."""
        return ExecutionPlan(
            backend=self.name,
            use_kernel=self.default_use_kernel if use_kernel is None else bool(use_kernel),
            node_chunk_size=node_chunk_size,
            chunk_size=chunk_size,
            memory_budget_mb=memory_budget_mb,
        )

    # ------------------------------------------------------------------ #
    # Hot kernel 1: attention pair scoring
    # ------------------------------------------------------------------ #
    def pair_scores(self, embeddings, neighbour_embeddings, w1, b1, w2, b2,
                    tile_bytes: int | None = None):
        """Raw pair scores ``(P, N, M, out)`` of all scoring FFNs at once.

        Computes ``relu(E W1_node + E_I W1_neigh + b1) W2 + b2`` for every
        (node, neighbour) pair as a differentiable
        :class:`~repro.tensor.Tensor` — the attention hot kernel, including
        the canonical tiled scoring grid (``tile_bytes`` sizes the per-tile
        scratch; ``None`` = the backend default).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Hot kernel 2: diffusion aggregation
    # ------------------------------------------------------------------ #
    def diffusion_hop(self, adjacency, gathered, previous, scale):
        """One autograd diffusion hop ``(A @ gathered + previous) * scale``.

        All operands are Tensors; ``adjacency`` is the slim ``(N, M)``
        matrix (``gathered`` the neighbour-gathered states) or a dense
        ``(N, N)`` support (``gathered is previous``).
        """
        raise NotImplementedError

    def diffusion_aggregate_(self, adjacency, gathered, previous, scale, out,
                             gemm_out=None) -> None:
        """One raw in-place diffusion hop over node-major ndarray states.

        ``out = (adjacency @ gathered + previous) * scale`` where
        ``gathered`` is ``(M, B, C)`` (or ``(T, M, B, C)`` for the batched
        whole-history precompute) and ``previous`` / ``out`` are matching
        ``(…, N, B, C)`` arrays.  The matmul folds batch and channels into
        one gemm-column axis.  When ``out`` is a strided view (the hop
        blocks of an x-stack), ``gemm_out`` supplies a contiguous scratch
        the gemm lands in first.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Hot kernel 3: fused GRU gates
    # ------------------------------------------------------------------ #
    def fused_gru_gates(self, gate_pre):
        """Sigmoid over the fused reset‖update pre-activation (autograd)."""
        raise NotImplementedError

    def fused_gru_update(self, update, hidden, candidate_pre):
        """GRU state blend ``u * h + (1 - u) * tanh(c)`` (autograd)."""
        raise NotImplementedError

    def fused_gru_gates_(self, gates: np.ndarray) -> None:
        """In-place serving sigmoid over the ``(N, B, 2·hidden)`` gates."""
        raise NotImplementedError

    def fused_gru_update_(self, hidden: np.ndarray, update: np.ndarray,
                          candidate: np.ndarray, scratch: np.ndarray) -> None:
        """In-place serving blend: ``hidden = u·hidden + (1-u)·tanh(cand)``.

        ``candidate`` holds the pre-activation on entry and is clobbered;
        ``scratch`` is a same-shaped scratch buffer.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Workspace allocation
    # ------------------------------------------------------------------ #
    def empty(self, shape, dtype) -> np.ndarray:
        """Allocate an uninitialised workspace buffer.

        The serving kernel routes every per-batch-size workspace buffer
        through this hook so accelerator backends can pin / device-allocate
        their scratch.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
