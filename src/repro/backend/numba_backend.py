"""Opt-in numba-jitted execution backend.

Accelerates the three hot kernels with nopython/parallel kernels while
inheriting the reference behaviour everywhere else:

* **pair scoring** — the first-layer projections stay on the host BLAS,
  but the relu + second-layer contraction (the memory-bound part of the
  reference kernel: it streams a ``(P, tile, M, h)`` hidden block through
  cache per tile) runs as one fused ``prange`` loop that never
  materialises the hidden activation at all;
* **diffusion aggregation** — the gemm stays on BLAS, the
  add-previous-and-scale epilogue is fused into one jitted pass;
* **fused GRU gates** — the serving sigmoid and tanh/blend chains become
  single fused element-wise kernels instead of five strided numpy passes.

The autograd (Tensor-level) entry points defer to the numpy reference
whenever gradients are enabled — training math is the reference math; the
jit only takes over under ``no_grad`` (graph freezing, serving).

The module imports with or without numba.  When numba is missing,
``get_backend("numba")`` raises
:class:`~repro.backend.registry.BackendUnavailableError`; constructing
``NumbaBackend(use_jit=False)`` directly runs the same kernel bodies as
pure Python, which is what lets the parity suite cover the kernel math on
hosts without numba (slow, tiny sizes only).
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import BackendUnavailableError
from repro.tensor import Tensor
from repro.tensor.context import is_grad_enabled

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the only branch on this container
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):  # noqa: D103 - signature mirror of numba.njit
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


# --------------------------------------------------------------------- #
# Kernel bodies (plain Python; jitted per-instance in NumbaBackend)
# --------------------------------------------------------------------- #
def _pair_scores_core(node_part, neigh_part, w2, b2, raw):
    """Fused relu + second scoring layer over every (node, neighbour) pair.

    ``node_part`` is ``(P, N, h)``, ``neigh_part`` ``(P, M, h)``, ``w2``
    ``(P, h, out)``, ``b2`` ``(P, out)``; fills ``raw`` ``(P, N, M, out)``.
    The hidden vector of a pair lives in registers only.
    """
    heads, rows, hidden = node_part.shape
    num_significant = neigh_part.shape[1]
    out = w2.shape[2]
    for p in range(heads):
        for i in prange(rows):
            for j in range(num_significant):
                for o in range(out):
                    raw[p, i, j, o] = b2[p, o]
                for k in range(hidden):
                    value = node_part[p, i, k] + neigh_part[p, j, k]
                    if value > 0.0:
                        for o in range(out):
                            raw[p, i, j, o] += value * w2[p, k, o]


def _sigmoid_core(flat):
    """In-place ``1 / (1 + exp(-max(x, -60)))`` over a flat buffer."""
    for i in prange(flat.shape[0]):
        x = flat[i]
        if x < -60.0:
            x = -60.0
        flat[i] = 1.0 / (1.0 + math.exp(-x))


def _gru_blend_core(hidden, update, candidate):
    """In-place ``hidden = u·hidden + (1-u)·tanh(candidate)`` over flat buffers."""
    for i in prange(hidden.shape[0]):
        value = math.tanh(candidate[i])
        hidden[i] = update[i] * hidden[i] + (1.0 - update[i]) * value


def _add_scale_core(out, gemm, previous, scale):
    """Fused diffusion epilogue: ``out = (gemm + previous) * scale[node]``."""
    nodes, batch, channels = out.shape
    for i in prange(nodes):
        row_scale = scale[i]
        for b in range(batch):
            for c in range(channels):
                out[i, b, c] = (gemm[i, b, c] + previous[i, b, c]) * row_scale


class NumbaBackend(NumpyBackend):
    """Numba-jitted backend; parity ≤ 1e-10 relative (f64) vs the reference.

    Parameters
    ----------
    use_jit:
        ``True`` compiles the kernels with numba (raises
        :class:`BackendUnavailableError` when numba is missing); ``False``
        runs the same kernel bodies as pure Python — slow, but it keeps the
        kernel math testable on hosts without numba.  Default: jit iff
        numba is importable.
    """

    name = "numba"

    def __init__(self, use_jit: bool | None = None):
        if use_jit is None:
            use_jit = NUMBA_AVAILABLE
        if use_jit and not NUMBA_AVAILABLE:
            raise BackendUnavailableError(
                "backend 'numba' requires the numba package, which is not "
                "installed; install numba or select backend 'numpy'"
            )
        self.use_jit = bool(use_jit)
        if self.use_jit:  # pragma: no cover - requires numba
            jit = njit(cache=True, parallel=True)
            self._pair_kernel = jit(_pair_scores_core)
            self._sigmoid_kernel = jit(_sigmoid_core)
            self._blend_kernel = jit(_gru_blend_core)
            self._epilogue_kernel = jit(_add_scale_core)
        else:
            self._pair_kernel = _pair_scores_core
            self._sigmoid_kernel = _sigmoid_core
            self._blend_kernel = _gru_blend_core
            self._epilogue_kernel = _add_scale_core

    # ------------------------------------------------------------------ #
    # Attention pair scoring
    # ------------------------------------------------------------------ #
    def pair_scores(self, embeddings, neighbour_embeddings, w1, b1, w2, b2,
                    tile_bytes: int | None = None) -> Tensor:
        if is_grad_enabled():
            # Training needs the reference autograd closure; the jit covers
            # the no-grad regimes (graph freezing, serving, benchmarks).
            return super().pair_scores(
                embeddings, neighbour_embeddings, w1, b1, w2, b2, tile_bytes
            )
        e = embeddings.data
        e_i = neighbour_embeddings.data
        dim = e.shape[1]
        dtype = np.result_type(e.dtype, w1.data.dtype)
        w1_node = np.ascontiguousarray(w1.data[:, :dim, :], dtype=dtype)
        w1_neigh = np.ascontiguousarray(w1.data[:, dim:, :], dtype=dtype)
        node_part = np.matmul(np.asarray(e, dtype=dtype), w1_node)  # (P, N, h)
        neigh_part = np.matmul(np.asarray(e_i, dtype=dtype), w1_neigh)
        neigh_part += b1.data[:, None, :]  # (P, M, h)
        heads, num_nodes = node_part.shape[0], node_part.shape[1]
        num_significant = neigh_part.shape[1]
        out = w2.shape[-1]
        raw = np.empty((heads, num_nodes, num_significant, out), dtype=dtype)
        self._pair_kernel(
            np.ascontiguousarray(node_part),
            np.ascontiguousarray(neigh_part),
            np.ascontiguousarray(w2.data, dtype=dtype),
            np.ascontiguousarray(b2.data, dtype=dtype),
            raw,
        )
        return Tensor(raw, dtype=dtype)

    # ------------------------------------------------------------------ #
    # Diffusion aggregation (serving)
    # ------------------------------------------------------------------ #
    def diffusion_aggregate_(self, adjacency, gathered, previous, scale, out,
                             gemm_out=None) -> None:
        rows = adjacency.shape[0]
        cols = gathered.shape[-2] * gathered.shape[-1]
        scale_flat = np.ascontiguousarray(scale).reshape(-1)
        if gathered.ndim == 4:
            steps = gathered.shape[0]
            np.matmul(
                adjacency,
                gathered.reshape(steps, -1, cols),
                out=out.reshape(steps, rows, cols),
            )
            for t in range(steps):
                self._epilogue_kernel(out[t], out[t], previous[t], scale_flat)
            return
        target = out if gemm_out is None else gemm_out
        np.matmul(adjacency, gathered.reshape(-1, cols), out=target.reshape(rows, cols))
        self._epilogue_kernel(out, target, previous, scale_flat)

    # ------------------------------------------------------------------ #
    # Fused GRU gates (serving)
    # ------------------------------------------------------------------ #
    def fused_gru_gates_(self, gates: np.ndarray) -> None:
        if not gates.flags.c_contiguous:
            return super().fused_gru_gates_(gates)
        self._sigmoid_kernel(gates.reshape(-1))

    def fused_gru_update_(self, hidden: np.ndarray, update: np.ndarray,
                          candidate: np.ndarray, scratch: np.ndarray) -> None:
        if not (hidden.flags.c_contiguous and update.flags.c_contiguous
                and candidate.flags.c_contiguous):
            return super().fused_gru_update_(hidden, update, candidate, scratch)
        self._blend_kernel(hidden.reshape(-1), update.reshape(-1),
                           candidate.reshape(-1))
