"""The reference execution backend: hand-rolled NumPy, bit-exact.

This module owns the canonical implementations of the three hot kernels —
the tiled attention pair-scoring kernel (:func:`_batched_pair_scores`,
historically hosted by :mod:`repro.core.attention` and still re-exported
from there), the diffusion-aggregation hop and the fused GRU gate chains —
exactly as they ran before the backend registry existed.  Every op
preserves its original operation sequence and BLAS call shapes, because
bit-identity of the chunked/tiled paths (and the golden regression pins)
rests on them; treat any edit here as a numerical change.

Other backends subclass :class:`NumpyBackend` and override only the ops
they accelerate, inheriting the reference behaviour everywhere else.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import OpsBackend
from repro.tensor import Tensor

# Scratch-buffer budget of the tiled scoring kernel: tiles are sized so one
# (P, tile, M, h) hidden-activation block stays around this many bytes,
# keeping the add/bias/relu/matmul chain in cache instead of streaming a
# (P, N, M, h) tensor through main memory several times.  The constant also
# defines the *canonical tile grid*: BLAS reductions are not bit-stable
# across call shapes, so the chunked and unchunked paths stay byte-identical
# only because both issue the exact same per-tile kernel calls — node blocks
# are always rounded up to multiples of this grid, and the grid itself never
# depends on the chunking knobs.
_TILE_BYTES = 4 * 1024 * 1024


def _tile_rows(heads: int, num_significant: int, hidden: int, itemsize: int,
               tile_bytes: int = _TILE_BYTES) -> int:
    """Rows per canonical scoring tile (one (P, tile, M, h) scratch block)."""
    return max(1, int(tile_bytes // max(1, heads * num_significant * hidden * itemsize)))


def _batched_pair_scores(
    embeddings: Tensor,
    neighbour_embeddings: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    tile_bytes: int = _TILE_BYTES,
) -> Tensor:
    """Raw pair scores ``(P, N, M, out)`` of all ``P`` scoring FFNs at once.

    Computes ``relu(E W1_node + E_I W1_neigh + b1) W2 + b2`` for every
    (node, neighbour) pair without materialising either the ``(N, M, 2d)``
    pair tensor or the full ``(P, N, M, h)`` hidden activation: the node axis
    is processed in cache-sized tiles, and the backward pass recomputes each
    tile's activations rather than keeping them alive in the graph.  The
    first-layer node projection is evaluated per tile as well, so every BLAS
    call has the same shape no matter how many rows the caller passes — the
    property the node-tiled scoring mode's bit-identity rests on.
    """
    num_nodes, dim = embeddings.shape
    num_significant = neighbour_embeddings.shape[0]
    heads, _, hidden = w1.shape
    out = w2.shape[-1]

    e = embeddings.data
    e_i = neighbour_embeddings.data
    w1_node, w1_neigh = w1.data[:, :dim, :], w1.data[:, dim:, :]
    dtype = np.result_type(e.dtype, w1.data.dtype)

    neigh_part = np.matmul(e_i, w1_neigh) + b1.data[:, None, :]  # (P, M, h)

    tile = min(num_nodes, _tile_rows(heads, num_significant, hidden, dtype.itemsize,
                                     tile_bytes))

    def _tiles(buffer, consume):
        """Recompute relu(node + neigh) tile-by-tile and hand each to ``consume``."""
        for start in range(0, num_nodes, tile):
            stop = min(start + tile, num_nodes)
            node_part = np.matmul(e[start:stop], w1_node)  # (P, tile, h)
            pre = buffer[:, : stop - start]
            np.add(node_part[:, :, None, :], neigh_part[:, None, :, :], out=pre)
            np.maximum(pre, 0.0, out=pre)
            consume(start, stop, pre)

    raw = np.empty((heads, num_nodes, num_significant, out), dtype=dtype)
    scratch = np.empty((heads, tile, num_significant, hidden), dtype=dtype)

    def _forward_tile(start, stop, pre):
        rows = (stop - start) * num_significant
        np.matmul(
            pre.reshape(heads, rows, hidden),
            w2.data,
            out=raw[:, start:stop].reshape(heads, rows, out),
        )

    _tiles(scratch, _forward_tile)
    raw += b2.data[:, None, None, :]

    def backward(grad):
        grad = np.ascontiguousarray(grad, dtype=dtype)
        grad_w2 = np.zeros_like(w2.data)
        grad_node = np.empty((heads, num_nodes, hidden), dtype=dtype)
        grad_neigh_pre = np.zeros_like(neigh_part)
        buffer = np.empty((heads, tile, num_significant, hidden), dtype=dtype)
        w2_t = np.ascontiguousarray(np.swapaxes(w2.data, -1, -2))

        def _backward_tile(start, stop, pre):
            nonlocal grad_w2, grad_neigh_pre
            rows = (stop - start) * num_significant
            grad_tile = grad[:, start:stop].reshape(heads, rows, out)
            grad_w2 += np.matmul(
                np.swapaxes(pre.reshape(heads, rows, hidden), -1, -2), grad_tile
            )
            grad_pre = np.matmul(grad_tile, w2_t).reshape(
                heads, stop - start, num_significant, hidden
            )
            grad_pre *= pre > 0.0  # relu mask from the recomputed activations
            grad_node[:, start:stop] = grad_pre.sum(axis=2)
            grad_neigh_pre += grad_pre.sum(axis=1)

        _tiles(buffer, _backward_tile)

        grad_e = np.matmul(grad_node, np.swapaxes(w1_node, -1, -2)).sum(axis=0)
        grad_e_i = np.matmul(grad_neigh_pre, np.swapaxes(w1_neigh, -1, -2)).sum(axis=0)
        grad_w1 = np.concatenate(
            [np.matmul(e.T, grad_node), np.matmul(e_i.T, grad_neigh_pre)], axis=1
        )
        grad_b1 = grad_neigh_pre.sum(axis=1)
        grad_b2 = grad.sum(axis=(1, 2))
        return grad_e, grad_e_i, grad_w1, grad_b1, grad_w2, grad_b2

    return Tensor._make(
        raw, (embeddings, neighbour_embeddings, w1, b1, w2, b2), backward
    )


class NumpyBackend(OpsBackend):
    """Bit-exact reference backend (the pre-registry implementations)."""

    name = "numpy"

    # ------------------------------------------------------------------ #
    # Attention pair scoring
    # ------------------------------------------------------------------ #
    def pair_scores(self, embeddings, neighbour_embeddings, w1, b1, w2, b2,
                    tile_bytes: int | None = None) -> Tensor:
        if tile_bytes is None:
            tile_bytes = _TILE_BYTES
        return _batched_pair_scores(
            embeddings, neighbour_embeddings, w1, b1, w2, b2, tile_bytes=tile_bytes
        )

    # ------------------------------------------------------------------ #
    # Diffusion aggregation
    # ------------------------------------------------------------------ #
    def diffusion_hop(self, adjacency, gathered, previous, scale) -> Tensor:
        return (adjacency.matmul(gathered) + previous) * scale

    def diffusion_aggregate_(self, adjacency, gathered, previous, scale, out,
                             gemm_out=None) -> None:
        rows = adjacency.shape[0]
        cols = gathered.shape[-2] * gathered.shape[-1]
        if gathered.ndim == 4:
            # Whole-sequence precompute: one batched gemm over (T, M, B·C).
            steps = gathered.shape[0]
            np.matmul(
                adjacency,
                gathered.reshape(steps, -1, cols),
                out=out.reshape(steps, rows, cols),
            )
            out += previous
            out *= scale
            return
        target = out if gemm_out is None else gemm_out
        np.matmul(adjacency, gathered.reshape(-1, cols), out=target.reshape(rows, cols))
        if gemm_out is None:
            out += previous
        else:
            np.add(gemm_out, previous, out=out)
        out *= scale

    # ------------------------------------------------------------------ #
    # Fused GRU gates
    # ------------------------------------------------------------------ #
    def fused_gru_gates(self, gate_pre) -> Tensor:
        return gate_pre.sigmoid()

    def fused_gru_update(self, update, hidden, candidate_pre) -> Tensor:
        candidate = candidate_pre.tanh()
        return update * hidden + (1.0 - update) * candidate

    def fused_gru_gates_(self, gates: np.ndarray) -> None:
        # In-place 1 / (1 + exp(-max(x, -60))).  The reference
        # ``Tensor.sigmoid`` clips to [-60, 60]; the lower bound is what
        # prevents ``exp`` overflow, and dropping the upper bound changes
        # saturated gates by less than 1e-26 — far below the serving
        # kernel's 1e-10 equivalence envelope.
        np.maximum(gates, -60.0, out=gates)
        np.negative(gates, out=gates)
        np.exp(gates, out=gates)
        gates += 1.0
        np.reciprocal(gates, out=gates)

    def fused_gru_update_(self, hidden: np.ndarray, update: np.ndarray,
                          candidate: np.ndarray, scratch: np.ndarray) -> None:
        np.tanh(candidate, out=candidate)
        # hidden = update * hidden + (1 - update) * candidate
        np.subtract(1.0, update, out=scratch)
        scratch *= candidate
        hidden *= update
        hidden += scratch

    # ------------------------------------------------------------------ #
    # Workspace allocation
    # ------------------------------------------------------------------ #
    def empty(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)
