"""Backend registry: name → :class:`~repro.backend.base.OpsBackend`.

Every path that selects an execution backend — ``SAGDFNConfig.backend``,
the ``REPRO_BACKEND`` environment variable, a ``ForecastService``/CLI
override — routes through :func:`resolve_backend_name` and
:func:`get_backend`, so an unknown name fails the same way everywhere:
a ``ValueError`` listing the registered backends.
"""

from __future__ import annotations

import os
import threading
from typing import Callable

from repro.backend.base import OpsBackend

#: Environment variable consulted when no backend is selected explicitly.
ENV_VAR = "REPRO_BACKEND"

#: Name used when neither config nor environment selects a backend.
DEFAULT_BACKEND = "numpy"

_lock = threading.Lock()
_factories: dict[str, Callable[[], OpsBackend]] = {}
_instances: dict[str, OpsBackend] = {}


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot run here (e.g. numba is not installed)."""


def register_backend(name: str, factory: Callable[[], OpsBackend] | None = None):
    """Register ``factory`` (a class or zero-arg callable) under ``name``.

    Usable directly — ``register_backend("numpy", NumpyBackend)`` — or as a
    class decorator::

        @register_backend("mybackend")
        class MyBackend(OpsBackend): ...

    Re-registering a name replaces the factory (and drops any cached
    instance), so tests and downstream packages can override built-ins.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")

    def _register(factory: Callable[[], OpsBackend]):
        with _lock:
            _factories[name] = factory
            _instances.pop(name, None)
        return factory

    if factory is None:
        return _register
    return _register(factory)


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (primarily for test cleanup)."""
    with _lock:
        _factories.pop(name, None)
        _instances.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    with _lock:
        return tuple(sorted(_factories))


def resolve_backend_name(explicit: str | None = None) -> str:
    """Resolve which backend name to use.

    Precedence: ``explicit`` (a config field or call-site override) >
    the ``REPRO_BACKEND`` environment variable > ``"numpy"``.  The resolved
    name is validated against the registry; an unknown name raises a
    ``ValueError`` listing what is registered.
    """
    name = explicit
    if name is None:
        env = os.environ.get(ENV_VAR, "").strip()
        name = env or DEFAULT_BACKEND
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    with _lock:
        known = name in _factories
    if not known:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return name


def get_backend(backend: str | OpsBackend | None = None) -> OpsBackend:
    """Return the (cached) backend instance selected by ``backend``.

    ``backend`` may be an :class:`OpsBackend` instance (returned as-is), a
    registered name, or ``None`` — in which case the ``REPRO_BACKEND``
    environment variable and the ``"numpy"`` default apply.  Raises
    ``ValueError`` for unknown names and :class:`BackendUnavailableError`
    when the backend's factory reports it cannot run here.
    """
    if isinstance(backend, OpsBackend):
        return backend
    name = resolve_backend_name(backend)
    with _lock:
        instance = _instances.get(name)
        if instance is None:
            instance = _factories[name]()
            _instances[name] = instance
    return instance
