"""Baselines of the paper's evaluation (Tables III–X).

Every method is re-implemented on the shared ``repro`` substrate so the
comparison is self-contained and runnable offline:

* **Classical** — Historical Average, ARIMA, VAR, SVR (Section II-A).
* **Univariate neural** — LSTM / GRU sequence-to-sequence (Section II-B).
* **Predefined-graph STGNNs** — DCRNN, STGCN, STSGCN.
* **Adaptive-graph STGNNs** — Graph WaveNet, AGCRN, MTGNN, GMAN, ASTGCN,
  GTS, STEP, D2STGNN (all in "lite" form: same architecture family and the
  same asymptotic cost profile, reduced hidden sizes).
* **Non-GNN long-sequence models** — TimesNet, FEDformer, ETSformer
  (Table IX), also in lite form.

:mod:`repro.baselines.registry` exposes a uniform factory keyed by the names
used in the paper's tables, together with each model's memory-cost profile
(consumed by the OOM analysis of Tables V–VII).
"""

from repro.baselines.base import ClassicalForecaster, NeuralForecaster
from repro.baselines.historical_average import HistoricalAverage
from repro.baselines.arima import ARIMAForecaster
from repro.baselines.var import VARForecaster
from repro.baselines.svr import SVRForecaster
from repro.baselines.lstm import LSTMForecaster, GRUForecaster
from repro.baselines.dcrnn import DCRNNForecaster
from repro.baselines.stgcn import STGCNForecaster
from repro.baselines.stsgcn import STSGCNForecaster
from repro.baselines.graph_wavenet import GraphWaveNetForecaster
from repro.baselines.agcrn import AGCRNForecaster
from repro.baselines.mtgnn import MTGNNForecaster
from repro.baselines.gman import GMANForecaster
from repro.baselines.astgcn import ASTGCNForecaster
from repro.baselines.gts import GTSForecaster
from repro.baselines.step import STEPForecaster
from repro.baselines.d2stgnn import D2STGNNForecaster
from repro.baselines.non_gnn import TimesNetForecaster, FEDformerForecaster, ETSformerForecaster
from repro.baselines.registry import (
    BASELINE_REGISTRY,
    BaselineInfo,
    build_baseline,
    classical_baseline_names,
    neural_baseline_names,
)

__all__ = [
    "ClassicalForecaster",
    "NeuralForecaster",
    "HistoricalAverage",
    "ARIMAForecaster",
    "VARForecaster",
    "SVRForecaster",
    "LSTMForecaster",
    "GRUForecaster",
    "DCRNNForecaster",
    "STGCNForecaster",
    "STSGCNForecaster",
    "GraphWaveNetForecaster",
    "AGCRNForecaster",
    "MTGNNForecaster",
    "GMANForecaster",
    "ASTGCNForecaster",
    "GTSForecaster",
    "STEPForecaster",
    "D2STGNNForecaster",
    "TimesNetForecaster",
    "FEDformerForecaster",
    "ETSformerForecaster",
    "BASELINE_REGISTRY",
    "BaselineInfo",
    "build_baseline",
    "classical_baseline_names",
    "neural_baseline_names",
]
