"""AGCRN baseline (Bai et al., 2020) — adaptive graph convolutional recurrent network.

AGCRN learns one node-embedding matrix ``E`` and uses
``softmax(relu(E Eᵀ))`` as the graph-convolution support inside a GRU,
emitting all horizons in a single shot.  Both the support computation and the
graph convolution are ``O(N²)``, which is why the original model runs out of
memory beyond ~1750 nodes on a 32 GB GPU (Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.core.gconv import OneStepFastGConvCell
from repro.nn import Linear
from repro.nn.module import Parameter
from repro.sparse import softmax
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class AGCRNForecaster(NeuralForecaster):
    """Adaptive Graph Convolutional Recurrent Network (lite)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        embedding_dim: int = 10,
        hidden_size: int = 32,
        diffusion_steps: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        self.node_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="node_embeddings"
        )
        self.cell = OneStepFastGConvCell(
            input_dim, hidden_size, output_dim=1, diffusion_steps=diffusion_steps, seed=base + 1
        )
        self.head = Linear(hidden_size, horizon, seed=base + 2)

    def adaptive_adjacency(self) -> Tensor:
        """Dense support ``softmax(relu(E Eᵀ))``."""
        scores = self.node_embeddings.matmul(self.node_embeddings.transpose()).relu()
        return softmax(scores, axis=-1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        adjacency = self.adaptive_adjacency()
        hidden = self.cell.initial_state(batch, nodes)
        for t in range(steps):
            hidden, _ = self.cell(history[:, t], hidden, adjacency, index_set=None)
        output = self.head(hidden)  # (B, N, horizon) emitted in one shot
        return output.transpose(0, 2, 1).unsqueeze(-1)
