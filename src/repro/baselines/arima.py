"""ARIMA baseline fitted independently per node.

The paper uses a seasonal ARIMA as its classical univariate baseline.  With
no statsmodels available offline, this implementation fits an
ARIMA(p, d, 0) model per node by ordinary least squares on the differenced
series (the AR coefficients of the conditional-likelihood solution), which is
the standard "AR on Δx" approximation and captures the same linear temporal
structure the paper's ARIMA baseline captures.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClassicalForecaster


class ARIMAForecaster(ClassicalForecaster):
    """Per-node ARIMA(p, d, 0) via least squares on the differenced series.

    Parameters
    ----------
    order:
        ``(p, d)`` — autoregressive order and differencing order.
    ridge:
        Small L2 regulariser stabilising the normal equations.
    """

    def __init__(self, history: int, horizon: int, order: tuple[int, int] = (3, 1),
                 ridge: float = 1e-3):
        super().__init__(history, horizon)
        p, d = order
        if p < 1 or d < 0 or d > 2:
            raise ValueError("order must satisfy p >= 1 and 0 <= d <= 2")
        self.p = p
        self.d = d
        self.ridge = ridge
        self.coefficients_: np.ndarray | None = None  # (N, p)
        self.intercepts_: np.ndarray | None = None  # (N,)

    @staticmethod
    def _difference(values: np.ndarray, order: int) -> np.ndarray:
        for _ in range(order):
            values = np.diff(values, axis=0)
        return values

    def fit(self, values: np.ndarray) -> "ARIMAForecaster":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be (steps, nodes)")
        differenced = self._difference(values, self.d)
        steps, nodes = differenced.shape
        if steps <= self.p + 1:
            raise ValueError("not enough observations to fit the AR coefficients")
        self.coefficients_ = np.zeros((nodes, self.p))
        self.intercepts_ = np.zeros(nodes)
        # Design matrix of lagged values, shared structure across nodes.
        targets = differenced[self.p :]
        lags = np.stack([differenced[self.p - k - 1 : steps - k - 1] for k in range(self.p)], axis=-1)
        for node in range(nodes):
            design = np.concatenate([lags[:, node, :], np.ones((targets.shape[0], 1))], axis=1)
            gram = design.T @ design + self.ridge * np.eye(self.p + 1)
            solution = np.linalg.solve(gram, design.T @ targets[:, node])
            self.coefficients_[node] = solution[: self.p]
            self.intercepts_[node] = solution[self.p]
        self._fitted = True
        return self

    def predict(self, history: np.ndarray) -> np.ndarray:
        self._check_fitted()
        history = self._check_history(history)
        nodes = history.shape[1]
        if self.coefficients_.shape[0] != nodes:
            raise ValueError("history node count does not match the fitted model")
        differenced = self._difference(history, self.d)
        if differenced.shape[0] < self.p:
            pad = np.zeros((self.p - differenced.shape[0], nodes))
            differenced = np.concatenate([pad, differenced], axis=0)
        recent = differenced[-self.p :][::-1].copy()  # (p, N), most recent first
        forecasts = np.zeros((self.horizon, nodes))
        level = history[-1].copy()
        trend = (history[-1] - history[-2]) if self.d >= 2 and history.shape[0] >= 2 else None
        for step in range(self.horizon):
            delta = (self.coefficients_ * recent.T).sum(axis=1) + self.intercepts_
            recent = np.concatenate([delta[None, :], recent[:-1]], axis=0)
            if self.d == 0:
                forecasts[step] = delta
            elif self.d == 1:
                level = level + delta
                forecasts[step] = level
            else:
                trend = trend + delta
                level = level + trend
                forecasts[step] = level
        return forecasts
