"""ASTGCN baseline (Guo et al., 2019) — attention-based spatial-temporal GCN.

ASTGCN modulates a Chebyshev graph convolution with a learned ``N × N``
spatial-attention matrix and a ``T × T`` temporal-attention matrix.  The lite
re-implementation keeps one attention-modulated graph convolution block over
the predefined adjacency, followed by a temporal convolution and a direct
multi-horizon head.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.graph import symmetric_normalize
from repro.nn import Linear
from repro.nn.conv import GatedTemporalConv
from repro.nn.module import Parameter
from repro.sparse import softmax
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class ASTGCNForecaster(NeuralForecaster):
    """Attention-based Spatial-Temporal GCN (lite)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        adjacency: np.ndarray,
        hidden_size: int = 16,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        adjacency = np.asarray(adjacency, dtype=np.float64)
        self.support = Tensor(symmetric_normalize(adjacency + np.eye(num_nodes)))
        self.hidden_size = hidden_size
        # Spatial attention parameters (bilinear form over node summaries).
        self.attention_left = Parameter(rng.normal(0.0, 0.1, size=(history * input_dim,)),
                                        name="attention_left")
        self.attention_right = Parameter(rng.normal(0.0, 0.1, size=(history * input_dim,)),
                                         name="attention_right")
        self.input_proj = Linear(input_dim, hidden_size, seed=base + 1)
        self.graph_weight = Linear(hidden_size, hidden_size, seed=base + 2)
        self.temporal = GatedTemporalConv(hidden_size, hidden_size, kernel_size=2, seed=base + 3)
        self.head = Linear(hidden_size * history, horizon, seed=base + 4)

    def spatial_attention(self, history: Tensor) -> Tensor:
        """Per-sample ``(B, N, N)`` attention modulating the graph support."""
        batch, steps, nodes, channels = history.shape
        summary = history.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * channels)
        left = summary.matmul(self.attention_left.reshape(-1, 1))  # (B, N, 1)
        right = summary.matmul(self.attention_right.reshape(-1, 1))  # (B, N, 1)
        scores = left + right.transpose(0, 2, 1)  # (B, N, N)
        return softmax(scores.tanh(), axis=-1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        attention = self.spatial_attention(history)  # (B, N, N)
        modulated = attention * self.support  # broadcast over batch
        hidden = self.input_proj(history)  # (B, T, N, H)
        # Attention-modulated graph convolution per step (support differs per sample).
        spatial = modulated.unsqueeze(1).matmul(hidden)
        hidden = (self.graph_weight(spatial) + hidden).relu()
        per_node = hidden.transpose(0, 2, 3, 1).reshape(batch * nodes, self.hidden_size, steps)
        per_node = self.temporal(per_node)
        flattened = per_node.reshape(batch, nodes, self.hidden_size * steps)
        output = self.head(flattened)
        return output.transpose(0, 2, 1).unsqueeze(-1)
