"""Common interfaces shared by every baseline.

Two families exist:

* :class:`NeuralForecaster` — a :class:`~repro.nn.module.Module` mapping a
  normalised history tensor ``(B, h, N, C)`` to predictions ``(B, f, N, 1)``;
  trained by :class:`repro.core.trainer.Trainer` exactly like SAGDFN.
* :class:`ClassicalForecaster` — statistical / machine-learning methods with
  a ``fit(series)`` / ``predict(history)`` interface operating on raw NumPy
  arrays; evaluated by :func:`repro.evaluation.evaluator.evaluate_classical`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


class NeuralForecaster(Module):
    """Base class for neural baselines.

    Sub-classes set ``history``, ``horizon``, ``num_nodes`` and implement
    :meth:`forward`; the attributes allow generic harness code to size
    batches correctly.
    """

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int):
        super().__init__()
        self.num_nodes = num_nodes
        self.input_dim = input_dim
        self.history = history
        self.horizon = horizon

    def forward(self, history: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError


class ClassicalForecaster:
    """Base class for non-neural baselines (ARIMA, VAR, SVR, HA).

    ``fit`` receives the raw training values ``(T, N)`` of the target channel;
    ``predict`` maps a history window ``(h, N)`` to a forecast ``(f, N)``.
    """

    def __init__(self, history: int, horizon: int):
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        self.history = history
        self.horizon = horizon
        self._fitted = False

    def fit(self, values: np.ndarray) -> "ClassicalForecaster":
        raise NotImplementedError

    def predict(self, history: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fit before predicting")

    def _check_history(self, history: np.ndarray) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64)
        if history.ndim != 2:
            raise ValueError(f"history must be (steps, nodes), got shape {history.shape}")
        return history
