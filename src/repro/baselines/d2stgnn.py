"""D2STGNN baseline (Shao et al., 2022) — decoupled dynamic spatial-temporal GNN.

D2STGNN decouples traffic into a *diffusion* component (signals propagating
between neighbouring nodes) and an *inherent* component (each node's own
dynamics), modelling the first with graph convolutions over both a learned
and a predefined adjacency, and the second with a per-node recurrent module.
The paper evaluates the variant ``D2STGNN(c)`` with the day-in-week input
removed; this lite re-implementation follows that variant.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.core.gconv import OneStepFastGConvCell
from repro.graph import row_normalize
from repro.nn import GRUCell, Linear
from repro.nn.module import Parameter
from repro.sparse import softmax
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class D2STGNNForecaster(NeuralForecaster):
    """Decoupled dynamic spatial-temporal GNN (lite, the "(c)" variant)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        adjacency: np.ndarray | None = None,
        embedding_dim: int = 10,
        hidden_size: int = 24,
        diffusion_steps: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        self.hidden_size = hidden_size
        self.node_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="node_embeddings"
        )
        self.predefined_support = None
        if adjacency is not None:
            adjacency = np.asarray(adjacency, dtype=np.float64)
            self.predefined_support = Tensor(row_normalize(adjacency))
        # Diffusion branch: graph-convolutional GRU over the learned support.
        self.diffusion_cell = OneStepFastGConvCell(
            input_dim, hidden_size, output_dim=1, diffusion_steps=diffusion_steps, seed=base + 1
        )
        # Inherent branch: per-node GRU sharing weights across nodes.
        self.inherent_cell = GRUCell(input_dim, hidden_size, seed=base + 2)
        self.diffusion_head = Linear(hidden_size, horizon, seed=base + 3)
        self.inherent_head = Linear(hidden_size, horizon, seed=base + 4)

    def learned_adjacency(self) -> Tensor:
        """Learned support, optionally blended with the predefined one."""
        scores = self.node_embeddings.matmul(self.node_embeddings.transpose()).relu()
        learned = softmax(scores, axis=-1)
        if self.predefined_support is None:
            return learned
        return 0.5 * learned + 0.5 * self.predefined_support

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        adjacency = self.learned_adjacency()

        diffusion_hidden = self.diffusion_cell.initial_state(batch, nodes)
        inherent_hidden = self.inherent_cell.initial_state(batch * nodes)
        flat = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, channels)
        for t in range(steps):
            diffusion_hidden, _ = self.diffusion_cell(
                history[:, t], diffusion_hidden, adjacency, index_set=None
            )
            inherent_hidden = self.inherent_cell(flat[:, t, :], inherent_hidden)

        diffusion_output = self.diffusion_head(diffusion_hidden)  # (B, N, horizon)
        inherent_output = self.inherent_head(inherent_hidden).reshape(batch, nodes, self.horizon)
        output = diffusion_output + inherent_output
        return output.transpose(0, 2, 1).unsqueeze(-1)
