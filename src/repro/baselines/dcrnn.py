"""DCRNN baseline (Li et al., 2018) — diffusion-convolution GRU with a *predefined* graph.

DCRNN was the first STGNN traffic forecaster; it requires the road-network
adjacency to be known in advance (built from sensor distances) and plugs the
resulting diffusion convolution into a GRU encoder–decoder.  The recurrent
machinery is shared with SAGDFN (:class:`repro.core.encoder_decoder`); the
only difference is that the support here is a *fixed dense* random-walk
matrix instead of the learned slim adjacency, i.e. cost ``O(N²)`` per step.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.core.encoder_decoder import SAGDFNEncoderDecoder
from repro.graph import row_normalize
from repro.tensor import Tensor


class DCRNNForecaster(NeuralForecaster):
    """Diffusion Convolutional Recurrent Neural Network (lite re-implementation)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        adjacency: np.ndarray,
        hidden_size: int = 32,
        diffusion_steps: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.shape != (num_nodes, num_nodes):
            raise ValueError(
                f"adjacency must be ({num_nodes}, {num_nodes}), got {adjacency.shape}"
            )
        self.support = Tensor(row_normalize(adjacency))
        self.forecaster = SAGDFNEncoderDecoder(
            input_dim=input_dim,
            hidden_dim=hidden_size,
            output_dim=1,
            horizon=horizon,
            diffusion_steps=diffusion_steps,
            seed=seed,
        )

    def forward(self, history: Tensor) -> Tensor:
        return self.forecaster(history, self.support, index_set=None)
