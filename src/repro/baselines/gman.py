"""GMAN baseline (Zheng et al., 2020) — graph multi-attention network.

GMAN stacks spatial attention (every node attends to every other node) and
temporal attention (every step attends to every previous step) on top of
learned spatio-temporal embeddings.  The spatial attention alone costs
``O(N²·D)`` per step, which is why the original runs out of memory on the
2000-node datasets.  The lite re-implementation keeps one spatial-attention
block and one temporal-attention block.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.nn import Linear, MultiHeadAttention
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class GMANForecaster(NeuralForecaster):
    """Graph Multi-Attention Network (lite): spatial + temporal attention."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        hidden_size: int = 16,
        num_heads: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        self.hidden_size = hidden_size
        self.node_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, hidden_size)), name="node_embeddings"
        )
        self.input_proj = Linear(input_dim, hidden_size, seed=base + 1)
        self.spatial_attention = MultiHeadAttention(hidden_size, num_heads, seed=base + 2)
        self.temporal_attention = MultiHeadAttention(hidden_size, num_heads, seed=base + 3)
        self.head = Linear(hidden_size * history, horizon, seed=base + 4)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        hidden = self.input_proj(history) + self.node_embeddings  # (B, T, N, H)

        # Spatial attention: nodes attend to nodes within each time step.
        spatial_in = hidden.reshape(batch * steps, nodes, self.hidden_size)
        spatial_out = self.spatial_attention(spatial_in)
        hidden = hidden + spatial_out.reshape(batch, steps, nodes, self.hidden_size)

        # Temporal attention: steps attend to steps within each node.
        temporal_in = hidden.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, self.hidden_size)
        temporal_out = self.temporal_attention(temporal_in)
        temporal_out = temporal_out.reshape(batch, nodes, steps, self.hidden_size)
        hidden = hidden + temporal_out.transpose(0, 2, 1, 3)

        flattened = hidden.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * self.hidden_size)
        output = self.head(flattened)
        return output.transpose(0, 2, 1).unsqueeze(-1)
