"""Graph WaveNet baseline (Wu et al., 2019) — adaptive adjacency + gated TCN.

Graph WaveNet learns a dense adaptive adjacency ``softmax(relu(E₁ E₂ᵀ))``
from two node-embedding matrices and interleaves it with dilated gated
temporal convolutions.  Cost of the spatial step is ``O(N²·D)`` per layer —
the inner-product family of Table I.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.nn import Linear
from repro.nn.conv import GatedTemporalConv
from repro.nn.module import Module, Parameter
from repro.sparse import softmax
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class GraphWaveNetForecaster(NeuralForecaster):
    """Graph WaveNet (lite): two gated-TCN + adaptive-graph-conv blocks."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        embedding_dim: int = 10,
        hidden_size: int = 16,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        self.hidden_size = hidden_size
        self.source_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="source_embeddings"
        )
        self.target_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="target_embeddings"
        )
        self.input_proj = Linear(input_dim, hidden_size, seed=base + 1)
        self.temporal_blocks = [
            GatedTemporalConv(hidden_size, hidden_size, kernel_size=2, dilation=1, seed=base + 2),
            GatedTemporalConv(hidden_size, hidden_size, kernel_size=2, dilation=2, seed=base + 3),
        ]
        self.spatial_blocks = [
            Linear(hidden_size, hidden_size, seed=base + 4),
            Linear(hidden_size, hidden_size, seed=base + 5),
        ]
        self.head = Linear(hidden_size * history, horizon, seed=base + 6)

    def adaptive_adjacency(self) -> Tensor:
        """The learned dense ``softmax(relu(E₁ E₂ᵀ))`` adjacency."""
        scores = self.source_embeddings.matmul(self.target_embeddings.transpose()).relu()
        return softmax(scores, axis=-1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        adjacency = self.adaptive_adjacency()
        hidden = self.input_proj(history)  # (B, T, N, H)
        for temporal, spatial in zip(self.temporal_blocks, self.spatial_blocks):
            # Temporal gated convolution per node.
            per_node = hidden.transpose(0, 2, 3, 1).reshape(batch * nodes, self.hidden_size, steps)
            per_node = temporal(per_node)
            temporal_out = per_node.reshape(batch, nodes, self.hidden_size, steps).transpose(
                0, 3, 1, 2
            )
            # Adaptive graph convolution per time step, plus residual.
            spatial_out = spatial(adjacency.matmul(temporal_out))
            hidden = (temporal_out + spatial_out).relu()
        flattened = hidden.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * self.hidden_size)
        output = self.head(flattened)  # (B, N, horizon)
        return output.transpose(0, 2, 1).unsqueeze(-1)
