"""GTS baseline (Shang et al., 2021) — discrete graph structure learning from the full series.

GTS derives per-node features from the *entire training series*, scores every
node pair with a feed-forward network, and uses the resulting dense ``N × N``
probability matrix as the support of a DCRNN-style recurrent forecaster.  The
pair-wise scoring is what makes the method accurate on METR-LA and what makes
its memory footprint ``O(N²·d)`` — it cannot fit 2000-node graphs on a 32 GB
GPU (Example 1, Tables V–VII).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.core.encoder_decoder import SAGDFNEncoderDecoder
from repro.nn import FeedForward
from repro.sparse import softmax
from repro.tensor import Tensor, concat
from repro.utils.seed import spawn_rng


class GTSForecaster(NeuralForecaster):
    """Graph structure learning + diffusion-GRU forecaster (lite).

    Parameters
    ----------
    series_features:
        ``(N, F)`` summary features of each node's full training series
        (means over coarse bins); the graph learner conditions on them, as
        the original conditions on the whole training signal.
    """

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        series_features: np.ndarray,
        hidden_size: int = 32,
        feature_dim: int = 16,
        diffusion_steps: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        series_features = np.asarray(series_features, dtype=np.float64)
        if series_features.shape[0] != num_nodes:
            raise ValueError("series_features must have one row per node")
        # Normalise the static series features once.
        std = series_features.std(axis=0, keepdims=True)
        std[std < 1e-8] = 1.0
        self.series_features = Tensor(
            (series_features - series_features.mean(axis=0, keepdims=True)) / std
        )
        self.feature_encoder = FeedForward(
            series_features.shape[1], feature_dim, feature_dim, seed=base
        )
        self.pair_scorer = FeedForward(2 * feature_dim, feature_dim, 1, seed=base + 1)
        self.forecaster = SAGDFNEncoderDecoder(
            input_dim=input_dim,
            hidden_dim=hidden_size,
            output_dim=1,
            horizon=horizon,
            diffusion_steps=diffusion_steps,
            seed=base + 2,
        )

    @classmethod
    def features_from_series(cls, values: np.ndarray, num_bins: int = 24) -> np.ndarray:
        """Summarise a ``(T, N)`` training series into ``(N, num_bins)`` features."""
        values = np.asarray(values, dtype=np.float64)
        steps = values.shape[0]
        edges = np.linspace(0, steps, num_bins + 1, dtype=int)
        features = [values[edges[i]: edges[i + 1]].mean(axis=0) for i in range(num_bins)]
        return np.stack(features, axis=1)

    def learned_adjacency(self) -> Tensor:
        """Dense pair-wise support: softmax over feed-forward pair scores."""
        encoded = self.feature_encoder(self.series_features)  # (N, F)
        n, f = encoded.shape
        left = encoded.unsqueeze(1).broadcast_to((n, n, f))
        right = encoded.unsqueeze(0).broadcast_to((n, n, f))
        scores = self.pair_scorer(concat([left, right], axis=-1)).squeeze(-1)  # (N, N)
        return softmax(scores, axis=-1)

    def forward(self, history: Tensor) -> Tensor:
        adjacency = self.learned_adjacency()
        return self.forecaster(history, adjacency, index_set=None)
