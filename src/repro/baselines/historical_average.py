"""Historical-average forecaster — the simplest sanity-check baseline."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClassicalForecaster


class HistoricalAverage(ClassicalForecaster):
    """Predict the per-node average of the same time-of-day slot.

    The model memorises, for every node and every slot of the daily cycle,
    the mean training value; at prediction time it replays those means.  If
    the daily period is unknown it falls back to the mean of the input
    window.
    """

    def __init__(self, history: int, horizon: int, steps_per_day: int | None = None):
        super().__init__(history, horizon)
        self.steps_per_day = steps_per_day
        self.slot_means_: np.ndarray | None = None
        self.global_means_: np.ndarray | None = None
        self._train_length = 0

    def fit(self, values: np.ndarray) -> "HistoricalAverage":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be (steps, nodes)")
        self._train_length = values.shape[0]
        self.global_means_ = values.mean(axis=0)
        if self.steps_per_day and self.steps_per_day > 1:
            slots = np.arange(values.shape[0]) % self.steps_per_day
            means = np.zeros((self.steps_per_day, values.shape[1]))
            for slot in range(self.steps_per_day):
                mask = slots == slot
                means[slot] = values[mask].mean(axis=0) if mask.any() else self.global_means_
            self.slot_means_ = means
        self._fitted = True
        return self

    def predict(self, history: np.ndarray, start_step: int | None = None) -> np.ndarray:
        self._check_fitted()
        history = self._check_history(history)
        if self.slot_means_ is None or start_step is None:
            return np.repeat(history.mean(axis=0, keepdims=True), self.horizon, axis=0)
        slots = (start_step + np.arange(self.horizon)) % self.steps_per_day
        return self.slot_means_[slots]
