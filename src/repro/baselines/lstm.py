"""Univariate LSTM / GRU baselines (shared weights across nodes).

These are the paper's "LSTM" baseline: each node's history is encoded
independently by a recurrent network with weights shared across nodes, and
the full horizon is emitted by a direct linear head.  No spatial information
is exchanged, which is precisely the deficit the STGNN baselines address.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.nn import GRUCell, LSTMCell, Linear
from repro.tensor import Tensor


class LSTMForecaster(NeuralForecaster):
    """Per-node LSTM encoder + direct multi-horizon linear decoder."""

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int,
                 hidden_size: int = 32, seed: int | None = 0):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_dim, hidden_size, seed=base)
        self.head = Linear(hidden_size, horizon, seed=base + 7)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        flat = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, channels)
        h, c = self.cell.initial_state(batch * nodes)
        for t in range(steps):
            h, c = self.cell(flat[:, t, :], (h, c))
        output = self.head(h)  # (B*N, horizon)
        output = output.reshape(batch, nodes, self.horizon).transpose(0, 2, 1)
        return output.unsqueeze(-1)


class GRUForecaster(NeuralForecaster):
    """Per-node GRU encoder + direct multi-horizon linear decoder."""

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int,
                 hidden_size: int = 32, seed: int | None = 0):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_dim, hidden_size, seed=base)
        self.head = Linear(hidden_size, horizon, seed=base + 7)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        flat = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps, channels)
        h = self.cell.initial_state(batch * nodes)
        for t in range(steps):
            h = self.cell(flat[:, t, :], h)
        output = self.head(h)
        output = output.reshape(batch, nodes, self.horizon).transpose(0, 2, 1)
        return output.unsqueeze(-1)
