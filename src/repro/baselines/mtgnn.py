"""MTGNN baseline (Wu et al., 2020) — uni-directional graph learning + mix-hop propagation.

MTGNN learns two node-embedding matrices and derives a directed adjacency
``A = relu(tanh(α(M₁ M₂ᵀ − M₂ M₁ᵀ)))`` sparsified to the top-k entries per
row, combines it with mix-hop propagation layers, and models time with
dilated temporal convolutions, predicting every horizon at once.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.nn import Linear
from repro.nn.conv import GatedTemporalConv
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class MixHopPropagation(Module):
    """Mix-hop propagation layer: ``H^{(k+1)} = β H_in + (1−β) Ã H^{(k)}``, hops concatenated."""

    def __init__(self, channels: int, hops: int = 2, beta: float = 0.05, seed: int | None = 0):
        super().__init__()
        self.hops = hops
        self.beta = beta
        self.mixer = Linear(channels * (hops + 1), channels, seed=seed)

    def forward(self, x: Tensor, adjacency: Tensor) -> Tensor:
        from repro.tensor import concat

        outputs = [x]
        current = x
        for _ in range(self.hops):
            current = self.beta * x + (1.0 - self.beta) * adjacency.matmul(current)
            outputs.append(current)
        return self.mixer(concat(outputs, axis=-1))


class MTGNNForecaster(NeuralForecaster):
    """Multivariate Time-series GNN (lite): graph learning + mix-hop + gated TCN."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        embedding_dim: int = 10,
        hidden_size: int = 16,
        top_k: int | None = None,
        alpha: float = 3.0,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        rng = spawn_rng(base)
        self.hidden_size = hidden_size
        self.alpha = alpha
        self.top_k = top_k if top_k is not None else max(2, num_nodes // 5)
        self.source_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="source_embeddings"
        )
        self.target_embeddings = Parameter(
            rng.normal(0.0, 0.1, size=(num_nodes, embedding_dim)), name="target_embeddings"
        )
        self.input_proj = Linear(input_dim, hidden_size, seed=base + 1)
        self.temporal = GatedTemporalConv(hidden_size, hidden_size, kernel_size=2, seed=base + 2)
        self.mix_hop = MixHopPropagation(hidden_size, hops=2, seed=base + 3)
        self.head = Linear(hidden_size * history, horizon, seed=base + 4)

    def learned_adjacency(self) -> Tensor:
        """Uni-directional learned adjacency with top-k row sparsification.

        The top-k mask is computed from the current scores and applied as a
        constant multiplier, mirroring the original implementation (the mask
        is not differentiated through).
        """
        forward_scores = self.source_embeddings.matmul(self.target_embeddings.transpose())
        backward_scores = self.target_embeddings.matmul(self.source_embeddings.transpose())
        scores = ((forward_scores - backward_scores) * self.alpha).tanh().relu()
        data = scores.data
        if self.top_k < self.num_nodes:
            threshold = np.sort(data, axis=1)[:, -self.top_k][:, None]
            mask = (data >= threshold).astype(data.dtype)
        else:
            mask = np.ones_like(data)
        masked = scores * Tensor(mask, dtype=data.dtype)
        row_sums = Tensor(
            np.maximum(masked.data.sum(axis=1, keepdims=True), 1e-10), dtype=data.dtype
        )
        return masked / row_sums

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        adjacency = self.learned_adjacency()
        hidden = self.input_proj(history)  # (B, T, N, H)
        per_node = hidden.transpose(0, 2, 3, 1).reshape(batch * nodes, self.hidden_size, steps)
        per_node = self.temporal(per_node)
        hidden = per_node.reshape(batch, nodes, self.hidden_size, steps).transpose(0, 3, 1, 2)
        hidden = self.mix_hop(hidden, adjacency).relu()
        flattened = hidden.transpose(0, 2, 1, 3).reshape(batch, nodes, steps * self.hidden_size)
        output = self.head(flattened)
        return output.transpose(0, 2, 1).unsqueeze(-1)
