"""Non-GNN long-sequence baselines of Table IX: TimesNet, FEDformer, ETSformer (lite).

All three treat each time series independently (weights shared across nodes)
and have no mechanism for spatial correlation — the property Table IX
isolates.  Each lite version keeps the model's defining inductive bias:

* **TimesNet** — discover the dominant period with an FFT and model the
  series as a 2-D (period × cycles) structure.
* **FEDformer** — operate in the frequency domain, keeping only the top-k
  Fourier modes of the history.
* **ETSformer** — exponential-smoothing decomposition into level, growth and
  season, with learnable smoothing coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.nn import FeedForward, Linear
from repro.nn.module import Parameter
from repro.tensor import Tensor, concat


class TimesNetForecaster(NeuralForecaster):
    """TimesNet (lite): FFT period features + 2-D reshaped MLP per node."""

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int,
                 hidden_size: int = 32, top_frequencies: int = 4, seed: int | None = 0):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        self.top_frequencies = min(top_frequencies, history // 2)
        feature_dim = history * input_dim + 2 * self.top_frequencies
        self.encoder = FeedForward(feature_dim, hidden_size, hidden_size, seed=base)
        self.head = Linear(hidden_size, horizon, seed=base + 1)

    def _frequency_features(self, target: np.ndarray) -> np.ndarray:
        """Amplitude and phase of the strongest Fourier modes of each window."""
        spectrum = np.fft.rfft(target, axis=-1)
        amplitudes = np.abs(spectrum)[..., 1:]
        order = np.argsort(-amplitudes, axis=-1)[..., : self.top_frequencies]
        top_amp = np.take_along_axis(amplitudes, order, axis=-1)
        phases = np.angle(spectrum)[..., 1:]
        top_phase = np.take_along_axis(phases, order, axis=-1)
        return np.concatenate([top_amp, top_phase], axis=-1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        per_node = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps * channels)
        target_windows = history.data[:, :, :, 0].transpose(0, 2, 1).reshape(batch * nodes, steps)
        frequency = Tensor(self._frequency_features(target_windows))
        features = concat([per_node, frequency], axis=-1)
        hidden = self.encoder(features).relu()
        output = self.head(hidden).reshape(batch, nodes, self.horizon)
        return output.transpose(0, 2, 1).unsqueeze(-1)


class FEDformerForecaster(NeuralForecaster):
    """FEDformer (lite): linear modelling of the top-k frequency modes plus trend."""

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int,
                 top_modes: int = 6, hidden_size: int = 32, seed: int | None = 0):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        self.top_modes = min(top_modes, history // 2 + 1)
        # Real and imaginary parts of the kept modes, plus the window mean (trend).
        self.frequency_head = Linear(2 * self.top_modes + 1, horizon, seed=base)
        self.residual_head = Linear(history * input_dim, horizon, seed=base + 1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        target = history.data[:, :, :, 0].transpose(0, 2, 1).reshape(batch * nodes, steps)
        spectrum = np.fft.rfft(target, axis=-1)[:, : self.top_modes]
        trend = target.mean(axis=-1, keepdims=True)
        frequency_features = Tensor(
            np.concatenate([spectrum.real, spectrum.imag, trend], axis=-1)
        )
        per_node = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps * channels)
        output = self.frequency_head(frequency_features) + self.residual_head(per_node)
        output = output.reshape(batch, nodes, self.horizon)
        return output.transpose(0, 2, 1).unsqueeze(-1)


class ETSformerForecaster(NeuralForecaster):
    """ETSformer (lite): differentiable exponential smoothing with level and growth."""

    def __init__(self, num_nodes: int, input_dim: int, history: int, horizon: int,
                 hidden_size: int = 16, seed: int | None = 0):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        # Logits of the level/growth smoothing coefficients (sigmoid-squashed in forward).
        self.level_logit = Parameter(np.array([0.0]), name="level_logit")
        self.growth_logit = Parameter(np.array([-1.0]), name="growth_logit")
        self.season_head = Linear(history, horizon, seed=base)
        self.correction_head = Linear(history * input_dim, horizon, seed=base + 1)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        target = history[:, :, :, 0].transpose(0, 2, 1).reshape(batch * nodes, steps)
        alpha = self.level_logit.sigmoid()
        beta = self.growth_logit.sigmoid()

        level = target[:, 0:1]
        growth = target[:, 1:2] - target[:, 0:1] if steps > 1 else target[:, 0:1] * 0.0
        for t in range(1, steps):
            observation = target[:, t : t + 1]
            new_level = alpha * observation + (1.0 - alpha) * (level + growth)
            growth = beta * (new_level - level) + (1.0 - beta) * growth
            level = new_level

        horizon_offsets = Tensor(np.arange(1, self.horizon + 1, dtype=np.float64)[None, :])
        trend_forecast = level + growth * horizon_offsets  # (B*N, horizon)
        season = self.season_head(target)
        per_node = history.transpose(0, 2, 1, 3).reshape(batch * nodes, steps * channels)
        correction = self.correction_head(per_node)
        output = (trend_forecast + season + correction).reshape(batch, nodes, self.horizon)
        return output.transpose(0, 2, 1).unsqueeze(-1)
