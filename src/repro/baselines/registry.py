"""Uniform factory for every baseline, keyed by the names used in the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.agcrn import AGCRNForecaster
from repro.baselines.arima import ARIMAForecaster
from repro.baselines.astgcn import ASTGCNForecaster
from repro.baselines.base import ClassicalForecaster, NeuralForecaster
from repro.baselines.d2stgnn import D2STGNNForecaster
from repro.baselines.dcrnn import DCRNNForecaster
from repro.baselines.gman import GMANForecaster
from repro.baselines.graph_wavenet import GraphWaveNetForecaster
from repro.baselines.gts import GTSForecaster
from repro.baselines.historical_average import HistoricalAverage
from repro.baselines.lstm import GRUForecaster, LSTMForecaster
from repro.baselines.mtgnn import MTGNNForecaster
from repro.baselines.non_gnn import (
    ETSformerForecaster,
    FEDformerForecaster,
    TimesNetForecaster,
)
from repro.baselines.step import STEPForecaster
from repro.baselines.stgcn import STGCNForecaster
from repro.baselines.stsgcn import STSGCNForecaster
from repro.baselines.svr import SVRForecaster
from repro.baselines.var import VARForecaster


@dataclass(frozen=True)
class BaselineInfo:
    """Metadata describing one baseline.

    Attributes
    ----------
    name:
        Table name (e.g. ``"GTS"``).
    family:
        One of ``classical``, ``univariate``, ``predefined_graph``,
        ``adaptive_inner``, ``adaptive_attention``, ``adaptive_pairwise``,
        ``non_gnn`` — the grouping used throughout Section V.
    requires_adjacency:
        Whether the model needs the predefined road-network adjacency.
    requires_series_features:
        Whether the model conditions on the full training series (GTS/STEP).
    spatial:
        Whether the model exchanges information between nodes at all.
    """

    name: str
    family: str
    requires_adjacency: bool = False
    requires_series_features: bool = False
    spatial: bool = True


BASELINE_REGISTRY: dict[str, BaselineInfo] = {
    "HA": BaselineInfo("HA", "classical", spatial=False),
    "ARIMA": BaselineInfo("ARIMA", "classical", spatial=False),
    "VAR": BaselineInfo("VAR", "classical"),
    "SVR": BaselineInfo("SVR", "classical", spatial=False),
    "LSTM": BaselineInfo("LSTM", "univariate", spatial=False),
    "GRU": BaselineInfo("GRU", "univariate", spatial=False),
    "DCRNN": BaselineInfo("DCRNN", "predefined_graph", requires_adjacency=True),
    "STGCN": BaselineInfo("STGCN", "predefined_graph", requires_adjacency=True),
    "STSGCN": BaselineInfo("STSGCN", "predefined_graph", requires_adjacency=True),
    "GraphWaveNet": BaselineInfo("GraphWaveNet", "adaptive_inner"),
    "AGCRN": BaselineInfo("AGCRN", "adaptive_inner"),
    "MTGNN": BaselineInfo("MTGNN", "adaptive_inner"),
    "GMAN": BaselineInfo("GMAN", "adaptive_attention"),
    "ASTGCN": BaselineInfo("ASTGCN", "adaptive_attention", requires_adjacency=True),
    "GTS": BaselineInfo("GTS", "adaptive_pairwise", requires_series_features=True),
    "STEP": BaselineInfo("STEP", "adaptive_pairwise", requires_series_features=True),
    "D2STGNN": BaselineInfo("D2STGNN", "adaptive_pairwise", requires_adjacency=False),
    "TimesNet": BaselineInfo("TimesNet", "non_gnn", spatial=False),
    "FEDformer": BaselineInfo("FEDformer", "non_gnn", spatial=False),
    "ETSformer": BaselineInfo("ETSformer", "non_gnn", spatial=False),
}


def classical_baseline_names() -> list[str]:
    """Names of the non-neural baselines."""
    return [name for name, info in BASELINE_REGISTRY.items() if info.family == "classical"]


def neural_baseline_names() -> list[str]:
    """Names of the neural baselines (trained with the shared Trainer)."""
    return [name for name, info in BASELINE_REGISTRY.items() if info.family != "classical"]


def build_baseline(
    name: str,
    num_nodes: int,
    input_dim: int,
    history: int,
    horizon: int,
    adjacency: np.ndarray | None = None,
    series_values: np.ndarray | None = None,
    hidden_size: int = 24,
    seed: int = 0,
    steps_per_day: int | None = None,
) -> NeuralForecaster | ClassicalForecaster:
    """Instantiate the baseline ``name`` with CPU-sized hyper-parameters.

    Parameters
    ----------
    adjacency:
        Predefined road-network adjacency, required by DCRNN / STGCN /
        STSGCN / ASTGCN (and optionally consumed by D2STGNN).
    series_values:
        Raw training values ``(T, N)`` used to build the static per-node
        features GTS and STEP condition on.
    """
    if name not in BASELINE_REGISTRY:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_REGISTRY)}")
    info = BASELINE_REGISTRY[name]
    if info.requires_adjacency and adjacency is None:
        raise ValueError(f"{name} requires a predefined adjacency matrix")
    if info.requires_series_features and series_values is None:
        raise ValueError(f"{name} requires the training series to build node features")

    if name == "HA":
        return HistoricalAverage(history, horizon, steps_per_day=steps_per_day)
    if name == "ARIMA":
        return ARIMAForecaster(history, horizon)
    if name == "VAR":
        return VARForecaster(history, horizon)
    if name == "SVR":
        return SVRForecaster(history, horizon)
    if name == "LSTM":
        return LSTMForecaster(num_nodes, input_dim, history, horizon, hidden_size, seed=seed)
    if name == "GRU":
        return GRUForecaster(num_nodes, input_dim, history, horizon, hidden_size, seed=seed)
    if name == "DCRNN":
        return DCRNNForecaster(num_nodes, input_dim, history, horizon, adjacency,
                               hidden_size=hidden_size, seed=seed)
    if name == "STGCN":
        return STGCNForecaster(num_nodes, input_dim, history, horizon, adjacency,
                               hidden_size=max(8, hidden_size // 2), seed=seed)
    if name == "STSGCN":
        return STSGCNForecaster(num_nodes, input_dim, history, horizon, adjacency,
                                hidden_size=max(8, hidden_size // 2), seed=seed)
    if name == "GraphWaveNet":
        return GraphWaveNetForecaster(num_nodes, input_dim, history, horizon,
                                      hidden_size=max(8, hidden_size // 2), seed=seed)
    if name == "AGCRN":
        return AGCRNForecaster(num_nodes, input_dim, history, horizon,
                               hidden_size=hidden_size, seed=seed)
    if name == "MTGNN":
        return MTGNNForecaster(num_nodes, input_dim, history, horizon,
                               hidden_size=max(8, hidden_size // 2), seed=seed)
    if name == "GMAN":
        return GMANForecaster(num_nodes, input_dim, history, horizon,
                              hidden_size=max(8, hidden_size // 2), seed=seed)
    if name == "ASTGCN":
        return ASTGCNForecaster(num_nodes, input_dim, history, horizon, adjacency,
                                hidden_size=max(8, hidden_size // 2), seed=seed)
    if name in {"GTS", "STEP"}:
        features = GTSForecaster.features_from_series(series_values)
        cls = GTSForecaster if name == "GTS" else STEPForecaster
        return cls(num_nodes, input_dim, history, horizon, features,
                   hidden_size=hidden_size, seed=seed)
    if name == "D2STGNN":
        return D2STGNNForecaster(num_nodes, input_dim, history, horizon, adjacency=adjacency,
                                 hidden_size=hidden_size, seed=seed)
    if name == "TimesNet":
        return TimesNetForecaster(num_nodes, input_dim, history, horizon,
                                  hidden_size=hidden_size, seed=seed)
    if name == "FEDformer":
        return FEDformerForecaster(num_nodes, input_dim, history, horizon, seed=seed)
    if name == "ETSformer":
        return ETSformerForecaster(num_nodes, input_dim, history, horizon, seed=seed)
    raise KeyError(f"no builder implemented for {name!r}")  # pragma: no cover
