"""STEP baseline (Shao et al., 2022) — pre-training-enhanced pair-wise graph learning.

STEP pre-trains a patch-based encoder (TSFormer) on very long per-node
histories, then learns a pair-wise graph from the pre-trained representations
and feeds both into a downstream STGNN.  The lite re-implementation keeps the
two defining ingredients — a per-node long-history encoder whose output
conditions a pair-wise ``N × N`` graph learner, and a diffusion-GRU
forecaster — and therefore shares GTS's ``O(N²·d)`` memory profile
(Table I groups them together).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.baselines.gts import GTSForecaster
from repro.nn import FeedForward


class STEPForecaster(GTSForecaster):
    """Pre-training-enhanced spatial-temporal forecaster (lite).

    Structurally a :class:`GTSForecaster` with a deeper series encoder acting
    as the stand-in for the pre-trained TSFormer representations.
    """

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        series_features: np.ndarray,
        hidden_size: int = 32,
        feature_dim: int = 24,
        diffusion_steps: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(
            num_nodes=num_nodes,
            input_dim=input_dim,
            history=history,
            horizon=horizon,
            series_features=series_features,
            hidden_size=hidden_size,
            feature_dim=feature_dim,
            diffusion_steps=diffusion_steps,
            seed=seed,
        )
        base = 0 if seed is None else seed
        # Deeper "pre-trained" encoder: two stacked feed-forward stages.
        input_features = np.asarray(series_features).shape[1]
        self.feature_encoder = FeedForward(input_features, 2 * feature_dim, feature_dim,
                                           seed=base + 11)
        self.refinement = FeedForward(feature_dim, feature_dim, feature_dim, seed=base + 12)

    def learned_adjacency(self):
        from repro.sparse import softmax
        from repro.tensor import concat

        encoded = self.refinement(self.feature_encoder(self.series_features))
        n, f = encoded.shape
        left = encoded.unsqueeze(1).broadcast_to((n, n, f))
        right = encoded.unsqueeze(0).broadcast_to((n, n, f))
        scores = self.pair_scorer(concat([left, right], axis=-1)).squeeze(-1)
        return softmax(scores, axis=-1)
