"""STGCN baseline (Yu et al., 2018) — spatio-temporal convolution blocks on a predefined graph.

The lite re-implementation keeps the sandwich structure of the original
(temporal gated convolution → Chebyshev graph convolution → temporal gated
convolution) with a single ST block and a direct multi-horizon output head.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.graph import scaled_laplacian
from repro.nn import GatedTemporalConv, Linear
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class ChebGraphConv(Module):
    """Chebyshev-polynomial graph convolution of order ``K`` on a fixed support."""

    def __init__(self, in_channels: int, out_channels: int, supports: list[np.ndarray],
                 seed: int | None = 0):
        super().__init__()
        rng = spawn_rng(seed)
        self.supports = [Tensor(s) for s in supports]
        self.weights = [
            Parameter(init.xavier_uniform((in_channels, out_channels), rng), name=f"cheb_{k}")
            for k in range(len(supports))
        ]
        self.bias = Parameter(np.zeros(out_channels), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        """``x`` has shape ``(..., N, C)``; each support mixes the node axis."""
        output = None
        for support, weight in zip(self.supports, self.weights):
            term = support.matmul(x).matmul(weight)
            output = term if output is None else output + term
        return output + self.bias


class STGCNForecaster(NeuralForecaster):
    """Spatio-Temporal Graph Convolutional Network (lite)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        adjacency: np.ndarray,
        hidden_size: int = 16,
        cheb_order: int = 2,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        base = 0 if seed is None else seed
        adjacency = np.asarray(adjacency, dtype=np.float64)
        laplacian = scaled_laplacian(adjacency)
        supports = [np.eye(num_nodes), laplacian][:cheb_order]
        self.hidden_size = hidden_size
        self.temporal_in = GatedTemporalConv(input_dim, hidden_size, kernel_size=2, seed=base)
        self.graph_conv = ChebGraphConv(hidden_size, hidden_size, supports, seed=base + 1)
        self.temporal_out = GatedTemporalConv(hidden_size, hidden_size, kernel_size=2, seed=base + 2)
        self.head = Linear(hidden_size * history, horizon, seed=base + 3)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, channels = history.shape
        # Temporal convolution per node: (B, T, N, C) -> (B*N, C, T).
        per_node = history.transpose(0, 2, 3, 1).reshape(batch * nodes, channels, steps)
        hidden = self.temporal_in(per_node)  # (B*N, H, T)
        hidden = hidden.reshape(batch, nodes, self.hidden_size, steps).transpose(0, 3, 1, 2)
        # Graph convolution per time step: (B, T, N, H).
        hidden = self.graph_conv(hidden).relu()
        # Second temporal convolution.
        per_node = hidden.transpose(0, 2, 3, 1).reshape(batch * nodes, self.hidden_size, steps)
        hidden = self.temporal_out(per_node)  # (B*N, H, T)
        flattened = hidden.reshape(batch, nodes, self.hidden_size * steps)
        output = self.head(flattened)  # (B, N, horizon)
        return output.transpose(0, 2, 1).unsqueeze(-1)
