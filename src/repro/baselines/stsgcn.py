"""STSGCN baseline (Song et al., 2020) — spatial-temporal synchronous graph convolution.

STSGCN builds a localised spatial-temporal graph connecting each node to its
spatial neighbours *and* to itself at the previous/next time step, then
applies graph convolutions on that ``3N × 3N`` block adjacency.  The lite
re-implementation keeps one synchronous block over sliding 3-step windows of
the history followed by a direct output head.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import NeuralForecaster
from repro.graph import row_normalize
from repro.nn import Linear
from repro.tensor import Tensor, concat
from repro.utils.seed import spawn_rng


class STSGCNForecaster(NeuralForecaster):
    """Spatial-Temporal Synchronous GCN (lite)."""

    def __init__(
        self,
        num_nodes: int,
        input_dim: int,
        history: int,
        horizon: int,
        adjacency: np.ndarray,
        hidden_size: int = 16,
        seed: int | None = 0,
    ):
        super().__init__(num_nodes, input_dim, history, horizon)
        if history < 3:
            raise ValueError("STSGCN needs a history of at least 3 steps")
        base = 0 if seed is None else seed
        adjacency = np.asarray(adjacency, dtype=np.float64)
        self.block_support = Tensor(self._build_block_adjacency(adjacency))
        self.hidden_size = hidden_size
        self.input_proj = Linear(input_dim, hidden_size, seed=base)
        self.sync_conv = Linear(hidden_size, hidden_size, seed=base + 1)
        windows = history - 2
        self.head = Linear(hidden_size * windows, horizon, seed=base + 2)

    @staticmethod
    def _build_block_adjacency(adjacency: np.ndarray) -> np.ndarray:
        """Localised spatial-temporal adjacency over three consecutive steps."""
        n = adjacency.shape[0]
        identity = np.eye(n)
        block = np.zeros((3 * n, 3 * n))
        for step in range(3):
            start = step * n
            block[start : start + n, start : start + n] = adjacency + identity
            if step + 1 < 3:
                nxt = (step + 1) * n
                block[start : start + n, nxt : nxt + n] = identity
                block[nxt : nxt + n, start : start + n] = identity
        return row_normalize(block)

    def forward(self, history: Tensor) -> Tensor:
        batch, steps, nodes, _ = history.shape
        hidden = self.input_proj(history)  # (B, T, N, H)
        window_outputs = []
        for start in range(steps - 2):
            window = hidden[:, start : start + 3]  # (B, 3, N, H)
            stacked = window.reshape(batch, 3 * nodes, self.hidden_size)
            convolved = self.sync_conv(self.block_support.matmul(stacked)).relu()
            # Aggregate the middle step's representation (cropping, as in the paper).
            middle = convolved[:, nodes : 2 * nodes, :]
            window_outputs.append(middle)
        combined = concat(window_outputs, axis=-1)  # (B, N, H * windows)
        output = self.head(combined)
        return output.transpose(0, 2, 1).unsqueeze(-1)
