"""Support-vector-regression baseline (linear ε-SVR on lag features).

Without scikit-learn available offline, the ε-insensitive linear regression is
trained by batch sub-gradient descent on the primal objective

.. math::

    \\tfrac{1}{2}\\lVert w \\rVert^2 + C \\sum_i \\max(0, |y_i - w^T x_i - b| - ε),

one model per forecast step, with weights shared across nodes (each node's
lag window is one training sample).  This matches the role SVR plays in the
paper: a non-deep machine-learning reference that sees only each series' own
recent history.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClassicalForecaster
from repro.utils.seed import spawn_rng


class SVRForecaster(ClassicalForecaster):
    """Linear ε-SVR over lag windows, one regressor per horizon step."""

    def __init__(
        self,
        history: int,
        horizon: int,
        epsilon: float = 0.1,
        c: float = 1.0,
        learning_rate: float = 0.01,
        iterations: int = 200,
        max_samples: int = 4000,
        seed: int | None = 0,
    ):
        super().__init__(history, horizon)
        self.epsilon = epsilon
        self.c = c
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.max_samples = max_samples
        self._rng = spawn_rng(seed)
        self.weights_: np.ndarray | None = None  # (horizon, history)
        self.biases_: np.ndarray | None = None  # (horizon,)
        self.mean_: float = 0.0
        self.scale_: float = 1.0

    def _build_samples(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        steps, nodes = values.shape
        num_windows = steps - self.history - self.horizon + 1
        if num_windows < 1:
            raise ValueError("not enough observations to build SVR training windows")
        xs, ys = [], []
        for start in range(num_windows):
            window = values[start : start + self.history]
            target = values[start + self.history : start + self.history + self.horizon]
            xs.append(window.T)  # (N, history)
            ys.append(target.T)  # (N, horizon)
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        if x.shape[0] > self.max_samples:
            keep = self._rng.choice(x.shape[0], size=self.max_samples, replace=False)
            x, y = x[keep], y[keep]
        return x, y

    def fit(self, values: np.ndarray) -> "SVRForecaster":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be (steps, nodes)")
        self.mean_ = float(values.mean())
        self.scale_ = float(values.std()) or 1.0
        scaled = (values - self.mean_) / self.scale_
        x, y = self._build_samples(scaled)
        num_samples, num_features = x.shape
        self.weights_ = np.zeros((self.horizon, num_features))
        self.biases_ = np.zeros(self.horizon)
        for step in range(self.horizon):
            w = np.zeros(num_features)
            b = 0.0
            lr = self.learning_rate
            for _ in range(self.iterations):
                residual = y[:, step] - (x @ w + b)
                outside = np.abs(residual) > self.epsilon
                sign = np.sign(residual) * outside
                grad_w = w - self.c * (x * sign[:, None]).sum(axis=0) / num_samples
                grad_b = -self.c * sign.sum() / num_samples
                w -= lr * grad_w
                b -= lr * grad_b
            self.weights_[step] = w
            self.biases_[step] = b
        self._fitted = True
        return self

    def predict(self, history: np.ndarray) -> np.ndarray:
        self._check_fitted()
        history = self._check_history(history)
        window = history[-self.history :]
        if window.shape[0] < self.history:
            pad = np.repeat(window[:1], self.history - window.shape[0], axis=0)
            window = np.concatenate([pad, window], axis=0)
        features = ((window - self.mean_) / self.scale_).T  # (N, history)
        scaled_prediction = features @ self.weights_.T + self.biases_  # (N, horizon)
        return (scaled_prediction * self.scale_ + self.mean_).T
