"""Vector autoregression (VAR) baseline.

The VAR(p) model regresses every node's next value on the last ``p``
observations of *all* nodes jointly.  The coefficient matrix is estimated by
ridge-regularised least squares; when the node count is large the design is
huge (``N·p`` features per target), which is exactly why the paper reports
VAR only as a weak classical baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClassicalForecaster


class VARForecaster(ClassicalForecaster):
    """VAR(p) with ridge-regularised least squares."""

    def __init__(self, history: int, horizon: int, order: int = 3, ridge: float = 1.0):
        super().__init__(history, horizon)
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order
        self.ridge = ridge
        self.coefficients_: np.ndarray | None = None  # (N*p + 1, N)
        self.num_nodes_: int | None = None

    def fit(self, values: np.ndarray) -> "VARForecaster":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be (steps, nodes)")
        steps, nodes = values.shape
        if steps <= self.order + 1:
            raise ValueError("not enough observations to fit the VAR model")
        self.num_nodes_ = nodes
        targets = values[self.order :]
        design_blocks = [values[self.order - k - 1 : steps - k - 1] for k in range(self.order)]
        design = np.concatenate(design_blocks + [np.ones((targets.shape[0], 1))], axis=1)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self.coefficients_ = np.linalg.solve(gram, design.T @ targets)
        self._fitted = True
        return self

    def predict(self, history: np.ndarray) -> np.ndarray:
        self._check_fitted()
        history = self._check_history(history)
        if history.shape[1] != self.num_nodes_:
            raise ValueError("history node count does not match the fitted model")
        if history.shape[0] < self.order:
            pad = np.repeat(history[:1], self.order - history.shape[0], axis=0)
            history = np.concatenate([pad, history], axis=0)
        window = history[-self.order :].copy()
        forecasts = np.zeros((self.horizon, self.num_nodes_))
        for step in range(self.horizon):
            features = np.concatenate([window[::-1].reshape(-1), [1.0]])
            prediction = features @ self.coefficients_
            forecasts[step] = prediction
            window = np.concatenate([window[1:], prediction[None, :]], axis=0)
        return forecasts
