"""SAGDFN — the paper's primary contribution.

The pieces map one-to-one onto Section IV of the paper:

* :class:`SignificantNeighborsSampling` — Algorithm 1, selecting the ``M``
  globally significant neighbour indices ``I``.
* :class:`SparseSpatialMultiHeadAttention` — Eq. 1–6, producing the slim
  dense adjacency matrix ``A_s ∈ R^{N×M}`` refined by α-entmax.
* :class:`FastGraphConv` / :class:`OneStepFastGConvCell` — Eq. 9–10, the
  slim graph diffusion plugged into a GRU.
* :class:`SAGDFNEncoderDecoder` and :class:`SAGDFN` — the end-to-end
  encoder–decoder forecaster.
* :class:`Trainer` — Algorithm 2, the joint end-to-end training loop.
* :mod:`repro.core.complexity` — the analytic computation/memory model of
  Table I and Examples 1–2.
"""

from repro.core.config import SAGDFNConfig
from repro.core.sampling import SignificantNeighborsSampling
from repro.core.attention import SparseSpatialMultiHeadAttention
from repro.core.gconv import FastGraphConv, OneStepFastGConvCell
from repro.core.encoder_decoder import SAGDFNEncoderDecoder
from repro.core.model import SAGDFN
from repro.core.trainer import Trainer, TrainingHistory
from repro.core import complexity

__all__ = [
    "SAGDFNConfig",
    "SignificantNeighborsSampling",
    "SparseSpatialMultiHeadAttention",
    "FastGraphConv",
    "OneStepFastGConvCell",
    "SAGDFNEncoderDecoder",
    "SAGDFN",
    "Trainer",
    "TrainingHistory",
    "complexity",
]
