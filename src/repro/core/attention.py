"""Sparse Spatial Multi-Head Attention (Section IV-B, Eq. 1–6).

Given the node embedding matrix ``E ∈ R^{N×d}`` and the significant-neighbour
index set ``I`` (|I| = M), the module scores every (node, significant
neighbour) pair with ``P`` independent feed-forward networks, normalises each
head's scores with α-entmax along the neighbour axis to enforce sparsity, and
mixes the heads with a linear map ``W_a`` into the slim dense adjacency
``A_s ∈ R^{N×M}`` consumed by the fast graph convolution.
"""

from __future__ import annotations

import numpy as np

from repro.nn import FeedForward, Linear
from repro.nn.module import Module
from repro.sparse import alpha_entmax
from repro.tensor import Tensor, concat


class SparseSpatialMultiHeadAttention(Module):
    """Learn the slim dense adjacency matrix ``A_s`` from node embeddings.

    Parameters
    ----------
    embedding_dim:
        ``d`` — width of each node embedding.
    num_heads:
        ``P`` — number of pair-wise scoring feed-forward networks.
    ffn_hidden:
        Hidden width of each scoring FFN.
    alpha:
        α of the α-entmax normaliser; ``normalizer="softmax"`` forces α = 1
        regardless (the "w/o Entmax" ablation).
    use_pairwise_attention:
        When ``False`` the slim adjacency is the normalised inner product
        ``E E_Iᵀ`` (the "w/o Attention" ablation).
    """

    def __init__(
        self,
        embedding_dim: int,
        num_heads: int = 8,
        ffn_hidden: int = 32,
        alpha: float = 1.5,
        normalizer: str = "entmax",
        use_pairwise_attention: bool = True,
        seed: int | None = 0,
    ):
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if normalizer not in {"entmax", "softmax"}:
            raise ValueError("normalizer must be 'entmax' or 'softmax'")
        base = 0 if seed is None else seed
        self.embedding_dim = embedding_dim
        self.num_heads = num_heads
        self.alpha = 1.0 if normalizer == "softmax" else alpha
        self.use_pairwise_attention = use_pairwise_attention
        self.heads = [
            FeedForward(2 * embedding_dim, ffn_hidden, 2, activation="relu", seed=base + 10 * p)
            for p in range(num_heads)
        ]
        self.mixer = Linear(2 * num_heads, 1, seed=base + 997)

    def forward(self, embeddings: Tensor, index_set: np.ndarray) -> Tensor:
        """Return the slim adjacency ``A_s`` of shape ``(N, M)``.

        ``embeddings`` is the differentiable node embedding matrix ``E``;
        gradients flow back into it through the attention scores, which is
        how the index set and adjacency keep improving during training
        (Algorithm 2, lines 5–7).
        """
        index_set = np.asarray(index_set, dtype=np.int64)
        num_nodes = embeddings.shape[0]
        num_significant = index_set.shape[0]
        neighbour_embeddings = embeddings[index_set]  # (M, d)

        if not self.use_pairwise_attention:
            scores = embeddings.matmul(neighbour_embeddings.transpose())  # (N, M)
            return alpha_entmax(scores, alpha=self.alpha, axis=-1)

        # Eq. 1: pair every node with every significant neighbour.
        expanded_nodes = embeddings.unsqueeze(1).broadcast_to(
            (num_nodes, num_significant, self.embedding_dim)
        )
        expanded_neighbours = neighbour_embeddings.unsqueeze(0).broadcast_to(
            (num_nodes, num_significant, self.embedding_dim)
        )
        pairs = concat([expanded_nodes, expanded_neighbours], axis=-1)  # (N, M, 2d)

        # Eq. 2–4: score with P FFNs and sparsify along the neighbour axis.
        head_outputs = []
        for head in self.heads:
            raw = head(pairs)  # (N, M, 2)
            normalised = alpha_entmax(raw, alpha=self.alpha, axis=1)
            head_outputs.append(normalised)
        multi_head = concat(head_outputs, axis=-1)  # (N, M, 2P)

        # Eq. 5–6: mix the heads into a single correlation strength per pair.
        slim_adjacency = self.mixer(multi_head).squeeze(-1)  # (N, M)
        return slim_adjacency
