"""Sparse Spatial Multi-Head Attention (Section IV-B, Eq. 1–6).

Given the node embedding matrix ``E ∈ R^{N×d}`` and the significant-neighbour
index set ``I`` (|I| = M), the module scores every (node, significant
neighbour) pair with ``P`` independent feed-forward networks, normalises each
head's scores with α-entmax along the neighbour axis to enforce sparsity, and
mixes the heads with a linear map ``W_a`` into the slim dense adjacency
``A_s ∈ R^{N×M}`` consumed by the fast graph convolution.

Implementation notes (the large-graph hot path)
-----------------------------------------------
The reference formulation feeds the materialised pair tensor
``[e_i ‖ e_j] ∈ R^{N×M×2d}`` through each head's FFN in a Python loop.  This
module instead holds the ``P`` scoring FFNs as *stacked* weight tensors
(``head_w1 ∈ R^{P×2d×h}`` …) and exploits the linearity of the first layer
over the concatenation:

.. math::

    W_1^T [e_i ‖ e_j] = W_{1,\\text{node}}^T e_i + W_{1,\\text{neigh}}^T e_j

so the first-layer cost drops from ``O(N·M·2d·h)`` to ``O((N+M)·d·h)`` per
head and no ``(N, M, 2d)`` tensor is ever materialised.  All heads are scored
by two batched matmuls and normalised by a single α-entmax call.

The remaining cost is the ``(P, N, M, h)`` hidden activation; at N = 10000 it
would be gigabytes.  :func:`_batched_pair_scores` therefore tiles the node
axis (flash-attention style): each tile's hidden activations live in a
cache-sized scratch buffer and only the ``(P, N, M, 2)`` raw scores are ever
materialised.  The backward pass recomputes each tile's activations instead
of storing them, trading a second cheap pass for an ``O(N·M·h)`` → ``O(N·M)``
reduction in autograd memory.  The mathematically equivalent per-head loop is
retained as :meth:`forward_looped` for equivalence tests and as the benchmark
baseline.

On top of the scratch tiling, the ``chunk_size`` / ``memory_budget_mb``
knobs (threaded from :class:`~repro.core.config.SAGDFNConfig`) enable the
**node-tiled scoring mode**: the whole scoring pipeline — raw scores,
α-entmax normalisation and head mixing — runs one node block at a time and
the per-block slim-adjacency rows are concatenated.  Every stage is
row-independent along the node axis, so the tiled output is bit-identical to
the single-pass one at any block size; under ``no_grad`` (frozen-graph
serving, the scaling benchmark) peak memory is ``O(chunk·M)`` scratch plus
the ``(N, M)`` result itself.

Checkpoints from the per-head era (keys ``heads.{p}.input_layer.weight`` …)
are migrated transparently by :meth:`_upgrade_state_dict`.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ExecutionPlan, OpsBackend, get_backend

# The reference scoring kernel now lives with the numpy backend; the names
# stay importable (and ``_TILE_BYTES`` patchable) here because this module
# hosted them historically and the canonical tile grid is an attention-level
# concept — construction reads this module's ``_TILE_BYTES`` global.
from repro.backend.numpy_backend import _TILE_BYTES, _batched_pair_scores, _tile_rows
from repro.nn import Linear, init
from repro.nn.module import Module, Parameter
from repro.sparse import alpha_entmax
from repro.tensor import Tensor, concat
from repro.utils.seed import spawn_rng

__all__ = [
    "SparseSpatialMultiHeadAttention",
    "_TILE_BYTES",
    "_batched_pair_scores",
    "_tile_rows",
]


class SparseSpatialMultiHeadAttention(Module):
    """Learn the slim dense adjacency matrix ``A_s`` from node embeddings.

    Parameters
    ----------
    embedding_dim:
        ``d`` — width of each node embedding.
    num_heads:
        ``P`` — number of pair-wise scoring feed-forward networks.
    ffn_hidden:
        Hidden width of each scoring FFN.
    alpha:
        α of the α-entmax normaliser; ``normalizer="softmax"`` forces α = 1
        regardless (the "w/o Entmax" ablation).
    use_pairwise_attention:
        When ``False`` the slim adjacency is the normalised inner product
        ``E E_Iᵀ`` (the "w/o Attention" ablation).
    chunk_size:
        Node-block size of the tiled scoring mode (``None`` = single pass
        with cache-heuristic scratch tiles).  Stored on the execution plan.
    memory_budget_mb:
        Scratch budget (MiB) the node block is derived from when
        ``chunk_size`` is not given.  Stored on the execution plan.
    backend:
        Execution backend (name, instance, or ``None`` for the
        ``REPRO_BACKEND``/default resolution) the scoring kernel runs on.
    plan:
        A shared :class:`~repro.backend.ExecutionPlan`; mutually exclusive
        with the ``chunk_size``/``memory_budget_mb`` kwargs (the model
        passes one plan to every module so host-side overrides are a single
        mutation).
    """

    _HEAD_OUT = 2  # each scoring FFN emits 2 channels per (node, neighbour) pair

    def __init__(
        self,
        embedding_dim: int,
        num_heads: int = 8,
        ffn_hidden: int = 32,
        alpha: float = 1.5,
        normalizer: str = "entmax",
        use_pairwise_attention: bool = True,
        seed: int | None = 0,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
        backend: str | OpsBackend | None = None,
        plan: ExecutionPlan | None = None,
    ):
        super().__init__()
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        if normalizer not in {"entmax", "softmax"}:
            raise ValueError("normalizer must be 'entmax' or 'softmax'")
        self.backend = get_backend(backend)
        if plan is None:
            # make_plan validates the chunking knobs (>= 1 / positive).
            plan = self.backend.make_plan(
                chunk_size=chunk_size, memory_budget_mb=memory_budget_mb
            )
        elif chunk_size is not None or memory_budget_mb is not None:
            raise ValueError(
                "pass chunking knobs through the ExecutionPlan when one is provided"
            )
        self.plan = plan
        base = 0 if seed is None else seed
        self.embedding_dim = embedding_dim
        self.num_heads = num_heads
        self.ffn_hidden = ffn_hidden
        self.alpha = 1.0 if normalizer == "softmax" else alpha
        self.use_pairwise_attention = use_pairwise_attention
        # Canonical scoring-tile budget; a constant (never knob-derived) so
        # the tile grid — and therefore every BLAS call shape — is the same
        # in the chunked and unchunked modes.  Tests may shrink it to
        # exercise multi-tile paths on small graphs.
        self._tile_bytes = _TILE_BYTES
        # Stacked scoring FFNs.  Per-head slices are drawn with the same
        # seeds the per-head FeedForward modules used (seed + 10p for layer
        # one, +1 for layer two), so fresh models initialise identically to
        # the reference implementation.
        out = self._HEAD_OUT
        w1 = np.stack(
            [
                init.xavier_uniform((2 * embedding_dim, ffn_hidden), spawn_rng(base + 10 * p))
                for p in range(num_heads)
            ]
        )
        w2 = np.stack(
            [
                init.xavier_uniform((ffn_hidden, out), spawn_rng(base + 10 * p + 1))
                for p in range(num_heads)
            ]
        )
        self.head_w1 = Parameter(w1, name="head_w1")  # (P, 2d, h)
        self.head_b1 = Parameter(init.zeros((num_heads, ffn_hidden)), name="head_b1")
        self.head_w2 = Parameter(w2, name="head_w2")  # (P, h, 2)
        self.head_b2 = Parameter(init.zeros((num_heads, out)), name="head_b2")
        self.mixer = Linear(out * num_heads, 1, seed=base + 997)

    # ------------------------------------------------------------------ #
    # Plan-backed knobs (legacy attribute surface)
    # ------------------------------------------------------------------ #
    @property
    def chunk_size(self) -> int | None:
        return self.plan.chunk_size

    @chunk_size.setter
    def chunk_size(self, value: int | None) -> None:
        self.plan.chunk_size = value

    @property
    def memory_budget_mb(self) -> float | None:
        return self.plan.memory_budget_mb

    @memory_budget_mb.setter
    def memory_budget_mb(self, value: float | None) -> None:
        self.plan.memory_budget_mb = value

    # ------------------------------------------------------------------ #
    # Checkpoint migration
    # ------------------------------------------------------------------ #
    def _upgrade_state_dict(
        self, prefix: str, state: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Stack legacy per-head FFN keys into the batched parameters.

        Pre-vectorisation checkpoints stored each scoring FFN as a list
        entry: ``{prefix}heads.{p}.input_layer.weight`` and so on.  They are
        rewritten to ``{prefix}head_w1`` … so old checkpoints keep loading.
        A checkpoint whose head count does not match ``num_heads`` is left
        untouched, so :meth:`Module.load_state_dict` reports the usual
        structured missing/unexpected-key mismatch instead of a bare error.
        """
        legacy_keys = [
            f"{prefix}heads.{p}.{layer}.{kind}"
            for p in range(self.num_heads)
            for layer in ("input_layer", "output_layer")
            for kind in ("weight", "bias")
        ]
        if f"{prefix}heads.0.input_layer.weight" not in state:
            return state
        if not all(key in state for key in legacy_keys) or (
            f"{prefix}heads.{self.num_heads}.input_layer.weight" in state
        ):
            return state  # head-count mismatch: fall through to key matching
        state = dict(state)
        w1, b1, w2, b2 = [], [], [], []
        for p in range(self.num_heads):
            head = f"{prefix}heads.{p}."
            w1.append(state.pop(f"{head}input_layer.weight"))
            b1.append(state.pop(f"{head}input_layer.bias"))
            w2.append(state.pop(f"{head}output_layer.weight"))
            b2.append(state.pop(f"{head}output_layer.bias"))
        state[f"{prefix}head_w1"] = np.stack(w1)
        state[f"{prefix}head_b1"] = np.stack(b1)
        state[f"{prefix}head_w2"] = np.stack(w2)
        state[f"{prefix}head_b2"] = np.stack(b2)
        return state

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    # Rough per-node-row scratch cost of one scoring block, in units of
    # ``heads * num_significant * itemsize`` bytes: the raw 2-channel scores,
    # the α-entmax solver's sort/cumsum temporaries and the interleaved
    # multi-head rows come to roughly sixteen 2-channel copies.
    _ROW_COST_CHANNELS = 32

    def _grid_rows(self, num_significant: int, itemsize: int) -> int:
        """Rows per canonical tile of the scoring grid (see ``_TILE_BYTES``)."""
        return _tile_rows(self.num_heads, num_significant, self.ffn_hidden, itemsize,
                          self._tile_bytes)

    def _node_block(self, num_nodes: int, num_significant: int, itemsize: int) -> int | None:
        """Node-block size of the tiled scoring mode (``None`` = single pass).

        The requested block (explicit ``chunk_size``, or derived from
        ``memory_budget_mb``) is rounded **up** to a multiple of the canonical
        scoring-tile grid: BLAS kernels are only bit-stable across identical
        call shapes, so blocks must tile the node axis exactly the way the
        single-pass kernel does for the outputs to stay byte-identical.
        """
        if self.chunk_size is not None:
            requested = int(self.chunk_size)
        elif self.memory_budget_mb is not None:
            row_bytes = (
                self.num_heads * num_significant * self._ROW_COST_CHANNELS * itemsize
            )
            requested = int(self.memory_budget_mb * 2**20 // max(1, row_bytes))
        else:
            return None
        grid = self._grid_rows(num_significant, itemsize)
        block = max(1, (max(1, requested) + grid - 1) // grid) * grid
        return None if block >= num_nodes else block

    def _score_block(self, node_embeddings: Tensor, neighbour_embeddings: Tensor) -> Tensor:
        """Slim-adjacency rows ``(n_block, M)`` for one block of node embeddings.

        The block must start on a canonical-grid boundary; all shape-sensitive
        stages (the fused scoring kernel and the head mixer) operate on the
        same per-tile shapes as the single-pass forward, which is what makes
        the tiled mode bit-identical.
        """
        num_rows = node_embeddings.shape[0]
        num_significant = neighbour_embeddings.shape[0]
        heads, out = self.num_heads, self._HEAD_OUT
        # Eq. 1–2: all P scoring FFNs in one tiled, batched kernel — the
        # backend owns this hot path (the numpy backend is the bit-exact
        # reference tiling).
        raw = self.backend.pair_scores(
            node_embeddings,
            neighbour_embeddings,
            self.head_w1,
            self.head_b1,
            self.head_w2,
            self.head_b2,
            tile_bytes=self._tile_bytes,
        )  # (P, n_block, M, 2)

        # Eq. 3–4: sparsify along the neighbour axis, all heads in one call
        # (the α-entmax solvers are row-local, hence block-size independent).
        normalised = alpha_entmax(raw, alpha=self.alpha, axis=2)

        # Eq. 5–6: interleave channels head-by-head — (n_block, M, 2P) with
        # the same [head0-ch0, head0-ch1, head1-ch0, …] layout the per-head
        # concat produced — and mix into one correlation strength per pair.
        # The mixer matmul runs per canonical tile so its call shapes match
        # between the tiled and single-pass modes.
        multi_head = normalised.transpose(1, 2, 0, 3).reshape(
            num_rows, num_significant, out * heads
        )
        itemsize = np.result_type(node_embeddings.data.dtype, self.head_w1.data.dtype).itemsize
        grid = self._grid_rows(num_significant, itemsize)
        if num_rows <= grid:
            mixed = self.mixer(multi_head)
        else:
            mixed = concat(
                [
                    self.mixer(multi_head[start : min(start + grid, num_rows)])
                    for start in range(0, num_rows, grid)
                ],
                axis=0,
            )
        return mixed.squeeze(-1)  # (n_block, M)

    def forward(self, embeddings: Tensor, index_set: np.ndarray) -> Tensor:
        """Return the slim adjacency ``A_s`` of shape ``(N, M)``.

        ``embeddings`` is the differentiable node embedding matrix ``E``;
        gradients flow back into it through the attention scores, which is
        how the index set and adjacency keep improving during training
        (Algorithm 2, lines 5–7).

        With ``chunk_size`` / ``memory_budget_mb`` set, the scoring pipeline
        runs in the node-tiled mode: every stage is row-independent along the
        node axis, so the concatenated block outputs are bit-identical to the
        single-pass result at any block size.
        """
        index_set = np.asarray(index_set, dtype=np.int64)
        num_nodes = embeddings.shape[0]
        num_significant = index_set.shape[0]
        neighbour_embeddings = embeddings[index_set]  # (M, d)

        if not self.use_pairwise_attention:
            scores = embeddings.matmul(neighbour_embeddings.transpose())  # (N, M)
            return alpha_entmax(scores, alpha=self.alpha, axis=-1)

        itemsize = np.result_type(embeddings.data.dtype, self.head_w1.data.dtype).itemsize
        block = self._node_block(num_nodes, num_significant, itemsize)
        if block is None or block >= num_nodes:
            return self._score_block(embeddings, neighbour_embeddings)
        return concat(
            [
                self._score_block(embeddings[start : min(start + block, num_nodes)],
                                  neighbour_embeddings)
                for start in range(0, num_nodes, block)
            ],
            axis=0,
        )

    def forward_looped(self, embeddings: Tensor, index_set: np.ndarray) -> Tensor:
        """Reference per-head scoring loop (the pre-vectorisation hot path).

        Mathematically equivalent to :meth:`forward` — it materialises the
        ``(N, M, 2d)`` pair tensor and runs one FFN + α-entmax per head, as
        the seed implementation did.  Kept for equivalence tests and as the
        baseline the ``benchmarks/perf`` runner measures speedups against.
        """
        index_set = np.asarray(index_set, dtype=np.int64)
        num_nodes = embeddings.shape[0]
        num_significant = index_set.shape[0]
        neighbour_embeddings = embeddings[index_set]  # (M, d)

        if not self.use_pairwise_attention:
            scores = embeddings.matmul(neighbour_embeddings.transpose())  # (N, M)
            return alpha_entmax(scores, alpha=self.alpha, axis=-1)

        expanded_nodes = embeddings.unsqueeze(1).broadcast_to(
            (num_nodes, num_significant, self.embedding_dim)
        )
        expanded_neighbours = neighbour_embeddings.unsqueeze(0).broadcast_to(
            (num_nodes, num_significant, self.embedding_dim)
        )
        pairs = concat([expanded_nodes, expanded_neighbours], axis=-1)  # (N, M, 2d)

        head_outputs = []
        for p in range(self.num_heads):
            hidden = (pairs.matmul(self.head_w1[p]) + self.head_b1[p]).relu()
            raw = hidden.matmul(self.head_w2[p]) + self.head_b2[p]  # (N, M, 2)
            head_outputs.append(alpha_entmax(raw, alpha=self.alpha, axis=1))
        multi_head = concat(head_outputs, axis=-1)  # (N, M, 2P)

        slim_adjacency = self.mixer(multi_head).squeeze(-1)  # (N, M)
        return slim_adjacency
