"""Analytic computation / memory complexity model (Table I, Examples 1–2).

The paper compares adaptive-weight-GNN methods through their asymptotic
computation and memory cost as a function of the number of nodes ``N``, the
node embedding width ``d``, the hidden width ``D`` and — for SAGDFN — the
slim width ``M``.  This module turns those asymptotic expressions into
numbers so that the Table I benchmark can verify, for example, that SAGDFN's
cost grows linearly in ``N`` while GTS's grows quadratically, and that the
GPU-memory estimates of Examples 1 and 2 are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_FLOAT = 8
GIGABYTE = 1024**3


@dataclass(frozen=True)
class ComplexityProfile:
    """Symbolic and numeric complexity of one model."""

    model: str
    computation_expr: str
    memory_expr: str
    computation: float
    memory: float


def _require_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def computation_cost(model: str, num_nodes: int, embedding_dim: int, hidden_dim: int,
                     num_significant: int) -> float:
    """Number of multiply–accumulate operations implied by Table I."""
    _require_positive(num_nodes=num_nodes, embedding_dim=embedding_dim,
                      hidden_dim=hidden_dim, num_significant=num_significant)
    n, d, D, m = num_nodes, embedding_dim, hidden_dim, num_significant
    model = model.upper()
    if model == "AGCRN":
        return float(n * n * d + n * n * D)
    if model == "GTS":
        return float(n * n * d * d + n * n * D)
    if model == "STEP":
        return float(n * n * d * d + n * n * D)
    if model == "SAGDFN":
        return float(n * m * d * d + n * m * D)
    raise KeyError(f"unknown model {model!r}")


def memory_cost(model: str, num_nodes: int, embedding_dim: int, hidden_dim: int,
                num_significant: int) -> float:
    """Number of stored scalars implied by Table I."""
    _require_positive(num_nodes=num_nodes, embedding_dim=embedding_dim,
                      hidden_dim=hidden_dim, num_significant=num_significant)
    n, d, m = num_nodes, embedding_dim, num_significant
    model = model.upper()
    if model == "AGCRN":
        return float(n * n + n * d)
    if model in {"GTS", "STEP"}:
        return float(n * n + n * n * d)
    if model == "SAGDFN":
        return float(n * m + n * m * d)
    raise KeyError(f"unknown model {model!r}")


def complexity_table(num_nodes: int, embedding_dim: int, hidden_dim: int,
                     num_significant: int) -> list[ComplexityProfile]:
    """Evaluate Table I for a concrete (N, d, D, M) setting."""
    expressions = {
        "AGCRN": ("O(N^2 d + N^2 D)", "O(N^2 + N d)"),
        "GTS": ("O(N^2 d^2 + N^2 D)", "O(N^2 + N^2 d)"),
        "STEP": ("O(N^2 d^2 + N^2 D)", "O(N^2 + N^2 d)"),
        "SAGDFN": ("O(N M d^2 + N M D)", "O(N M + N M d)"),
    }
    rows = []
    for model, (comp_expr, mem_expr) in expressions.items():
        rows.append(
            ComplexityProfile(
                model=model,
                computation_expr=comp_expr,
                memory_expr=mem_expr,
                computation=computation_cost(model, num_nodes, embedding_dim, hidden_dim,
                                             num_significant),
                memory=memory_cost(model, num_nodes, embedding_dim, hidden_dim, num_significant),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Example 1 / Example 2: GPU memory of hidden states and node embeddings
# --------------------------------------------------------------------------- #
def hidden_state_memory_gb(batch_size: int, width: int, history: int, hidden_dim: int) -> float:
    """Memory of one hidden-state variable ``B × width × T × D`` in GiB.

    With ``width = N`` this is Example 1's 1.57 GB figure for GTS at
    ``B=64, N=2000, T=24, D=64``; with ``width = M`` it is Example 2's
    "< 0.1 GB" figure for SAGDFN.
    """
    _require_positive(batch_size=batch_size, width=width, history=history, hidden_dim=hidden_dim)
    return batch_size * width * history * hidden_dim * BYTES_PER_FLOAT / GIGABYTE


def embedding_memory_gb(num_nodes: int, num_columns: int, embedding_dim: int) -> float:
    """Memory of pair-wise node embeddings ``N × columns × d`` in GiB.

    ``columns = N`` gives the 64 GB of Example 1 (GTS at N=2000, d=100);
    ``columns = M`` gives the 3.2 GB of Example 2 (SAGDFN at M=100).
    """
    _require_positive(num_nodes=num_nodes, num_columns=num_columns, embedding_dim=embedding_dim)
    return num_nodes * num_columns * embedding_dim * BYTES_PER_FLOAT / GIGABYTE


def example_memory_comparison(
    batch_size: int = 64,
    num_nodes: int = 2000,
    history: int = 24,
    hidden_dim: int = 64,
    embedding_dim: int = 100,
    num_significant: int = 100,
) -> dict[str, float]:
    """Reproduce the Example 1 vs Example 2 memory comparison of the paper."""
    return {
        "gts_hidden_state_gb": hidden_state_memory_gb(batch_size, num_nodes, history, hidden_dim),
        "sagdfn_hidden_state_gb": hidden_state_memory_gb(
            batch_size, num_significant, history, hidden_dim
        ),
        "gts_embedding_gb": embedding_memory_gb(num_nodes, num_nodes, embedding_dim),
        "sagdfn_embedding_gb": embedding_memory_gb(num_nodes, num_significant, embedding_dim),
    }
