"""Configuration of the SAGDFN model and its ablation switches."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SAGDFNConfig:
    """Hyper-parameters of SAGDFN (defaults follow the paper where practical).

    The paper's reference configuration uses ``embedding_dim=100``,
    ``num_significant=100``, ``top_k=80``, ``hidden_size=64``, ``num_heads=8``,
    ``diffusion_steps=3`` and α = 2.0 on the large datasets; the defaults here
    are scaled to CPU-sized experiments but every value can be raised back to
    the paper's setting.

    Parameters
    ----------
    num_nodes:
        ``N``, the number of time series.
    input_dim:
        Channels of the encoder input (target + time covariates).
    output_dim:
        Channels being forecast (1 for all paper datasets).
    history / horizon:
        ``h`` and ``f`` of Definition 3.
    embedding_dim:
        ``d``, width of the node embeddings ``E``.
    num_significant:
        ``M``, number of globally significant neighbours (slim width).
    top_k:
        ``K`` of Algorithm 1 — how many of the ``M`` slots are filled with the
        highest-frequency nodes; the remaining ``M − K`` are explored randomly
        until iteration ``convergence_iteration``.
    hidden_size:
        ``D``, GRU hidden width.
    num_heads:
        ``P``, number of feed-forward attention heads.
    ffn_hidden:
        Hidden width of each pair-wise scoring FFN.
    alpha:
        α of the α-entmax normaliser (1.0 = softmax, 2.0 = sparsemax).
    diffusion_steps:
        ``J``, depth of the fast graph diffusion (Eq. 9).
    num_layers:
        Encoder/decoder recurrent layers (the paper uses 1).
    teacher_forcing:
        Probability of feeding the ground-truth value (instead of the model's
        own prediction) to the decoder during training — the
        scheduled-sampling curriculum inherited from DCRNN.  0 disables it.
    convergence_iteration:
        ``r`` of Algorithm 2 — after this many training iterations the
        neighbour index set is frozen and random exploration stops.
    normalizer:
        ``"entmax"`` (paper) or ``"softmax"`` (the "w/o Entmax" ablation).
    use_pairwise_attention:
        ``False`` reproduces the "w/o Attention" ablation (inner-product slim
        adjacency).
    use_sns:
        ``False`` reproduces the "w/o SNS" ablation (random index set).
    use_predefined_graph:
        ``True`` reproduces the "w/o SNS & SSMA" ablation (distance-based
        top-``num_significant`` adjacency, no learned graph).
    chunk_size:
        Node-block size of the memory-bounded large-``N`` pathway.  When set,
        the SNS distance ranking and the attention scoring pipeline process
        nodes ``chunk_size`` rows at a time, so peak memory drops from
        ``O(N·M·d)`` to ``O(chunk_size·M·d)`` while the outputs stay
        bit-identical to the unchunked paths.  ``None`` leaves the default
        (unchunked SNS, cache-heuristic attention tiles).
    memory_budget_mb:
        Alternative to ``chunk_size``: a per-forward scratch budget in MiB
        from which each module derives its own node-block size.  Ignored
        when ``chunk_size`` is set explicitly.
    seed:
        Seed for parameter initialisation and neighbour sampling.
    """

    num_nodes: int
    input_dim: int = 2
    output_dim: int = 1
    history: int = 12
    horizon: int = 12
    embedding_dim: int = 16
    num_significant: int = 10
    top_k: int = 8
    hidden_size: int = 32
    num_heads: int = 2
    ffn_hidden: int = 16
    alpha: float = 1.5
    diffusion_steps: int = 2
    num_layers: int = 1
    teacher_forcing: float = 0.0
    convergence_iteration: int = 50
    normalizer: str = "entmax"
    use_pairwise_attention: bool = True
    use_sns: bool = True
    use_predefined_graph: bool = False
    chunk_size: int | None = None
    memory_budget_mb: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("SAGDFN needs at least two nodes")
        if self.num_significant > self.num_nodes:
            raise ValueError(
                f"num_significant ({self.num_significant}) cannot exceed num_nodes "
                f"({self.num_nodes})"
            )
        if not 0 < self.top_k <= self.num_significant:
            raise ValueError("top_k must satisfy 0 < top_k <= num_significant")
        if self.normalizer not in {"entmax", "softmax"}:
            raise ValueError("normalizer must be 'entmax' or 'softmax'")
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1.0")
        if self.diffusion_steps < 1:
            raise ValueError("diffusion_steps must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not 0.0 <= self.teacher_forcing <= 1.0:
            raise ValueError("teacher_forcing must be a probability in [0, 1]")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for the default)")
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive (or None for the default)")

    @classmethod
    def paper_setting(cls, num_nodes: int, history: int = 12, horizon: int = 12) -> "SAGDFNConfig":
        """The full-size configuration reported in the paper's implementation section."""
        return cls(
            num_nodes=num_nodes,
            history=history,
            horizon=horizon,
            embedding_dim=100,
            num_significant=min(100, num_nodes),
            top_k=min(80, num_nodes),
            hidden_size=64,
            num_heads=8,
            ffn_hidden=64,
            alpha=2.0,
            diffusion_steps=3,
        )
