"""Configuration of the SAGDFN model and its ablation switches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SAGDFNConfig:
    """Hyper-parameters of SAGDFN (defaults follow the paper where practical).

    The paper's reference configuration uses ``embedding_dim=100``,
    ``num_significant=100``, ``top_k=80``, ``hidden_size=64``, ``num_heads=8``,
    ``diffusion_steps=3`` and α = 2.0 on the large datasets; the defaults here
    are scaled to CPU-sized experiments but every value can be raised back to
    the paper's setting.

    Parameters
    ----------
    num_nodes:
        ``N``, the number of time series.
    input_dim:
        Channels of the encoder input (target + time covariates).
    output_dim:
        Channels being forecast (1 for all paper datasets).
    history / horizon:
        ``h`` and ``f`` of Definition 3.
    embedding_dim:
        ``d``, width of the node embeddings ``E``.
    num_significant:
        ``M``, number of globally significant neighbours (slim width).
    top_k:
        ``K`` of Algorithm 1 — how many of the ``M`` slots are filled with the
        highest-frequency nodes; the remaining ``M − K`` are explored randomly
        until iteration ``convergence_iteration``.
    hidden_size:
        ``D``, GRU hidden width.
    num_heads:
        ``P``, number of feed-forward attention heads.
    ffn_hidden:
        Hidden width of each pair-wise scoring FFN.
    alpha:
        α of the α-entmax normaliser (1.0 = softmax, 2.0 = sparsemax).
    diffusion_steps:
        ``J``, depth of the fast graph diffusion (Eq. 9).
    num_layers:
        Encoder/decoder recurrent layers (the paper uses 1).
    teacher_forcing:
        Probability of feeding the ground-truth value (instead of the model's
        own prediction) to the decoder during training — the
        scheduled-sampling curriculum inherited from DCRNN.  0 disables it.
    convergence_iteration:
        ``r`` of Algorithm 2 — after this many training iterations the
        neighbour index set is frozen and random exploration stops.
    normalizer:
        ``"entmax"`` (paper) or ``"softmax"`` (the "w/o Entmax" ablation).
    use_pairwise_attention:
        ``False`` reproduces the "w/o Attention" ablation (inner-product slim
        adjacency).
    use_sns:
        ``False`` reproduces the "w/o SNS" ablation (random index set).
    use_predefined_graph:
        ``True`` reproduces the "w/o SNS & SSMA" ablation (distance-based
        top-``num_significant`` adjacency, no learned graph).
    chunk_size:
        Node-block size of the memory-bounded large-``N`` pathway.  When set,
        the SNS distance ranking and the attention scoring pipeline process
        nodes ``chunk_size`` rows at a time, so peak memory drops from
        ``O(N·M·d)`` to ``O(chunk_size·M·d)`` while the outputs stay
        bit-identical to the unchunked paths.  ``None`` leaves the default
        (unchunked SNS, cache-heuristic attention tiles).
    memory_budget_mb:
        Alternative to ``chunk_size``: a per-forward scratch budget in MiB
        from which each module derives its own node-block size.  Ignored
        when ``chunk_size`` is set explicitly.
    backend:
        Name of the execution backend owning the hot kernels (attention
        pair scoring, diffusion aggregation, fused GRU gates).  ``None``
        defers to the ``REPRO_BACKEND`` environment variable and falls back
        to ``"numpy"`` (the bit-exact reference).  ``"numba"`` selects the
        jitted backend when numba is installed.  Resolution — and the
        unknown-name :class:`ValueError` — happens when the model is
        constructed, so a config can be built on one host and served on
        another.
    quantiles:
        Probabilistic-forecasting head: when set (e.g. ``(0.1, 0.5, 0.9)``),
        the decoder projects every step to one column per quantile and the
        trainer optimises the masked pinball loss instead of the masked MAE.
        The quantile closest to 0.5 (the median head) is fed back as the
        next decoder input and scores the point metrics.  Requires
        ``output_dim == 1``; quantiles must be strictly increasing in
        ``(0, 1)``.  ``None`` keeps the point-forecast head.
    exog_dim:
        Number of declared exogenous covariate channels (time-of-day /
        day-of-week, …) appended to the ``input_dim`` endogenous channels of
        every encoder input window.  Exogenous channels are part of the
        encoder input width but are never forecast and never normalised by
        the target scaler.  0 keeps the legacy layout (where any covariates
        are counted inside ``input_dim``).
    mask_input:
        Native missing-data handling: when ``True`` the encoder input
        carries one trailing observation-mask channel (1 = observed,
        0 = missing).  The data layer zero-imputes missing endogenous
        readings *in normalised units* (i.e. mean-imputation in original
        units) and the mask channel flows through the same diffusion-state
        precompute and fused gates as every other channel, so the cells see
        both how much signal a node aggregated and which inputs were
        imputed — missing entries influence neither the loss nor any
        gradient.
    seed:
        Seed for parameter initialisation and neighbour sampling.
    """

    num_nodes: int
    input_dim: int = 2
    output_dim: int = 1
    history: int = 12
    horizon: int = 12
    embedding_dim: int = 16
    num_significant: int = 10
    top_k: int = 8
    hidden_size: int = 32
    num_heads: int = 2
    ffn_hidden: int = 16
    alpha: float = 1.5
    diffusion_steps: int = 2
    num_layers: int = 1
    teacher_forcing: float = 0.0
    convergence_iteration: int = 50
    normalizer: str = "entmax"
    use_pairwise_attention: bool = True
    use_sns: bool = True
    use_predefined_graph: bool = False
    chunk_size: int | None = None
    memory_budget_mb: float | None = None
    backend: str | None = None
    quantiles: tuple[float, ...] | None = None
    exog_dim: int = 0
    mask_input: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("SAGDFN needs at least two nodes")
        if self.num_significant > self.num_nodes:
            raise ValueError(
                f"num_significant ({self.num_significant}) cannot exceed num_nodes "
                f"({self.num_nodes})"
            )
        if not 0 < self.top_k <= self.num_significant:
            raise ValueError("top_k must satisfy 0 < top_k <= num_significant")
        if self.normalizer not in {"entmax", "softmax"}:
            raise ValueError("normalizer must be 'entmax' or 'softmax'")
        if self.alpha < 1.0:
            raise ValueError("alpha must be >= 1.0")
        if self.diffusion_steps < 1:
            raise ValueError("diffusion_steps must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if not 0.0 <= self.teacher_forcing <= 1.0:
            raise ValueError("teacher_forcing must be a probability in [0, 1]")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for the default)")
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive (or None for the default)")
        if self.quantiles is not None:
            # Bundle configs arrive as JSON lists; normalise to a float tuple.
            quantiles = tuple(float(q) for q in self.quantiles)
            if not quantiles:
                raise ValueError("quantiles must be non-empty (or None for a point head)")
            if any(not 0.0 < q < 1.0 for q in quantiles):
                raise ValueError(f"quantiles must lie strictly inside (0, 1): {quantiles}")
            if any(b <= a for a, b in zip(quantiles, quantiles[1:])):
                raise ValueError(f"quantiles must be strictly increasing: {quantiles}")
            if self.output_dim != 1:
                raise ValueError("quantile heads require output_dim == 1")
            self.quantiles = quantiles
        if self.exog_dim < 0:
            raise ValueError("exog_dim must be >= 0")
        if self.input_dim < 1:
            raise ValueError("input_dim must be >= 1")

    @property
    def encoder_input_width(self) -> int:
        """Total encoder input channels: endogenous + exogenous + mask."""
        return self.input_dim + self.exog_dim + (1 if self.mask_input else 0)

    @property
    def num_quantiles(self) -> int:
        """Number of decoder quantile heads (1 for a point forecaster)."""
        return len(self.quantiles) if self.quantiles is not None else 1

    @property
    def median_index(self) -> int:
        """Index of the quantile fed back to the decoder (closest to 0.5)."""
        if self.quantiles is None:
            return 0
        return int(np.argmin(np.abs(np.asarray(self.quantiles) - 0.5)))

    @classmethod
    def paper_setting(cls, num_nodes: int, history: int = 12, horizon: int = 12) -> "SAGDFNConfig":
        """The full-size configuration reported in the paper's implementation section."""
        return cls(
            num_nodes=num_nodes,
            history=history,
            horizon=horizon,
            embedding_dim=100,
            num_significant=min(100, num_nodes),
            top_k=min(80, num_nodes),
            hidden_size=64,
            num_heads=8,
            ffn_hidden=64,
            alpha=2.0,
            diffusion_steps=3,
        )
