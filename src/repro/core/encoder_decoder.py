"""Encoder–decoder forecaster built from OneStepFastGConv cells (Section IV-C)."""

from __future__ import annotations

import numpy as np

from repro.backend import ExecutionPlan, OpsBackend, get_backend
from repro.core.gconv import OneStepFastGConvCell, _resolve_plan, as_index_array
from repro.nn.module import Module
from repro.tensor import Tensor, stack
from repro.utils.seed import spawn_rng


class SAGDFNEncoderDecoder(Module):
    """Sequence-to-sequence forecaster of Algorithm 2 (lines 8–12).

    The encoder consumes the ``h`` historical observations and compresses
    them into the hidden state ``H_{t0-1}``; the decoder is seeded with the
    last observation ``X_{t0}`` and rolls forward ``f`` steps, feeding each
    prediction back as the next input.

    The hot path is the **fused recurrence**: before the encoder loop the
    input-side diffusion states of *all* history steps are computed in one
    batched aggregation (the time axis is folded into the batch axis, so
    the whole precompute is a handful of ``(B·h·N, C)``-sized BLAS calls),
    and each encoder step then only aggregates the hidden state through the
    cells' fused gates.  :meth:`forward_reference` retains the historical
    per-gate concat-based loop for equivalence testing and benchmarking.

    Parameters
    ----------
    input_dim:
        Endogenous channels of the encoder input (target + any covariates
        counted in the legacy layout).
    hidden_dim:
        ``D`` — GRU hidden width.
    output_dim:
        Channels being forecast (1 in the paper).
    horizon:
        ``f`` — number of decoding steps.
    diffusion_steps:
        ``J`` of the fast graph convolution.
    num_layers:
        Number of stacked recurrent layers (the paper uses 1).
    teacher_forcing:
        Probability of feeding the ground truth instead of the prediction to
        the decoder during training (scheduled-sampling style curriculum).
    node_chunk_size:
        Deprecated: node-block size forwarded to every cell's graph
        convolutions.  Prefer ``plan`` (or ``SAGDFNConfig.chunk_size``);
        ``None`` keeps the unchunked aggregation.
    backend:
        Execution backend (name, instance, or ``None`` for the
        ``REPRO_BACKEND``/default resolution) shared by every cell.
    plan:
        A shared :class:`~repro.backend.ExecutionPlan` carrying the
        chunking knobs; one plan instance serves the whole model.
    exog_dim:
        Declared exogenous covariate channels appended after the
        ``input_dim`` endogenous ones.  They widen the first encoder layer
        only — the decoder consumes predictions (``output_dim`` channels),
        never covariates.
    mask_input:
        When ``True`` the encoder input additionally carries a trailing
        observation-mask channel; it flows through the same diffusion-state
        precompute and fused gates as every other channel.
    quantiles:
        Probabilistic head: the decoder cells project every step to
        ``output_dim · len(quantiles)`` columns (ordered by quantile level),
        and the head closest to 0.5 is fed back as the next decoder input.
        ``None`` keeps the single point head.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        output_dim: int = 1,
        horizon: int = 12,
        diffusion_steps: int = 2,
        num_layers: int = 1,
        teacher_forcing: float = 0.0,
        seed: int | None = 0,
        node_chunk_size: int | None = None,
        exog_dim: int = 0,
        mask_input: bool = False,
        quantiles: tuple[float, ...] | None = None,
        backend: str | OpsBackend | None = None,
        plan: ExecutionPlan | None = None,
    ):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if exog_dim < 0:
            raise ValueError("exog_dim must be >= 0")
        self.backend = get_backend(backend)
        self.plan = _resolve_plan(self.backend, plan, node_chunk_size,
                                  "SAGDFNEncoderDecoder")
        base = 0 if seed is None else seed
        self.input_dim = input_dim
        self.exog_dim = exog_dim
        self.mask_input = bool(mask_input)
        self.encoder_input_dim = input_dim + exog_dim + (1 if mask_input else 0)
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim
        self.quantiles = None if quantiles is None else tuple(float(q) for q in quantiles)
        self.horizon = horizon
        self.num_layers = num_layers
        self.teacher_forcing = teacher_forcing
        self._rng = spawn_rng(base + 123)

        self.encoder_cells = [
            OneStepFastGConvCell(
                self.encoder_input_dim if layer == 0 else hidden_dim,
                hidden_dim,
                output_dim,
                diffusion_steps,
                seed=base + layer,
                backend=self.backend,
                plan=self.plan,
            )
            for layer in range(num_layers)
        ]
        self.decoder_cells = [
            OneStepFastGConvCell(
                output_dim if layer == 0 else hidden_dim,
                hidden_dim,
                self.prediction_dim,
                diffusion_steps,
                seed=base + 100 + layer,
                backend=self.backend,
                plan=self.plan,
            )
            for layer in range(num_layers)
        ]

    @property
    def node_chunk_size(self) -> int | None:
        """Node-block size of every cell's aggregation (plan-backed)."""
        return self.plan.node_chunk_size

    @node_chunk_size.setter
    def node_chunk_size(self, value: int | None) -> None:
        self.plan.node_chunk_size = value

    @property
    def num_quantiles(self) -> int:
        """Number of decoder heads (1 for a point forecaster)."""
        return len(self.quantiles) if self.quantiles else 1

    @property
    def prediction_dim(self) -> int:
        """Channels of every decoder-step prediction (``output_dim · Q``)."""
        return self.output_dim * self.num_quantiles

    @property
    def feedback_index(self) -> int:
        """Quantile head fed back as the next decoder input (closest to 0.5)."""
        if not self.quantiles:
            return 0
        return int(np.argmin(np.abs(np.asarray(self.quantiles) - 0.5)))

    def _feedback(self, prediction: Tensor) -> Tensor:
        """Slice the decoder-input channels out of a full-width prediction."""
        if self.num_quantiles == 1:
            return prediction
        start = self.feedback_index * self.output_dim
        return prediction[..., start : start + self.output_dim]

    def _run_stack(
        self,
        cells: list[OneStepFastGConvCell],
        x: Tensor,
        hiddens: list[Tensor],
        adjacency: Tensor,
        index_set: np.ndarray | None,
        degree_scale: Tensor | None = None,
        prepared: list[dict[str, Tensor]] | None = None,
        x_states: list[Tensor] | None = None,
        need_prediction: bool = True,
    ) -> tuple[list[Tensor], Tensor | None]:
        """Push one time step through the stacked cells.

        ``x_states`` are precomputed input-side diffusion states for the
        *first* cell only; deeper layers consume the hidden state of the
        layer below, which cannot be precomputed.
        """
        new_hiddens: list[Tensor] = []
        current = x
        prediction = None
        last = len(cells) - 1
        for layer, (cell, hidden) in enumerate(zip(cells, hiddens)):
            hidden, prediction = cell(
                current, hidden, adjacency, index_set, degree_scale,
                x_states=x_states if layer == 0 else None,
                prepared=prepared[layer] if prepared is not None else None,
                need_prediction=need_prediction and layer == last,
            )
            new_hiddens.append(hidden)
            current = hidden
        return new_hiddens, prediction

    def _precompute_input_states(
        self,
        history: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None,
        degree_scale: Tensor | None,
    ) -> list[list[Tensor]]:
        """Input-side diffusion states of every encoder step, batched.

        The aggregation is linear and channel-wise, so the input half of
        every gate can be diffused for the *whole history at once*: the time
        axis is folded into the batch axis and the ``J - 1`` aggregation
        hops run as ``(B·h·N, C)``-sized batched BLAS calls instead of
        ``h`` per-step ones.  The per-step recurrence then only aggregates
        the hidden state.  Returns ``states[t][j]``, the hop-``j`` state of
        step ``t``; memory stays at input scale (``J ×`` the history
        itself).
        """
        first = self.encoder_cells[0]
        batch, steps, num_nodes, channels = history.shape
        flat = history.reshape(batch * steps, num_nodes, channels)
        states = first.gates.diffusion_states(flat, adjacency, index_set, degree_scale)
        per_hop = [s.reshape(batch, steps, num_nodes, channels) for s in states]
        return [[hop[:, t] for hop in per_hop] for t in range(steps)]

    def forward(
        self,
        history: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        targets: Tensor | None = None,
        degree_scale: Tensor | None = None,
    ) -> Tensor:
        """Forecast ``horizon`` steps from ``history`` of shape ``(B, h, N, C)``.

        ``targets`` (shape ``(B, f, N, output_dim)``) enables teacher forcing
        during training; evaluation never passes targets.  ``degree_scale``
        optionally supplies the precomputed ``(D + I)^{-1}`` column used by
        every graph convolution (frozen-graph inference).
        """
        if history.ndim != 4:
            raise ValueError(f"history must be (batch, steps, nodes, channels), got {history.shape}")
        batch, steps, num_nodes, _ = history.shape
        index_set = as_index_array(index_set)
        prepared_encoder = [cell.prepare_weights() for cell in self.encoder_cells]
        prepared_decoder = [cell.prepare_weights() for cell in self.decoder_cells]

        encoder_hiddens = [cell.initial_state(batch, num_nodes) for cell in self.encoder_cells]
        input_states = self._precompute_input_states(
            history, adjacency, index_set, degree_scale
        )
        for t in range(steps):
            encoder_hiddens, _ = self._run_stack(
                self.encoder_cells, history[:, t], encoder_hiddens, adjacency, index_set,
                degree_scale, prepared=prepared_encoder,
                x_states=input_states[t], need_prediction=False,
            )

        decoder_hiddens = encoder_hiddens
        decoder_input = history[:, -1, :, : self.output_dim]
        predictions: list[Tensor] = []
        for step in range(self.horizon):
            decoder_hiddens, prediction = self._run_stack(
                self.decoder_cells, decoder_input, decoder_hiddens, adjacency, index_set,
                degree_scale, prepared=prepared_decoder,
            )
            predictions.append(prediction)
            use_truth = (
                targets is not None
                and self.training
                and self.teacher_forcing > 0.0
                and self._rng.random() < self.teacher_forcing
            )
            decoder_input = targets[:, step] if use_truth else self._feedback(prediction)
        return stack(predictions, axis=1)

    def forward_reference(
        self,
        history: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        targets: Tensor | None = None,
        degree_scale: Tensor | None = None,
    ) -> Tensor:
        """The historical (pre-fusion) forward: per-gate concat recurrence.

        Runs :meth:`OneStepFastGConvCell.forward_reference` at every step —
        no gate fusion, no shared diffusion states, no input precompute —
        matching the seed implementation's math and cost.  Teacher forcing
        consumes the same RNG stream as :meth:`forward`, so with equal RNG
        state the two paths make identical curriculum decisions.
        """
        if history.ndim != 4:
            raise ValueError(f"history must be (batch, steps, nodes, channels), got {history.shape}")
        batch, steps, num_nodes, _ = history.shape
        index_set = as_index_array(index_set)

        def run_stack(cells, x, hiddens):
            new_hiddens, current, prediction = [], x, None
            for cell, hidden in zip(cells, hiddens):
                hidden, prediction = cell.forward_reference(
                    current, hidden, adjacency, index_set, degree_scale
                )
                new_hiddens.append(hidden)
                current = hidden
            return new_hiddens, prediction

        encoder_hiddens = [cell.initial_state(batch, num_nodes) for cell in self.encoder_cells]
        for t in range(steps):
            encoder_hiddens, _ = run_stack(self.encoder_cells, history[:, t], encoder_hiddens)

        decoder_hiddens = encoder_hiddens
        decoder_input = history[:, -1, :, : self.output_dim]
        predictions: list[Tensor] = []
        for step in range(self.horizon):
            decoder_hiddens, prediction = run_stack(
                self.decoder_cells, decoder_input, decoder_hiddens
            )
            predictions.append(prediction)
            use_truth = (
                targets is not None
                and self.training
                and self.teacher_forcing > 0.0
                and self._rng.random() < self.teacher_forcing
            )
            decoder_input = targets[:, step] if use_truth else self._feedback(prediction)
        return stack(predictions, axis=1)
