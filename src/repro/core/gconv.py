"""Fast graph convolution and the OneStepFastGConv GRU cell (Eq. 9–10).

:class:`FastGraphConv` implements the diffusion convolution

.. math::

    W \\star_{A_s} X = \\sum_{j=0}^{J-1} W_j
        \\left[(D + I)^{-1}(A_s X_I + X)\\right]^{j}

over either the slim ``(N, M)`` adjacency (SAGDFN) or a dense ``(N, N)``
support (the "w/o SNS & SSMA" ablation and predefined-graph baselines).
:class:`OneStepFastGConvCell` replaces every matrix multiplication of a GRU
cell with this operator, yielding the recurrent unit of Eq. 10.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, concat
from repro.utils.seed import spawn_rng


class FastGraphConv(Module):
    """Diffusion graph convolution with learnable per-hop projections.

    Parameters
    ----------
    input_dim / output_dim:
        Feature widths before and after the convolution.
    diffusion_steps:
        ``J`` — number of terms in the diffusion sum (hop 0 is the identity).
    """

    def __init__(self, input_dim: int, output_dim: int, diffusion_steps: int = 2,
                 seed: int | None = 0, node_chunk_size: int | None = None):
        super().__init__()
        if diffusion_steps < 1:
            raise ValueError("diffusion_steps must be >= 1")
        if node_chunk_size is not None and node_chunk_size < 1:
            raise ValueError("node_chunk_size must be >= 1 (or None)")
        rng = spawn_rng(seed)
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.diffusion_steps = diffusion_steps
        self.node_chunk_size = node_chunk_size
        self.hop_weights = [
            Parameter(init.xavier_uniform((input_dim, output_dim), rng), name=f"hop_{j}")
            for j in range(diffusion_steps)
        ]
        self.bias = Parameter(np.zeros(output_dim), name="bias")

    def forward(
        self,
        x: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
    ) -> Tensor:
        """Apply the convolution to ``x`` of shape ``(..., N, input_dim)``.

        When ``index_set`` is given, ``adjacency`` must be the slim ``(N, M)``
        matrix and the aggregation gathers only the significant neighbours
        (cost ``O(N·M)``); otherwise ``adjacency`` is a dense ``(N, N)``
        support and the aggregation is the classical ``A X`` (cost ``O(N²)``).

        ``degree_scale`` optionally supplies a precomputed ``(D + I)^{-1}``
        column of shape ``(N, 1)``; frozen-graph inference passes it so the
        degree normalisation is not rederived from the adjacency on every
        request.

        With ``node_chunk_size`` set, the per-hop aggregation is evaluated
        over node-row blocks — each output row depends only on its own
        adjacency row and the (small) gathered neighbour block, so the
        blocked aggregation matches the full matmul to BLAS summation-order
        precision (≈1 ulp; bitwise identity is only guaranteed for the SNS
        and attention paths) while its transient buffers stay ``O(chunk)``
        along the node axis.
        """
        if x.shape[-1] != self.input_dim:
            raise ValueError(f"expected last dimension {self.input_dim}, got {x.shape}")
        if degree_scale is not None:
            scale = degree_scale
        else:
            # (D + I)^{-1}, differentiable so the slim adjacency also receives
            # gradients through the degree normalisation (Eq. 9).
            scale = 1.0 / (adjacency.sum(axis=-1, keepdims=True) + 1.0)

        num_nodes = x.shape[-2]
        chunk = self.node_chunk_size
        current = x
        output = current.matmul(self.hop_weights[0])
        for hop_weight in self.hop_weights[1:]:
            if index_set is not None:
                gathered = current[..., np.asarray(index_set, dtype=np.int64), :]
            else:
                gathered = current
            if chunk is not None and chunk < num_nodes:
                current = concat(
                    [
                        (adjacency[start : start + chunk].matmul(gathered)
                         + current[..., start : start + chunk, :])
                        * scale[start : start + chunk]
                        for start in range(0, num_nodes, chunk)
                    ],
                    axis=-2,
                )
            else:
                current = (adjacency.matmul(gathered) + current) * scale
            output = output + current.matmul(hop_weight)
        return output + self.bias


class OneStepFastGConvCell(Module):
    """GRU cell whose gate transformations are fast graph convolutions (Eq. 10).

    The cell operates on node-feature tensors of shape
    ``(batch, N, channels)`` and a hidden state of shape
    ``(batch, N, hidden)``; it also produces the one-step-ahead prediction
    ``X̂_t = H_t W_x`` used by the decoder.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        output_dim: int = 1,
        diffusion_steps: int = 2,
        seed: int | None = 0,
        node_chunk_size: int | None = None,
    ):
        super().__init__()
        base = 0 if seed is None else seed
        combined = input_dim + hidden_dim
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim
        self.reset_gate = FastGraphConv(combined, hidden_dim, diffusion_steps, seed=base,
                                        node_chunk_size=node_chunk_size)
        self.update_gate = FastGraphConv(combined, hidden_dim, diffusion_steps, seed=base + 1,
                                         node_chunk_size=node_chunk_size)
        self.candidate = FastGraphConv(combined, hidden_dim, diffusion_steps, seed=base + 2,
                                       node_chunk_size=node_chunk_size)
        rng = spawn_rng(base + 3)
        self.projection = Parameter(
            init.xavier_uniform((hidden_dim, output_dim), rng), name="projection"
        )

    def initial_state(self, batch_size: int, num_nodes: int) -> Tensor:
        """Zero hidden state of shape ``(batch, N, hidden)``, in the cell's dtype."""
        dtype = self.projection.dtype
        return Tensor(np.zeros((batch_size, num_nodes, self.hidden_dim)), dtype=dtype)

    def forward(
        self,
        x: Tensor,
        hidden: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """One recurrence step; returns ``(new_hidden, prediction)``."""
        combined = concat([x, hidden], axis=-1)
        reset = self.reset_gate(combined, adjacency, index_set, degree_scale).sigmoid()
        update = self.update_gate(combined, adjacency, index_set, degree_scale).sigmoid()
        candidate_input = concat([x, reset * hidden], axis=-1)
        candidate = self.candidate(candidate_input, adjacency, index_set, degree_scale).tanh()
        new_hidden = update * hidden + (1.0 - update) * candidate
        prediction = new_hidden.matmul(self.projection)
        return new_hidden, prediction
