"""Fast graph convolution and the OneStepFastGConv GRU cell (Eq. 9–10).

:class:`FastGraphConv` implements the diffusion convolution

.. math::

    W \\star_{A_s} X = \\sum_{j=0}^{J-1} W_j
        \\left[(D + I)^{-1}(A_s X_I + X)\\right]^{j}

over either the slim ``(N, M)`` adjacency (SAGDFN) or a dense ``(N, N)``
support (the "w/o SNS & SSMA" ablation and predefined-graph baselines).
:class:`OneStepFastGConvCell` replaces every matrix multiplication of a GRU
cell with this operator, yielding the recurrent unit of Eq. 10.

The cell's hot path is **fused**: the reset and update gates historically ran
two independent convolutions over the same ``concat([x, hidden])`` input —
paying the ``O(B·N·M·d)`` diffusion aggregation twice — and the candidate
paid it a third time.  The current layout stores both gates as a single
:class:`FastGraphConv` of doubled output width (``self.gates``), and exploits
the channel-wise linearity of the aggregation
(``agg(concat(x, h)) ≡ concat(agg(x), agg(h))``) to drop the per-step
``concat`` allocations entirely: every hop weight is split into its
input-side and hidden-side row blocks, the input diffusion states are
computed once (and may be *precomputed for a whole sequence* by the
encoder — see :meth:`FastGraphConv.diffusion_states`), and the per-step
recurrence only aggregates the hidden state.  :meth:`forward_reference`
retains the original concat-based math for equivalence testing and as the
perf baseline.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.backend import ExecutionPlan, OpsBackend, get_backend
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, concat
from repro.utils.seed import spawn_rng


def _resolve_plan(
    backend: OpsBackend,
    plan: ExecutionPlan | None,
    node_chunk_size: int | None,
    owner: str,
) -> ExecutionPlan:
    """Shared backend/plan resolution of the graph-convolution modules.

    ``node_chunk_size`` is the deprecated per-module kwarg: accepted (and
    folded into a fresh plan) when no plan is given, rejected alongside an
    explicit plan, and nudged towards the plan-based spelling.
    """
    if plan is not None:
        if node_chunk_size is not None:
            raise ValueError(
                "pass node_chunk_size through the ExecutionPlan when one is provided"
            )
        return plan
    if node_chunk_size is not None:
        warnings.warn(
            f"{owner}(node_chunk_size=...) is deprecated; the knob now lives "
            "on the ExecutionPlan — set SAGDFNConfig.chunk_size or pass "
            "plan=backend.make_plan(node_chunk_size=...) instead; see "
            "README.md#execution-backends",
            DeprecationWarning,
            stacklevel=3,
        )
    # make_plan validates node_chunk_size (>= 1 or None).
    return backend.make_plan(node_chunk_size=node_chunk_size)


def as_index_array(index_set: np.ndarray | None) -> np.ndarray | None:
    """Coerce an index set to ``int64`` once (no-op for int64 arrays).

    Hot loops call this at their entry point and pass the result down, so
    the conversion is not redone per hop / per gate / per time step.
    """
    if index_set is None:
        return None
    return np.asarray(index_set, dtype=np.int64)


class FastGraphConv(Module):
    """Diffusion graph convolution with learnable per-hop projections.

    Parameters
    ----------
    input_dim / output_dim:
        Feature widths before and after the convolution.
    diffusion_steps:
        ``J`` — number of terms in the diffusion sum (hop 0 is the identity).
    """

    def __init__(self, input_dim: int, output_dim: int, diffusion_steps: int = 2,
                 seed: int | None = 0, node_chunk_size: int | None = None,
                 backend: str | OpsBackend | None = None,
                 plan: ExecutionPlan | None = None):
        super().__init__()
        if diffusion_steps < 1:
            raise ValueError("diffusion_steps must be >= 1")
        self.backend = get_backend(backend)
        self.plan = _resolve_plan(self.backend, plan, node_chunk_size, "FastGraphConv")
        rng = spawn_rng(seed)
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.diffusion_steps = diffusion_steps
        self.hop_weights = [
            Parameter(init.xavier_uniform((input_dim, output_dim), rng), name=f"hop_{j}")
            for j in range(diffusion_steps)
        ]
        self.bias = Parameter(np.zeros(output_dim), name="bias")

    @property
    def node_chunk_size(self) -> int | None:
        """Node-block size of the per-hop aggregation (plan-backed)."""
        return self.plan.node_chunk_size

    @node_chunk_size.setter
    def node_chunk_size(self, value: int | None) -> None:
        self.plan.node_chunk_size = value

    # ------------------------------------------------------------------ #
    # Diffusion states (weight-independent part of the convolution)
    # ------------------------------------------------------------------ #
    def diffusion_states(
        self,
        x: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
    ) -> list[Tensor]:
        """The ``J`` diffusion states ``[(D+I)^{-1}(A_s X_I + X)]^j X``.

        The states depend only on the graph (adjacency / index set / degree
        scale) and the signal ``x`` — not on this layer's weights — so one
        state computation can feed several weight applications (the fused
        GRU gates), and a whole input sequence can be diffused in one
        batched call by folding the time axis into the batch axis before
        calling this.

        Honors ``node_chunk_size`` exactly like :meth:`forward`.
        """
        if degree_scale is not None:
            scale = degree_scale
        else:
            # (D + I)^{-1}, differentiable so the slim adjacency also receives
            # gradients through the degree normalisation (Eq. 9).
            scale = 1.0 / (adjacency.sum(axis=-1, keepdims=True) + 1.0)

        index_set = as_index_array(index_set)
        num_nodes = x.shape[-2]
        chunk = self.node_chunk_size
        states = [x]
        current = x
        for _ in range(1, self.diffusion_steps):
            if index_set is not None:
                gathered = current[..., index_set, :]
            else:
                gathered = current
            if chunk is not None and chunk < num_nodes:
                current = concat(
                    [
                        self.backend.diffusion_hop(
                            adjacency[start : start + chunk],
                            gathered,
                            current[..., start : start + chunk, :],
                            scale[start : start + chunk],
                        )
                        for start in range(0, num_nodes, chunk)
                    ],
                    axis=-2,
                )
            else:
                current = self.backend.diffusion_hop(adjacency, gathered, current, scale)
            states.append(current)
        return states

    def apply_states(self, states: list[Tensor]) -> Tensor:
        """Project precomputed diffusion states: ``Σ_j states[j] W_j + b``."""
        output = states[0].matmul(self.hop_weights[0])
        for state, hop_weight in zip(states[1:], self.hop_weights[1:]):
            output = output + state.matmul(hop_weight)
        return output + self.bias

    def forward(
        self,
        x: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
    ) -> Tensor:
        """Apply the convolution to ``x`` of shape ``(..., N, input_dim)``.

        When ``index_set`` is given, ``adjacency`` must be the slim ``(N, M)``
        matrix and the aggregation gathers only the significant neighbours
        (cost ``O(N·M)``); otherwise ``adjacency`` is a dense ``(N, N)``
        support and the aggregation is the classical ``A X`` (cost ``O(N²)``).

        ``degree_scale`` optionally supplies a precomputed ``(D + I)^{-1}``
        column of shape ``(N, 1)``; frozen-graph inference passes it so the
        degree normalisation is not rederived from the adjacency on every
        request.

        With ``node_chunk_size`` set, the per-hop aggregation is evaluated
        over node-row blocks — each output row depends only on its own
        adjacency row and the (small) gathered neighbour block, so the
        blocked aggregation matches the full matmul to BLAS summation-order
        precision (≈1 ulp; bitwise identity is only guaranteed for the SNS
        and attention paths) while its transient buffers stay ``O(chunk)``
        along the node axis.
        """
        if x.shape[-1] != self.input_dim:
            raise ValueError(f"expected last dimension {self.input_dim}, got {x.shape}")
        return self.apply_states(
            self.diffusion_states(x, adjacency, index_set, degree_scale)
        )


class OneStepFastGConvCell(Module):
    """GRU cell whose gate transformations are fast graph convolutions (Eq. 10).

    The cell operates on node-feature tensors of shape
    ``(batch, N, channels)`` and a hidden state of shape
    ``(batch, N, hidden)``; it also produces the one-step-ahead prediction
    ``X̂_t = H_t W_x`` used by the decoder.

    Parameterisation
    ----------------
    ``self.gates`` holds the reset *and* update gates as one
    :class:`FastGraphConv` over the concatenated ``[x, hidden]`` input with
    ``2·hidden`` output columns (reset in ``[:hidden]``, update in
    ``[hidden:]``) — the two gates consume the same input, so they share a
    single diffusion-state computation.  ``self.candidate`` keeps the
    historical layout.  Fresh cells initialise **bit-identically** to the
    legacy per-gate layout: the fused hop weights are assembled from the
    exact same seeded draws the separate ``reset_gate`` / ``update_gate``
    convolutions used, and legacy checkpoints are migrated transparently by
    :meth:`_upgrade_state_dict`.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        output_dim: int = 1,
        diffusion_steps: int = 2,
        seed: int | None = 0,
        node_chunk_size: int | None = None,
        backend: str | OpsBackend | None = None,
        plan: ExecutionPlan | None = None,
    ):
        super().__init__()
        base = 0 if seed is None else seed
        combined = input_dim + hidden_dim
        self.backend = get_backend(backend)
        self.plan = _resolve_plan(self.backend, plan, node_chunk_size,
                                  "OneStepFastGConvCell")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim
        self.gates = FastGraphConv(combined, 2 * hidden_dim, diffusion_steps, seed=base,
                                   backend=self.backend, plan=self.plan)
        # Re-draw the fused gate weights from the legacy per-gate streams
        # (reset from seed ``base``, update from ``base + 1``) so a freshly
        # constructed cell is bit-identical to the historical layout.
        rng_reset = spawn_rng(base)
        rng_update = spawn_rng(base + 1)
        for hop in self.gates.hop_weights:
            fused = np.concatenate(
                [
                    init.xavier_uniform((combined, hidden_dim), rng_reset),
                    init.xavier_uniform((combined, hidden_dim), rng_update),
                ],
                axis=1,
            )
            hop.data = fused.astype(hop.data.dtype, copy=False)
        self.candidate = FastGraphConv(combined, hidden_dim, diffusion_steps, seed=base + 2,
                                       backend=self.backend, plan=self.plan)
        rng = spawn_rng(base + 3)
        self.projection = Parameter(
            init.xavier_uniform((hidden_dim, output_dim), rng), name="projection"
        )

    # ------------------------------------------------------------------ #
    # Checkpoint migration
    # ------------------------------------------------------------------ #
    def _upgrade_state_dict(
        self, prefix: str, state: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Fuse legacy per-gate checkpoint keys into the ``gates`` parameters.

        Pre-fusion checkpoints stored the reset and update gates as separate
        convolutions (``{prefix}reset_gate.hop_weights.{j}`` …).  Their hop
        weights are concatenated column-wise (reset first) and their biases
        end-to-end, which is exactly the fused layout — the migration is
        bit-exact.  ``candidate`` and ``projection`` keys are unchanged.  A
        checkpoint whose hop count does not match is left untouched so
        :meth:`~repro.nn.module.Module.load_state_dict` reports the usual
        structured missing/unexpected-key mismatch.
        """
        if f"{prefix}reset_gate.hop_weights.0" not in state:
            return state
        hops = self.gates.diffusion_steps
        legacy_keys = [
            f"{prefix}{gate}.{kind}"
            for gate in ("reset_gate", "update_gate")
            for kind in [f"hop_weights.{j}" for j in range(hops)] + ["bias"]
        ]
        if not all(key in state for key in legacy_keys) or (
            f"{prefix}reset_gate.hop_weights.{hops}" in state
        ):
            return state  # hop-count mismatch: fall through to key matching
        state = dict(state)
        for j in range(hops):
            reset = state.pop(f"{prefix}reset_gate.hop_weights.{j}")
            update = state.pop(f"{prefix}update_gate.hop_weights.{j}")
            state[f"{prefix}gates.hop_weights.{j}"] = np.concatenate([reset, update], axis=1)
        reset_bias = state.pop(f"{prefix}reset_gate.bias")
        update_bias = state.pop(f"{prefix}update_gate.bias")
        state[f"{prefix}gates.bias"] = np.concatenate([reset_bias, update_bias])
        return state

    # ------------------------------------------------------------------ #
    # Recurrence
    # ------------------------------------------------------------------ #
    def initial_state(self, batch_size: int, num_nodes: int) -> Tensor:
        """Zero hidden state of shape ``(batch, N, hidden)``, in the cell's dtype."""
        dtype = self.projection.dtype
        return Tensor(
            np.zeros((batch_size, num_nodes, self.hidden_dim), dtype=dtype), dtype=dtype
        )

    def prepare_weights(self) -> dict[str, Tensor]:
        """Stacked views of the fused weights for single-gemm application.

        Stacks the hop weights vertically, matching a diffusion-state
        concatenation ordered ``[x_0, h_0, x_1, h_1, …]`` (every hop weight
        already carries its input-side rows first).  The stacks are autograd
        views of the live parameters, so they must be rebuilt per forward
        call (optimiser steps rebind the parameter data) — the
        encoder–decoder builds them once per sequence, replacing ``2·J``
        small matmuls per gate application with one.
        """
        return {
            "gates": concat(self.gates.hop_weights, axis=0),
            "candidate": concat(self.candidate.hop_weights, axis=0),
        }

    def forward(
        self,
        x: Tensor,
        hidden: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
        x_states: list[Tensor] | None = None,
        prepared: dict[str, Tensor] | None = None,
        need_prediction: bool = True,
    ) -> tuple[Tensor, Tensor | None]:
        """One recurrence step; returns ``(new_hidden, prediction)``.

        ``x_states`` optionally supplies precomputed input-side diffusion
        states (the encoder batches them for the whole history before its
        loop); when given, the step's only aggregation work is the hidden
        state and the reset-scaled hidden state, and ``x`` is never
        touched.  ``prepared`` reuses :meth:`prepare_weights` stacks across
        steps; ``need_prediction=False`` skips the projection matmul (the
        encoder discards predictions).
        """
        index_set = as_index_array(index_set)
        if prepared is None:
            prepared = self.prepare_weights()
        if x_states is None:
            x_states = self.gates.diffusion_states(x, adjacency, index_set, degree_scale)
        h_states = self.gates.diffusion_states(hidden, adjacency, index_set, degree_scale)
        stacked = concat(
            [state for pair in zip(x_states, h_states) for state in pair], axis=-1
        )
        gate_pre = stacked.matmul(prepared["gates"]) + self.gates.bias
        gates = self.backend.fused_gru_gates(gate_pre)
        reset = gates[..., : self.hidden_dim]
        update = gates[..., self.hidden_dim :]
        rh_states = self.candidate.diffusion_states(
            reset * hidden, adjacency, index_set, degree_scale
        )
        stacked = concat(
            [state for pair in zip(x_states, rh_states) for state in pair], axis=-1
        )
        cand_pre = stacked.matmul(prepared["candidate"]) + self.candidate.bias
        new_hidden = self.backend.fused_gru_update(update, hidden, cand_pre)
        prediction = new_hidden.matmul(self.projection) if need_prediction else None
        return new_hidden, prediction

    def forward_reference(
        self,
        x: Tensor,
        hidden: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None = None,
        degree_scale: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """The historical per-gate recurrence step, kept as reference.

        Materialises ``concat([x, hidden])`` and runs an independent
        full-width diffusion aggregation per gate — the seed cost profile —
        so equivalence tests and the perf benchmark compare the fused hot
        path against the original math (and the original amount of work).
        """
        index_set = as_index_array(index_set)
        hidden_dim = self.hidden_dim
        combined = concat([x, hidden], axis=-1)
        reset = self._reference_gate(
            combined, adjacency, index_set, degree_scale, slice(0, hidden_dim)
        ).sigmoid()
        update = self._reference_gate(
            combined, adjacency, index_set, degree_scale, slice(hidden_dim, 2 * hidden_dim)
        ).sigmoid()
        candidate_input = concat([x, reset * hidden], axis=-1)
        candidate = self.candidate(
            candidate_input, adjacency, index_set, degree_scale
        ).tanh()
        new_hidden = update * hidden + (1.0 - update) * candidate
        prediction = new_hidden.matmul(self.projection)
        return new_hidden, prediction

    def _reference_gate(
        self,
        combined: Tensor,
        adjacency: Tensor,
        index_set: np.ndarray | None,
        degree_scale: Tensor | None,
        columns: slice,
    ) -> Tensor:
        """One legacy gate: its own aggregation over the concatenated input."""
        conv = self.gates
        states = conv.diffusion_states(combined, adjacency, index_set, degree_scale)
        output = states[0].matmul(conv.hop_weights[0][:, columns])
        for state, hop in zip(states[1:], conv.hop_weights[1:]):
            output = output + state.matmul(hop[:, columns])
        return output + conv.bias[columns]
