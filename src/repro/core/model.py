"""The end-to-end SAGDFN model (Figure 1 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.backend import OpsBackend, get_backend
from repro.core.attention import SparseSpatialMultiHeadAttention
from repro.core.config import SAGDFNConfig
from repro.core.encoder_decoder import SAGDFNEncoderDecoder
from repro.core.sampling import SignificantNeighborsSampling
from repro.graph import row_normalize, threshold_sparsify
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class SAGDFN(Module):
    """Scalable Adaptive Graph Diffusion Forecasting Network.

    Combines the three modules of Figure 1 — Significant Neighbors Sampling,
    Sparse Spatial Multi-Head Attention and the encoder–decoder of
    OneStepFastGConv cells — and exposes the ablation switches of Table VIII
    via :class:`~repro.core.config.SAGDFNConfig`.

    Typical usage::

        config = SAGDFNConfig(num_nodes=207, history=12, horizon=12)
        model = SAGDFN(config)
        model.refresh_graph(iteration=0)          # Algorithm 2, lines 5–7
        predictions = model(Tensor(batch_x))      # (B, f, N, 1)

    The :class:`~repro.core.trainer.Trainer` calls :meth:`refresh_graph`
    automatically at every iteration.
    """

    def __init__(self, config: SAGDFNConfig, predefined_adjacency: np.ndarray | None = None):
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed)

        # One backend + one ExecutionPlan, resolved here and shared by every
        # module: the chunked SNS ranking and node-tiled attention read
        # chunk_size / memory_budget_mb from it, the graph convolutions read
        # node_chunk_size, and serving reads use_kernel.  Mutating a plan
        # field (e.g. a serving host overriding the chunk size) is seen by
        # all of them at once.
        self.backend = get_backend(config.backend)
        self.plan = self.backend.make_plan(
            chunk_size=config.chunk_size,
            node_chunk_size=config.chunk_size,
            memory_budget_mb=config.memory_budget_mb,
        )

        # Node embedding matrix E (N, d), learned end-to-end.
        self.node_embeddings = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(config.embedding_dim),
                       size=(config.num_nodes, config.embedding_dim)),
            name="node_embeddings",
        )

        self.sampler = SignificantNeighborsSampling(
            num_nodes=config.num_nodes,
            num_significant=config.num_significant,
            top_k=config.top_k,
            seed=config.seed,
            plan=self.plan,
        )
        self.attention = SparseSpatialMultiHeadAttention(
            embedding_dim=config.embedding_dim,
            num_heads=config.num_heads,
            ffn_hidden=config.ffn_hidden,
            alpha=config.alpha,
            normalizer=config.normalizer,
            use_pairwise_attention=config.use_pairwise_attention,
            seed=config.seed,
            backend=self.backend,
            plan=self.plan,
        )
        self.forecaster = SAGDFNEncoderDecoder(
            input_dim=config.input_dim,
            hidden_dim=config.hidden_size,
            output_dim=config.output_dim,
            horizon=config.horizon,
            diffusion_steps=config.diffusion_steps,
            num_layers=config.num_layers,
            teacher_forcing=config.teacher_forcing,
            seed=config.seed,
            exog_dim=config.exog_dim,
            mask_input=config.mask_input,
            quantiles=config.quantiles,
            backend=self.backend,
            plan=self.plan,
        )

        # "w/o SNS & SSMA" ablation: a fixed, distance-derived dense support.
        self._predefined_support: np.ndarray | None = None
        if config.use_predefined_graph:
            if predefined_adjacency is None:
                raise ValueError(
                    "use_predefined_graph=True requires a predefined adjacency matrix"
                )
            sparsified = threshold_sparsify(
                np.asarray(predefined_adjacency, dtype=np.float64), keep_top=config.num_significant
            )
            self._predefined_support = row_normalize(sparsified)

        self._index_set: np.ndarray | None = None
        self._iteration = 0

    # ------------------------------------------------------------------ #
    # Backend switching
    # ------------------------------------------------------------------ #
    def set_backend(self, backend: str | OpsBackend | None) -> OpsBackend:
        """Re-point every module at ``backend`` (name, instance or default).

        The shared :class:`~repro.backend.ExecutionPlan` is kept — only its
        recorded backend name and the modules' op dispatch change — so all
        chunking knobs survive the switch.  Used by
        :class:`~repro.serve.service.ForecastService` when a serving host
        overrides the backend the model was built with.
        """
        resolved = get_backend(backend)
        self.backend = resolved
        self.plan.backend = resolved.name
        for _, module in self.named_modules():
            if hasattr(module, "backend"):
                module.backend = resolved
        return resolved

    # ------------------------------------------------------------------ #
    # Graph refresh (Algorithm 2, lines 5–7)
    # ------------------------------------------------------------------ #
    def refresh_graph(self, iteration: int | None = None) -> None:
        """Re-sample the significant-neighbour index set ``I``.

        Before ``convergence_iteration`` the sampler explores (its last
        ``M − K`` slots are random); afterwards the index set is frozen, as
        prescribed by the paper.  The slim adjacency itself is *always*
        recomputed from the current embeddings inside :meth:`forward` so that
        gradients keep flowing into ``E``.
        """
        if self.config.use_predefined_graph:
            return
        if iteration is not None:
            self._iteration = iteration
        exploring = self._iteration < self.config.convergence_iteration
        if not exploring and self._index_set is not None:
            return
        if self.config.use_sns:
            self._index_set = self.sampler.sample(self.node_embeddings.data, explore=exploring)
        else:
            if self._index_set is None or exploring:
                self._index_set = self.sampler.random_index_set()
        self._iteration += 1

    @property
    def index_set(self) -> np.ndarray | None:
        """Currently selected significant-neighbour indices ``I``."""
        return self._index_set

    def slim_adjacency(self) -> Tensor:
        """Compute the current slim adjacency ``A_s`` (differentiable)."""
        if self.config.use_predefined_graph:
            return Tensor(self._predefined_support)
        if self._index_set is None:
            self.refresh_graph()
        return self.attention(self.node_embeddings, self._index_set)

    # ------------------------------------------------------------------ #
    # Forecasting
    # ------------------------------------------------------------------ #
    def forward(self, history: Tensor, targets: Tensor | None = None) -> Tensor:
        """Forecast ``horizon`` steps from ``history`` of shape ``(B, h, N, C_in)``."""
        if not isinstance(history, Tensor):
            history = Tensor(history)
        adjacency = self.slim_adjacency()
        index_set = None if self.config.use_predefined_graph else self._index_set
        return self.forecaster(history, adjacency, index_set, targets=targets)

    def forward_reference(self, history: Tensor, targets: Tensor | None = None) -> Tensor:
        """:meth:`forward` through the pre-fusion per-gate recurrence.

        Identical graph pipeline (SNS + attention), but the encoder–decoder
        runs :meth:`SAGDFNEncoderDecoder.forward_reference` — the historical
        concat-based per-gate loop kept as the equivalence/perf baseline.
        """
        if not isinstance(history, Tensor):
            history = Tensor(history)
        adjacency = self.slim_adjacency()
        index_set = None if self.config.use_predefined_graph else self._index_set
        return self.forecaster.forward_reference(
            history, adjacency, index_set, targets=targets
        )
