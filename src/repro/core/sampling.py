"""Significant Neighbors Sampling (Algorithm 1 of the paper).

The module maintains a fixed *candidate neighbours* matrix
``C ∈ {1..N}^{N×M}`` (each row lists ``M`` distinct candidate neighbours of a
node) and, given the current node embeddings ``E``, selects the ``M`` node
indices that are globally most significant:

1. rank every node's candidates by Euclidean distance in embedding space,
2. count how often each node id appears within the top-``K`` positions across
   all rows,
3. keep the ``K`` ids with the highest counts, and
4. fill the remaining ``M − K`` slots with nodes sampled uniformly from the
   rest to keep exploring until training converges (iteration ``r``).
"""

from __future__ import annotations

import numpy as np

from repro.utils.seed import spawn_rng


class SignificantNeighborsSampling:
    """Stateful implementation of Algorithm 1.

    Parameters
    ----------
    num_nodes:
        ``N``.
    num_significant:
        ``M`` — size of the returned index set (also the number of candidate
        neighbours per node).
    top_k:
        ``K`` — number of slots filled by the globally most frequent nodes;
        the remaining ``M − K`` slots are sampled randomly for exploration.
    seed:
        Seed of the candidate construction and of the exploration sampling.
    """

    def __init__(self, num_nodes: int, num_significant: int, top_k: int, seed: int | None = 0):
        if num_significant > num_nodes:
            raise ValueError("num_significant cannot exceed num_nodes")
        if not 0 < top_k <= num_significant:
            raise ValueError("top_k must satisfy 0 < top_k <= num_significant")
        self.num_nodes = num_nodes
        self.num_significant = num_significant
        self.top_k = top_k
        self._rng = spawn_rng(seed)
        self.candidates = self._build_candidates()
        self._last_index_set: np.ndarray | None = None

    def _build_candidates(self) -> np.ndarray:
        """Randomly construct the candidate matrix ``C``.

        Each row holds ``M`` distinct node ids (excluding the row's own node
        whenever possible), so that across rows every node is considered
        roughly ``M`` times, as required by the paper.
        """
        n, m = self.num_nodes, self.num_significant
        candidates = np.empty((n, m), dtype=np.int64)
        for node in range(n):
            pool = np.delete(np.arange(n), node) if n > m else np.arange(n)
            candidates[node] = self._rng.choice(pool, size=m, replace=False)
        return candidates

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def sample(self, embeddings: np.ndarray, explore: bool = True) -> np.ndarray:
        """Return the index set ``I`` of the ``M`` most significant neighbours.

        Parameters
        ----------
        embeddings:
            Current node embedding matrix ``E`` of shape ``(N, d)`` (a plain
            array — the sampling step itself is not differentiated through,
            exactly as in the paper where ``I`` is a discrete index set).
        explore:
            When ``True`` (before convergence iteration ``r``), the last
            ``M − K`` slots are filled with uniformly sampled nodes; when
            ``False`` they are filled with the next most frequent nodes so the
            index set becomes deterministic.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.shape[0] != self.num_nodes:
            raise ValueError(
                f"embeddings have {embeddings.shape[0]} rows, expected {self.num_nodes}"
            )
        # Distance of every node to each of its M candidates (lines 1–4).
        candidate_embeddings = embeddings[self.candidates]  # (N, M, d)
        distances = np.linalg.norm(candidate_embeddings - embeddings[:, None, :], axis=-1)
        # Sort each candidate row by distance (line 5).
        order = np.argsort(distances, axis=1)
        sorted_candidates = np.take_along_axis(self.candidates, order, axis=1)
        # Frequency of node ids in the global top-K positions (line 6).
        top_candidates = sorted_candidates[:, : self.top_k]
        counts = np.bincount(top_candidates.reshape(-1), minlength=self.num_nodes)
        ranked = np.argsort(-counts, kind="stable")
        significant = ranked[: self.top_k]
        remaining_slots = self.num_significant - self.top_k
        if remaining_slots > 0:
            if explore:
                pool = np.setdiff1d(np.arange(self.num_nodes), significant, assume_unique=False)
                extra = self._rng.choice(pool, size=remaining_slots, replace=False)
            else:
                extra = ranked[self.top_k : self.top_k + remaining_slots]
            index_set = np.concatenate([significant, extra])
        else:
            index_set = significant
        self._last_index_set = index_set
        return index_set

    @property
    def last_index_set(self) -> np.ndarray | None:
        """The most recently sampled index set (``None`` before the first call)."""
        return self._last_index_set

    def random_index_set(self) -> np.ndarray:
        """Uniformly random index set — used by the "w/o SNS" ablation."""
        index_set = self._rng.choice(self.num_nodes, size=self.num_significant, replace=False)
        self._last_index_set = index_set
        return index_set
