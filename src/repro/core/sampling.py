"""Significant Neighbors Sampling (Algorithm 1 of the paper).

The module maintains a fixed *candidate neighbours* matrix
``C ∈ {1..N}^{N×M}`` (each row lists ``M`` distinct candidate neighbours of a
node) and, given the current node embeddings ``E``, selects the ``M`` node
indices that are globally most significant:

1. rank every node's candidates by Euclidean distance in embedding space,
2. count how often each node id appears within the top-``K`` positions across
   all rows,
3. keep the ``K`` ids with the highest counts, and
4. fill the remaining ``M − K`` slots with nodes sampled uniformly from the
   rest to keep exploring until training converges (iteration ``r``).

Memory
------
The distance ranking (steps 1–2) is evaluated over **node blocks**: each
block gathers only ``(chunk, M, d)`` candidate embeddings, so peak memory is
``O(chunk·M·d)`` instead of the ``O(N·M·d)`` a full gather would cost at
``N ≈ 10⁴``.  The per-id vote counts are integers accumulated across blocks,
so the chunked ranking is bit-identical to the unchunked one for every block
size.  ``chunk_size`` pins the block size directly; ``memory_budget_mb``
derives it from a scratch budget; with neither, the full-``N`` single block
of the original implementation is used.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ExecutionPlan
from repro.utils.seed import spawn_rng

# Bytes per candidate slot of the blocked distance ranking: the float64
# gathered embeddings, the difference buffer, the squared distances and a
# margin for the norm/argsort temporaries.
_RANKING_BYTES_PER_SLOT = 4 * 8


class SignificantNeighborsSampling:
    """Stateful implementation of Algorithm 1.

    Parameters
    ----------
    num_nodes:
        ``N``.
    num_significant:
        ``M`` — size of the returned index set (also the number of candidate
        neighbours per node).
    top_k:
        ``K`` — number of slots filled by the globally most frequent nodes;
        the remaining ``M − K`` slots are sampled randomly for exploration.
    seed:
        Seed of the candidate construction and of the exploration sampling.
    chunk_size:
        Node-block size of the distance ranking (``None`` = one full block).
    memory_budget_mb:
        Scratch budget (MiB) the ranking block size is derived from when
        ``chunk_size`` is not given.
    plan:
        A shared :class:`~repro.backend.ExecutionPlan` carrying the two
        chunking knobs above; mutually exclusive with passing them directly.
    """

    def __init__(
        self,
        num_nodes: int,
        num_significant: int,
        top_k: int,
        seed: int | None = 0,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
        plan: ExecutionPlan | None = None,
    ):
        if num_significant > num_nodes:
            raise ValueError("num_significant cannot exceed num_nodes")
        if not 0 < top_k <= num_significant:
            raise ValueError("top_k must satisfy 0 < top_k <= num_significant")
        if plan is None:
            plan = ExecutionPlan(chunk_size=chunk_size, memory_budget_mb=memory_budget_mb)
        elif chunk_size is not None or memory_budget_mb is not None:
            raise ValueError("pass chunking knobs through the ExecutionPlan when one is provided")
        self.plan = plan
        self.num_nodes = num_nodes
        self.num_significant = num_significant
        self.top_k = top_k
        self._seed = 0 if seed is None else seed
        self._rng = spawn_rng(seed)
        self.candidates = self._build_candidates()
        self._last_index_set: np.ndarray | None = None

    @property
    def chunk_size(self) -> int | None:
        """Node-block size of the distance ranking (plan-backed)."""
        return self.plan.chunk_size

    @chunk_size.setter
    def chunk_size(self, value: int | None) -> None:
        self.plan.chunk_size = value

    @property
    def memory_budget_mb(self) -> float | None:
        """Scratch budget the ranking block is derived from (plan-backed)."""
        return self.plan.memory_budget_mb

    @memory_budget_mb.setter
    def memory_budget_mb(self, value: float | None) -> None:
        self.plan.memory_budget_mb = value

    def _build_candidates(self) -> np.ndarray:
        """Randomly construct the candidate matrix ``C``.

        Each row holds ``M`` distinct node ids (excluding the row's own node
        whenever possible), so that across rows every node is considered
        roughly ``M`` times, as required by the paper.
        """
        n, m = self.num_nodes, self.num_significant
        candidates = np.empty((n, m), dtype=np.int64)
        for node in range(n):
            pool = np.delete(np.arange(n), node) if n > m else np.arange(n)
            candidates[node] = self._rng.choice(pool, size=m, replace=False)
        return candidates

    def _ranking_block(self, embedding_dim: int) -> int:
        """Node-block size of the distance ranking (full ``N`` when unbounded)."""
        if self.chunk_size is not None:
            return max(1, min(self.num_nodes, int(self.chunk_size)))
        if self.memory_budget_mb is not None:
            row_bytes = self.num_significant * embedding_dim * _RANKING_BYTES_PER_SLOT
            block = int(self.memory_budget_mb * 2**20 // max(1, row_bytes))
            return max(1, min(self.num_nodes, block))
        return self.num_nodes

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def _top_k_vote_counts(self, embeddings: np.ndarray) -> np.ndarray:
        """Per-id frequency in the global top-``K`` positions (lines 1–6).

        Blocked over node rows: vote counts are integer sums of independent
        per-row contributions, so the result is identical for every block
        size — only the peak memory changes.
        """
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        block = self._ranking_block(embeddings.shape[1])
        for start in range(0, self.num_nodes, block):
            stop = min(start + block, self.num_nodes)
            rows = self.candidates[start:stop]
            # Distance of each node in the block to its M candidates.
            candidate_embeddings = embeddings[rows]  # (block, M, d)
            distances = np.linalg.norm(
                candidate_embeddings - embeddings[start:stop, None, :], axis=-1
            )
            # Keep each row's K nearest candidates (full argsort matches the
            # original implementation's tie ordering exactly).
            order = np.argsort(distances, axis=1)[:, : self.top_k]
            top_candidates = np.take_along_axis(rows, order, axis=1)
            counts += np.bincount(top_candidates.reshape(-1), minlength=self.num_nodes)
        return counts

    def sample(self, embeddings: np.ndarray, explore: bool = True) -> np.ndarray:
        """Return the index set ``I`` of the ``M`` most significant neighbours.

        Parameters
        ----------
        embeddings:
            Current node embedding matrix ``E`` of shape ``(N, d)`` (a plain
            array — the sampling step itself is not differentiated through,
            exactly as in the paper where ``I`` is a discrete index set).
        explore:
            When ``True`` (before convergence iteration ``r``), the last
            ``M − K`` slots are filled with uniformly sampled nodes; when
            ``False`` they are filled with the next most frequent nodes so the
            index set becomes deterministic.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.shape[0] != self.num_nodes:
            raise ValueError(
                f"embeddings have {embeddings.shape[0]} rows, expected {self.num_nodes}"
            )
        counts = self._top_k_vote_counts(embeddings)
        ranked = np.argsort(-counts, kind="stable")
        # Only ids that actually received votes are "significant"; when the
        # candidate rows overlap heavily there may be fewer than M of them,
        # and the deficit must NOT be padded with zero-count ids in node-id
        # order (the stable argsort tiebreak) — that silently biased the
        # index set towards low node ids.
        voted = ranked[: int(np.count_nonzero(counts))]
        significant = voted[: self.top_k]
        remaining_slots = self.num_significant - len(significant)
        if remaining_slots > 0:
            if explore:
                pool = np.setdiff1d(np.arange(self.num_nodes), significant, assume_unique=False)
                extra = self._rng.choice(pool, size=remaining_slots, replace=False)
            else:
                extra = voted[self.top_k : self.top_k + remaining_slots]
                deficit = remaining_slots - len(extra)
                if deficit > 0:
                    # No voted ids left: draw the rest uniformly, but from a
                    # fixed-seed generator so explore=False stays
                    # deterministic call-to-call.
                    taken = np.concatenate([significant, extra])
                    pool = np.setdiff1d(np.arange(self.num_nodes), taken, assume_unique=False)
                    filler = spawn_rng(self._seed + 0x5EED).choice(
                        pool, size=deficit, replace=False
                    )
                    extra = np.concatenate([extra, filler])
            index_set = np.concatenate([significant, extra])
        else:
            index_set = significant
        self._last_index_set = index_set
        return index_set

    @property
    def last_index_set(self) -> np.ndarray | None:
        """The most recently sampled index set (``None`` before the first call)."""
        return self._last_index_set

    def random_index_set(self) -> np.ndarray:
        """Uniformly random index set — used by the "w/o SNS" ablation."""
        index_set = self._rng.choice(self.num_nodes, size=self.num_significant, replace=False)
        self._last_index_set = index_set
        return index_set


def index_set_overlap(frozen: np.ndarray, fresh: np.ndarray) -> float:
    """Fraction of the frozen index set also present in the fresh one.

    The drift metric of the online serving layer: ``1.0`` means the
    re-sampled significant-neighbour set matches the frozen graph exactly,
    ``0.0`` means complete turnover.  Membership, not order — the slim
    adjacency is invariant to a permutation of ``I``, so only set identity
    matters.  Two empty sets count as fully overlapping.
    """
    frozen = np.unique(np.asarray(frozen, dtype=np.int64))
    fresh = np.unique(np.asarray(fresh, dtype=np.int64))
    if frozen.size == 0:
        return 1.0
    return float(np.intersect1d(frozen, fresh, assume_unique=True).size / frozen.size)
