"""Raw-ndarray serving kernel for the frozen-graph fused recurrence.

:class:`FrozenRecurrenceKernel` runs the exact computation of
:meth:`repro.core.encoder_decoder.SAGDFNEncoderDecoder.forward` — fused
gates, shared diffusion states, input-side precompute — but on plain NumPy
arrays: no autograd ``Tensor`` wrapping, no graph construction, and a
preallocated per-batch-size workspace reused across requests with ``out=``
matmuls, so neither allocation nor Python-level tensor machinery sits in the
per-step loop.

Three layout decisions carry the speedup:

* **Node-major states** ``(N, B, C)`` — the batch and channel axes fold
  together as gemm columns, so the ``O(N·M)`` neighbour aggregation is a
  single ``(N, M) @ (M, B·C)`` BLAS call per hop instead of a
  batch-size-long loop of small gemms, and gemm efficiency *grows* with the
  batch (which is what bends the serve throughput-vs-batch curve upward).
* **Input-side precompute** — the encoder's input diffusion states are
  computed for the whole history before the loop (one batched BLAS call per
  hop) and stored hop-stacked with a constant ones channel, so the per-step
  input contribution (gate *and* bias) is one small gemm.
* **Hop-stacked x-side weights with folded biases** — the per-step loop
  applies ``[x_0 | x_1 | 1] @ [W_0; W_1; b]`` in one call; only the hidden
  and reset-scaled hidden states are diffused inside the loop.

The kernel snapshots the cells' weights at construction (the
:class:`~repro.serve.service.ForecastService` owns its model, so the
parameters are frozen for the service's lifetime).  Outputs match the
autograd forward to BLAS summation-order precision (≤ 1e-10 relative in
float64; the sigmoid drops the reference's upper input clamp at +60, which
changes saturated gates by < 1e-26).  Pass ``use_kernel=False`` to the
service for bit-parity with the trainer forward.

Only inference is supported: no teacher forcing, no gradients.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backend import OpsBackend, get_backend

# Workspaces are keyed by batch size; retain at most this many before
# evicting the least recently used (long-lived services see ragged batch
# sizes from micro-batching and loader tails — memory must not climb with
# every distinct size ever requested).
_MAX_WORKSPACES = 4


def _stack_with_bias(hop_blocks: list[np.ndarray], bias: np.ndarray) -> np.ndarray:
    """Vertically stack per-hop weight blocks and append the bias row.

    Matches a state stack ``[s_0 | s_1 | … | 1]`` whose trailing channel is
    the constant one, so a single gemm applies every hop *and* adds the
    bias.
    """
    return np.ascontiguousarray(np.concatenate(hop_blocks + [bias[None, :]], axis=0))


class _CellWeights:
    """Contiguous, pre-split snapshot of one cell's parameters.

    ``gate_h[j]`` / ``cand_h[j]`` are the hidden-side row blocks of hop
    ``j`` (reset columns first, update columns second, for the gates);
    ``gate_x`` / ``cand_x`` are the hop-stacked input-side blocks with the
    bias folded in as a trailing row (see :func:`_stack_with_bias`).
    """

    __slots__ = (
        "hops", "input_dim", "hidden_dim", "output_dim",
        "gate_h", "cand_h", "gate_x", "cand_x", "projection",
    )

    def __init__(self, cell) -> None:
        in_dim = cell.input_dim
        self.hops = cell.gates.diffusion_steps
        self.input_dim = in_dim
        self.hidden_dim = cell.hidden_dim
        self.output_dim = cell.output_dim
        self.gate_h = [np.ascontiguousarray(w.data[in_dim:]) for w in cell.gates.hop_weights]
        self.cand_h = [np.ascontiguousarray(w.data[in_dim:]) for w in cell.candidate.hop_weights]
        self.gate_x = _stack_with_bias(
            [np.asarray(w.data[:in_dim]) for w in cell.gates.hop_weights],
            cell.gates.bias.data,
        )
        self.cand_x = _stack_with_bias(
            [np.asarray(w.data[:in_dim]) for w in cell.candidate.hop_weights],
            cell.candidate.bias.data,
        )
        self.projection = np.ascontiguousarray(cell.projection.data)


class _Workspace:
    """Preallocated per-batch-size scratch buffers (all node-major)."""

    def __init__(self, kernel: "FrozenRecurrenceKernel", batch: int) -> None:
        n = kernel.num_nodes
        h = kernel.hidden_dim
        hops = kernel.hops
        dtype = kernel.dtype
        m = kernel.adjacency.shape[-1]
        empty = kernel.backend.empty
        # Input widths diffused inside the step loop: every decoder layer,
        # and encoder layers above the first (their inputs are the hidden
        # states of the layer below).  The first encoder layer's input
        # states are precomputed once per request.  Each x-stack carries the
        # hop-stacked states plus the constant ones channel that folds the
        # gate/candidate biases into the x-side gemm.
        x_widths = sorted(
            {cell.input_dim for cell in kernel.decoder}
            | {cell.input_dim for cell in kernel.encoder[1:]}
        )
        self.x_stacks = {}
        self.x_scratch = {}
        self.x_dense_gather = {}
        for width in x_widths:
            stack = empty((n, batch, hops * width + 1), dtype)
            stack[..., -1] = 1.0
            self.x_stacks[width] = stack
            self.x_scratch[width] = empty((n, batch, width), dtype)
            if kernel.index_set is None:
                # Dense supports gather the full strided hop block; give the
                # contiguous copy its own buffer (x_scratch holds the gemm
                # output of the same iteration).
                self.x_dense_gather[width] = empty((n, batch, width), dtype)
        gather_widths = sorted(set(x_widths) | {h}) if kernel.index_set is not None else []
        self.gather = {
            width: empty((m, batch, width), dtype) for width in gather_widths
        }
        # One hidden-state stack per layer; the layer's hidden state lives
        # permanently in ``h_states[layer][0]`` (the hop-0 diffusion state),
        # shared by the encoder and decoder phases.
        self.h_states = [
            empty((hops, n, batch, h), dtype) for _ in kernel.encoder
        ]
        self.r_states = empty((hops, n, batch, h), dtype)
        self.gates = empty((n, batch, 2 * h), dtype)
        self.scratch_2h = empty((n, batch, 2 * h), dtype)
        self.scratch_h = empty((n, batch, h), dtype)
        self.update = empty((n, batch, h), dtype)
        self.candidate = empty((n, batch, h), dtype)
        self.decoder_input = empty((n, batch, kernel.output_dim), dtype)
        # Full-width predictions: one column per quantile head for
        # probabilistic forecasters (prediction_dim == output_dim otherwise).
        self.predictions = empty(
            (kernel.horizon, n, batch, kernel.prediction_dim), dtype
        )


class FrozenRecurrenceKernel:
    """No-grad fused recurrence over a frozen graph.

    Parameters
    ----------
    forecaster:
        A :class:`~repro.core.encoder_decoder.SAGDFNEncoderDecoder` whose
        parameters are frozen for this kernel's lifetime.
    adjacency:
        The frozen slim ``(N, M)`` adjacency (or dense ``(N, N)`` support).
    index_set:
        Frozen significant-neighbour indices, ``None`` for dense supports.
    degree_scale:
        The ``(N, 1)`` degree normalisation ``(D + I)^{-1}``.
    backend:
        Execution backend (name, instance, or ``None`` for the
        ``REPRO_BACKEND``/default resolution) the in-place aggregation and
        gate kernels — and workspace allocation — dispatch through.
    """

    def __init__(
        self,
        forecaster,
        adjacency: np.ndarray,
        index_set: np.ndarray | None,
        degree_scale: np.ndarray,
        backend: str | OpsBackend | None = None,
    ) -> None:
        self.backend = get_backend(backend)
        self.horizon = forecaster.horizon
        self.output_dim = forecaster.output_dim
        self.hidden_dim = forecaster.hidden_dim
        # Quantile heads: the decoder projects prediction_dim columns per
        # step; only the feedback slice (the head closest to the median)
        # re-enters the recurrence.
        self.prediction_dim = getattr(forecaster, "prediction_dim", forecaster.output_dim)
        feedback_index = getattr(forecaster, "feedback_index", 0)
        self._feedback_start = feedback_index * self.output_dim
        self.encoder = [_CellWeights(cell) for cell in forecaster.encoder_cells]
        self.decoder = [_CellWeights(cell) for cell in forecaster.decoder_cells]
        self.hops = self.encoder[0].hops
        self.dtype = self.encoder[0].projection.dtype
        self.adjacency = np.ascontiguousarray(adjacency, dtype=self.dtype)
        self.num_nodes = self.adjacency.shape[0]
        self.index_set = None if index_set is None else np.asarray(index_set, dtype=np.int64)
        # (N, 1, 1): broadcasts over the node-major (N, B, C) states.
        self.degree_scale = np.ascontiguousarray(
            degree_scale, dtype=self.dtype
        ).reshape(self.num_nodes, 1, 1)
        self._workspaces: dict[int, _Workspace] = {}
        # Batch sizes exempt from LRU eviction (see pin_workspace): a
        # cluster worker pins its steady-state micro-batch size so ragged
        # loader tails can never evict the hot workspace.
        self._pinned: set[int] = set()
        # The workspace is mutated in place per request; one forward at a
        # time keeps concurrent ``ForecastService.predict`` callers correct
        # (the preallocation gain dwarfs an uncontended lock acquisition).
        self._lock = threading.Lock()

    def pin_workspace(self, batch: int) -> None:
        """Preallocate the workspace for ``batch`` and exempt it from eviction.

        Serving-cluster workers call this once per process with their
        batcher's ``max_batch``: the first steady-state request then pays no
        allocation, and the LRU (which only counts *unpinned* sizes against
        ``_MAX_WORKSPACES``) can never drop the hot buffer when ragged batch
        sizes churn the cache.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        with self._lock:
            if batch not in self._workspaces:
                self._workspaces[batch] = _Workspace(self, batch)
            self._pinned.add(batch)

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def _diffuse(self, states: np.ndarray, ws: _Workspace) -> None:
        """Fill ``states[1:]`` from ``states[0]`` (shape ``(hops, N, B, C)``).

        Mirrors ``FastGraphConv.diffusion_states``:
        ``s_j = (A · gather(s_{j-1}) + s_{j-1}) * scale``, with the
        aggregation flattened to one ``(N, M) @ (M, B·C)`` gemm.
        """
        hops = states.shape[0]
        for j in range(1, hops):
            previous = states[j - 1]
            current = states[j]
            if self.index_set is None:
                gathered = previous
            else:
                gathered = ws.gather[states.shape[-1]]
                np.take(previous, self.index_set, axis=0, out=gathered)
            self.backend.diffusion_aggregate_(
                self.adjacency, gathered, previous, self.degree_scale, current
            )

    def _diffuse_into_stack(self, stack: np.ndarray, hops: int, width: int,
                            ws: _Workspace) -> None:
        """Diffuse ``stack[..., :width]`` into the following hop blocks.

        ``stack`` is an x-stack ``(N, B, hops·width + 1)`` whose hop-0 block
        is already filled; hop blocks are strided views, so the aggregation
        gemm lands in a contiguous scratch first.
        """
        if hops == 1:
            return
        target = ws.x_scratch[width]
        for j in range(1, hops):
            previous = stack[..., (j - 1) * width : j * width]
            current = stack[..., j * width : (j + 1) * width]
            if self.index_set is None:
                gathered = ws.x_dense_gather[width]
                np.copyto(gathered, previous)
            else:
                gathered = ws.gather[width]
                np.take(previous, self.index_set, axis=0, out=gathered)
            self.backend.diffusion_aggregate_(
                self.adjacency, gathered, previous, self.degree_scale, current,
                gemm_out=target,
            )

    def _diffuse_batched(self, states: np.ndarray) -> None:
        """Diffusion over a whole sequence: states shaped ``(hops, T, N, B, C)``.

        The once-per-request encoder input precompute; allocates its gather
        temporary (amortised over all steps) and runs one gemm per history
        step per hop.
        """
        hops = states.shape[0]
        for j in range(1, hops):
            previous = states[j - 1]
            current = states[j]
            if self.index_set is None:
                gathered = previous
            else:
                gathered = np.take(previous, self.index_set, axis=1)
            self.backend.diffusion_aggregate_(
                self.adjacency, gathered, previous, self.degree_scale, current
            )

    @staticmethod
    def _project(states: np.ndarray, weights: list[np.ndarray], out: np.ndarray,
                 scratch: np.ndarray) -> None:
        """``out = Σ_j states[j] @ weights[j]`` with flat ``out=`` gemms."""
        rows = states.shape[1] * states.shape[2]
        width = out.shape[-1]
        np.matmul(states[0].reshape(rows, -1), weights[0], out=out.reshape(rows, width))
        flat_scratch = scratch.reshape(rows, width)
        for j in range(1, len(weights)):
            np.matmul(states[j].reshape(rows, -1), weights[j], out=flat_scratch)
            out += scratch

    def _step(
        self,
        cells: list[_CellWeights],
        ws: _Workspace,
        x: np.ndarray | None,
        x_stack: np.ndarray | None,
        prediction_out: np.ndarray | None,
    ) -> None:
        """One time step through the stacked cells, updating the hidden states.

        ``x_stack`` carries the hop-stacked input states with the trailing
        ones channel ``(N, B, hops·C + 1)`` for the first cell (encoder
        steps use the request precompute); when ``None`` they are diffused
        on the fly from ``x`` (decoder steps), and stacked layers always
        diffuse the hidden state of the layer below.  ``prediction_out`` is
        skipped when ``None`` (encoder steps discard predictions).
        """
        hidden_dim = self.hidden_dim
        scratch_2h = ws.scratch_2h
        scratch_h = ws.scratch_h
        current = x
        for layer, cell in enumerate(cells):
            h_states = ws.h_states[layer]
            hidden = h_states[0]
            # Input-side states (precomputed for the first encoder layer).
            if layer == 0 and x_stack is not None:
                layer_x = x_stack
            else:
                width = cell.input_dim
                layer_x = ws.x_stacks[width]
                layer_x[..., :width] = current
                self._diffuse_into_stack(layer_x, cell.hops, width, ws)
            rows = layer_x.shape[0] * layer_x.shape[1]
            # Hidden-side diffusion states, shared by both fused gates.
            self._diffuse(h_states, ws)
            gates = ws.gates
            self._project(h_states, cell.gate_h, gates, scratch_2h)
            np.matmul(layer_x.reshape(rows, -1), cell.gate_x,
                      out=scratch_2h.reshape(rows, 2 * hidden_dim))
            gates += scratch_2h
            self.backend.fused_gru_gates_(gates)
            reset = gates[..., :hidden_dim]
            # ``update`` is read three times below; one contiguous copy is
            # cheaper than three strided traversals of the gates view.
            np.copyto(ws.update, gates[..., hidden_dim:])
            update = ws.update
            # Candidate: diffusion states of the reset-scaled hidden state.
            r_states = ws.r_states
            np.multiply(reset, hidden, out=r_states[0])
            self._diffuse(r_states, ws)
            candidate = ws.candidate
            self._project(r_states, cell.cand_h, candidate, scratch_h)
            np.matmul(layer_x.reshape(rows, -1), cell.cand_x,
                      out=scratch_h.reshape(rows, hidden_dim))
            candidate += scratch_h
            # hidden = update * hidden + (1 - update) * tanh(candidate)
            self.backend.fused_gru_update_(hidden, update, candidate, scratch_h)
            current = hidden
        if prediction_out is not None:
            rows = self.num_nodes * current.shape[1]
            np.matmul(
                current.reshape(rows, hidden_dim),
                cells[-1].projection,
                out=prediction_out.reshape(rows, cells[-1].output_dim),
            )

    def _precompute_encoder_inputs(self, history: np.ndarray) -> np.ndarray:
        """Diffuse and hop-stack the input states of every encoder step.

        ``history`` arrives node-major ``(T, N, B, C)``; the ``J - 1``
        aggregation hops run as one batched BLAS call per hop over the whole
        history instead of ``T`` per-step ones.  Returns per-step x-stacks
        ``(T, N, B, hops·C + 1)`` (trailing ones channel for the folded
        biases) — memory stays at input scale, so the precompute never
        dominates the workspace even for large batches.
        """
        steps, n, batch, channels = history.shape
        states = self.backend.empty(
            (self.hops, steps, n, batch, channels), self.dtype
        )
        states[0] = history
        self._diffuse_batched(states)
        stacks = self.backend.empty(
            (steps, n, batch, self.hops * channels + 1), self.dtype
        )
        for j in range(self.hops):
            stacks[..., j * channels : (j + 1) * channels] = states[j]
        stacks[..., -1] = 1.0
        return stacks

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def __call__(self, history: np.ndarray) -> np.ndarray:
        """Forecast ``horizon`` steps from ``history`` of shape ``(B, h, N, C)``."""
        history = np.asarray(history, dtype=self.dtype)
        if history.ndim != 4:
            raise ValueError(
                f"history must be (batch, steps, nodes, channels), got {history.shape}"
            )
        batch, steps, num_nodes, channels = history.shape
        if num_nodes != self.num_nodes:
            raise ValueError(
                f"history has {num_nodes} nodes, frozen graph has {self.num_nodes}"
            )
        if channels != self.encoder[0].input_dim:
            raise ValueError(
                f"history has {channels} channels, encoder expects "
                f"{self.encoder[0].input_dim}"
            )
        with self._lock:
            ws = self._workspaces.get(batch)
            if ws is None:
                unpinned = [b for b in self._workspaces if b not in self._pinned]
                if len(unpinned) >= _MAX_WORKSPACES:
                    self._workspaces.pop(unpinned[0])
                ws = self._workspaces[batch] = _Workspace(self, batch)
            elif batch not in self._pinned:
                # LRU: re-insert so the oldest unpinned key stays first
                self._workspaces[batch] = self._workspaces.pop(batch)

            # Node-major view of the request: (T, N, B, C).
            history_nm = np.ascontiguousarray(history.transpose(1, 2, 0, 3))
            input_stacks = self._precompute_encoder_inputs(history_nm)
            for h_states in ws.h_states:
                h_states[0][...] = 0.0
            for t in range(steps):
                self._step(self.encoder, ws, None, input_stacks[t], None)

            np.copyto(ws.decoder_input, history_nm[-1, :, :, : self.output_dim])
            current_input: np.ndarray = ws.decoder_input
            feedback = slice(self._feedback_start, self._feedback_start + self.output_dim)
            for step in range(self.horizon):
                self._step(self.decoder, ws, current_input, None, ws.predictions[step])
                # Quantile heads feed only the median columns back (a view —
                # the x-stack fill copies from it anyway).
                current_input = ws.predictions[step][..., feedback]
            # Back to batch-major (B, horizon, N, output_dim); always a copy
            # so the caller never aliases the reused workspace
            # (ascontiguousarray would skip the copy for singleton
            # batch/output axes).
            return ws.predictions.transpose(2, 0, 1, 3).copy()
