"""Training loop implementing Algorithm 2 of the paper.

The trainer is deliberately model-agnostic: every forecaster in this
repository (SAGDFN and the neural baselines) exposes the same
``forward(history) -> predictions`` interface, so the exact same loop is used
for the comparison tables, which mirrors the "minimum modifications" protocol
of the paper's evaluation.

Conventions (inherited from DCRNN / Graph WaveNet and followed by the paper):

* inputs are z-score normalised, targets stay in original units;
* the loss is the *masked* MAE of Eq. 11, treating zero targets as missing;
* gradients are clipped to a maximum global norm of 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.loader import DataLoader
from repro.data.scalers import StandardScaler
from repro.nn.loss import masked_mae, masked_pinball
from repro.nn.module import Module
from repro.optim import Optimizer, clip_grad_norm
from repro.tensor import Tensor, no_grad
from repro.utils.logging import get_logger
from repro.utils.timer import Timer


@dataclass
class TrainingHistory:
    """Per-epoch record of the optimisation.

    ``lrs[i]`` is the learning rate the optimiser used *during* epoch ``i``
    (captured before any scheduler step for that epoch).
    """

    train_losses: list[float] = field(default_factory=list)
    val_maes: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)

    @property
    def best_val_mae(self) -> float:
        return min(self.val_maes) if self.val_maes else float("nan")

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)


class Trainer:
    """End-to-end trainer (Algorithm 2).

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` mapping a history tensor of
        shape ``(B, h, N, C)`` to predictions of shape ``(B, f, N, 1)`` in
        *normalised* units.  If the model has a ``refresh_graph`` method it is
        called before every iteration (SAGDFN's neighbour re-sampling).
    optimizer:
        Optimiser over ``model.parameters()``.
    scaler:
        The :class:`~repro.data.scalers.StandardScaler` fit on the training
        targets; predictions are inverse-transformed before the loss so that
        optimisation happens in original units.
    max_grad_norm:
        Global gradient-norm clip (the paper's code uses 5).
    null_value:
        Target value treated as missing by the masked loss (0 for traffic).
    quantiles:
        Quantile levels of a probabilistic head.  When set — or when the
        model's config declares ``quantiles`` — training optimises the
        masked pinball loss over all heads, and evaluation adds coverage /
        pinball / interval-width metrics (point metrics score the median
        head).  ``None`` keeps the point-forecast masked MAE.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        scaler: StandardScaler | None = None,
        max_grad_norm: float = 5.0,
        null_value: float | None = 0.0,
        log_every: int = 0,
        quantiles: tuple[float, ...] | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.scaler = scaler
        self.max_grad_norm = max_grad_norm
        self.null_value = null_value
        if quantiles is None:
            quantiles = getattr(getattr(model, "config", None), "quantiles", None)
        self.quantiles = None if quantiles is None else tuple(float(q) for q in quantiles)
        self.log_every = log_every
        self.logger = get_logger("repro.trainer")
        self.history = TrainingHistory()
        self._iteration = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _denormalise(self, predictions: Tensor) -> Tensor:
        if self.scaler is None:
            return predictions
        return predictions * self.scaler.std_ + self.scaler.mean_

    def _forward(self, batch_x: np.ndarray) -> Tensor:
        return self.model(Tensor(batch_x))

    # ------------------------------------------------------------------ #
    # Training / evaluation
    # ------------------------------------------------------------------ #
    def train_epoch(self, loader: DataLoader) -> float:
        """Run one epoch; returns the average training loss (masked MAE)."""
        self.model.train()
        losses = []
        for batch_x, batch_y in loader:
            if hasattr(self.model, "refresh_graph"):
                self.model.refresh_graph(self._iteration)
            self.model.zero_grad()
            predictions = self._denormalise(self._forward(batch_x))
            if self.quantiles is not None:
                loss = masked_pinball(
                    predictions, Tensor(batch_y), self.quantiles, null_value=self.null_value
                )
            else:
                loss = masked_mae(predictions, Tensor(batch_y), null_value=self.null_value)
            loss.backward()
            clip_grad_norm(self.model.parameters(), self.max_grad_norm)
            self.optimizer.step()
            losses.append(float(loss.data))
            self._iteration += 1
            if self.log_every and self._iteration % self.log_every == 0:
                self.logger.info("iteration %d loss %.4f", self._iteration, losses[-1])
        return float(np.mean(losses)) if losses else float("nan")

    def evaluate(self, loader: DataLoader) -> dict[str, float]:
        """Compute masked MAE / RMSE / MAPE over every batch of ``loader``.

        Metrics are accumulated batch-by-batch with
        :class:`~repro.evaluation.streaming.StreamingMetrics`, so evaluation
        memory stays bounded by one batch regardless of the dataset size.
        The model's train/eval mode is restored on exit, so evaluating a
        model that was already in eval mode does not silently re-enable
        dropout/batch-norm updates for subsequent callers.
        """
        from repro.evaluation.streaming import StreamingMetrics

        was_training = self.model.training
        self.model.eval()
        stream = StreamingMetrics(null_value=self.null_value, quantiles=self.quantiles)
        try:
            with no_grad():
                for batch_x, batch_y in loader:
                    output = self._denormalise(self._forward(batch_x))
                    stream.update(output.data, batch_y)
        finally:
            self.model.train(was_training)
        return stream.compute()

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader | None = None,
        epochs: int = 10,
        patience: int | None = None,
        callback: Callable[[int, float, dict[str, float] | None], None] | None = None,
        scheduler=None,
    ) -> TrainingHistory:
        """Optimise for up to ``epochs`` epochs with optional early stopping.

        ``scheduler`` optionally takes a learning-rate scheduler from
        :mod:`repro.optim.lr_scheduler`; it is stepped once per epoch after
        validation (:class:`~repro.optim.lr_scheduler.ReduceLROnPlateau`
        receives the epoch's validation MAE, and therefore requires a
        ``val_loader``).  Each epoch's effective learning rate is recorded
        in ``history.lrs``, and the scheduler's state survives a
        checkpoint/resume round trip via
        ``save_bundle(..., scheduler=scheduler)``.
        """
        from repro.optim import ReduceLROnPlateau

        if isinstance(scheduler, ReduceLROnPlateau) and val_loader is None:
            raise ValueError("ReduceLROnPlateau requires a val_loader to monitor")
        best_val = float("inf")
        best_state = None
        bad_epochs = 0
        for epoch in range(epochs):
            self.history.lrs.append(float(self.optimizer.lr))
            timer = Timer().start()
            train_loss = self.train_epoch(train_loader)
            elapsed = timer.stop()
            self.history.train_losses.append(train_loss)
            self.history.epoch_seconds.append(elapsed)

            val_metrics = None
            if val_loader is not None:
                val_metrics = self.evaluate(val_loader)
                self.history.val_maes.append(val_metrics["mae"])
                if val_metrics["mae"] < best_val - 1e-9:
                    best_val = val_metrics["mae"]
                    best_state = self.model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
            if scheduler is not None:
                if isinstance(scheduler, ReduceLROnPlateau):
                    scheduler.step(val_metrics["mae"])
                else:
                    scheduler.step()
            if callback is not None:
                callback(epoch, train_loss, val_metrics)
            if self.log_every:
                message = f"epoch {epoch} train {train_loss:.4f}"
                if val_metrics is not None:
                    message += f" val_mae {val_metrics['mae']:.4f}"
                self.logger.info(message)
            # Stop once the validation MAE has failed to improve for
            # ``patience`` consecutive epochs (``bad_epochs > 0`` keeps an
            # improving epoch from tripping the ``patience=0`` edge case).
            if (
                patience is not None
                and val_loader is not None
                and bad_epochs > 0
                and bad_epochs >= patience
            ):
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history
