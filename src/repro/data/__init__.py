"""Time-series data substrate.

Provides the containers, scalers, window datasets and batching loaders shared
by every model in the repository, plus synthetic stand-ins for the four
real-world datasets of the paper (METR-LA, London2000, NewYork2000,
CARPARK1918) under :mod:`repro.data.synthetic`.
"""

from repro.data.timeseries import MultivariateTimeSeries
from repro.data.scalers import MinMaxScaler, StandardScaler
from repro.data.windows import SlidingWindowDataset
from repro.data.loader import DataLoader
from repro.data.splits import chronological_split, SplitRatios

__all__ = [
    "MultivariateTimeSeries",
    "StandardScaler",
    "MinMaxScaler",
    "SlidingWindowDataset",
    "DataLoader",
    "chronological_split",
    "SplitRatios",
]
