"""Mini-batch loader over a :class:`~repro.data.windows.SlidingWindowDataset`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.windows import SlidingWindowDataset
from repro.utils.seed import spawn_rng


class DataLoader:
    """Iterate over ``(x, y)`` mini-batches.

    Batches are NumPy arrays shaped ``(batch, history, N, C)`` and
    ``(batch, horizon, N, 1)``; shuffling (training mode) re-permutes sample
    order every epoch with its own RNG so epochs are reproducible given the
    seed.
    """

    def __init__(
        self,
        dataset: SlidingWindowDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: int | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = spawn_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                break
            yield self.dataset.batch(indices)
