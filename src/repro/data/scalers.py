"""Feature scalers fit on the training split and applied everywhere.

Transformed arrays follow the engine's precision policy
(:func:`repro.tensor.get_default_dtype`): statistics are accumulated in
float64 for numerical robustness, but ``transform`` / ``inverse_transform``
emit policy-dtype arrays so a float32 model sees float32 inputs end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import get_default_dtype


class StandardScaler:
    """Z-score scaler ``(x - mean) / std`` fit on channel 0 of the training data.

    The traffic-forecasting convention (followed by the paper's code base) is
    to normalise only the target channel; time-of-day covariates are already
    in ``[0, 1)``.
    """

    def __init__(self) -> None:
        self.mean_: float | None = None
        self.std_: float | None = None
        # Streaming provenance: how many observations the statistics summarise
        # and their raw (unfloored) sum of squared deviations.  ``count_`` is
        # ``None`` for statistics of unknown provenance (a pre-v3 bundle), in
        # which case ``partial_fit`` refuses to continue the accumulation.
        self.count_: int | None = 0
        self._m2: float = 0.0

    @staticmethod
    def _observed(values: np.ndarray, sample_mask: np.ndarray | None) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if sample_mask is not None:
            sample_mask = np.asarray(sample_mask)
            if sample_mask.shape != values.shape:
                raise ValueError(
                    f"sample_mask shape {sample_mask.shape} must match values {values.shape}"
                )
            values = values[sample_mask != 0]
        return values

    def _refresh_moments(self) -> None:
        self.mean_ = float(self.mean_)
        std = float(np.sqrt(self._m2 / self.count_)) if self.count_ else 0.0
        self.std_ = std if std > 1e-12 else 1.0

    def fit(self, values: np.ndarray, sample_mask: np.ndarray | None = None) -> "StandardScaler":
        """Fit on ``values``, optionally restricted to observed entries.

        ``sample_mask`` (same shape as ``values``, nonzero = observed) keeps
        missing-data sentinels out of the statistics, so a sparsely observed
        series is normalised by the moments of what was actually measured.
        An all-missing mask falls back to ``mean 0 / std 1``.
        """
        values = self._observed(values, sample_mask)
        if values.size == 0:
            self.mean_, self.std_ = 0.0, 1.0
            self.count_, self._m2 = 0, 0.0
            return self
        self.mean_ = float(values.mean())
        self.count_ = int(values.size)
        self._m2 = float(np.square(values - self.mean_).sum())
        self._refresh_moments()
        return self

    def partial_fit(
        self, values: np.ndarray, sample_mask: np.ndarray | None = None
    ) -> "StandardScaler":
        """Fold a new batch into the running statistics (Welford/Chan update).

        Accumulates mean and variance in float64 via Chan's parallel-variance
        merge, so chunked ``partial_fit`` over a dataset reproduces a single
        ``fit`` to ~1e-15 relative.  ``sample_mask`` works as in :meth:`fit`;
        an all-missing batch is a no-op.  Statistics rehydrated from a pre-v3
        bundle carry no sample count, so they cannot be extended — that raises
        ``RuntimeError`` rather than silently mis-weighting the update.
        """
        if self.count_ is None:
            raise RuntimeError(
                "scaler statistics lack sample-count provenance (pre-v3 bundle); "
                "re-save the bundle to enable partial_fit"
            )
        values = self._observed(values, sample_mask)
        if values.size == 0:
            return self
        batch_count = int(values.size)
        batch_mean = float(values.mean())
        batch_m2 = float(np.square(values - batch_mean).sum())
        if self.count_ == 0:
            self.mean_, self.count_, self._m2 = batch_mean, batch_count, batch_m2
        else:
            total = self.count_ + batch_count
            delta = batch_mean - self.mean_
            self.mean_ = self.mean_ + delta * batch_count / total
            self._m2 += batch_m2 + delta * delta * self.count_ * batch_count / total
            self.count_ = total
        self._refresh_moments()
        return self

    def _check(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fit before use")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check()
        dtype = get_default_dtype()
        return (np.asarray(values, dtype=dtype) - dtype.type(self.mean_)) / dtype.type(self.std_)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check()
        dtype = get_default_dtype()
        return np.asarray(values, dtype=dtype) * dtype.type(self.std_) + dtype.type(self.mean_)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)


class MinMaxScaler:
    """Scale values into ``[0, 1]`` using the training minimum and maximum."""

    def __init__(self) -> None:
        self.min_: float | None = None
        self.max_: float | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        self.min_ = float(values.min())
        self.max_ = float(values.max())
        if self.max_ - self.min_ < 1e-12:
            self.max_ = self.min_ + 1.0
        return self

    def _check(self) -> None:
        if self.min_ is None or self.max_ is None:
            raise RuntimeError("scaler must be fit before use")

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check()
        dtype = get_default_dtype()
        scale = dtype.type(self.max_ - self.min_)
        return (np.asarray(values, dtype=dtype) - dtype.type(self.min_)) / scale

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        self._check()
        dtype = get_default_dtype()
        scale = dtype.type(self.max_ - self.min_)
        return np.asarray(values, dtype=dtype) * scale + dtype.type(self.min_)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
