"""Chronological train / validation / test splitting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.timeseries import MultivariateTimeSeries


@dataclass(frozen=True)
class SplitRatios:
    """Fractions of the series assigned to each split.

    The paper uses 70% / 10% / 20%, the convention shared by DCRNN, Graph
    WaveNet, GTS and STEP.
    """

    train: float = 0.7
    val: float = 0.1
    test: float = 0.2

    def __post_init__(self) -> None:
        total = self.train + self.val + self.test
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"split ratios must sum to 1, got {total}")
        if min(self.train, self.val, self.test) <= 0:
            raise ValueError("all split ratios must be positive")


def chronological_split(
    series: MultivariateTimeSeries, ratios: SplitRatios = SplitRatios()
) -> tuple[MultivariateTimeSeries, MultivariateTimeSeries, MultivariateTimeSeries]:
    """Split a series into contiguous train / val / test segments (no shuffling)."""
    total = series.num_steps
    train_end = int(round(total * ratios.train))
    val_end = train_end + int(round(total * ratios.val))
    train_end = max(1, min(train_end, total - 2))
    val_end = max(train_end + 1, min(val_end, total - 1))
    return (
        series.slice_steps(0, train_end),
        series.slice_steps(train_end, val_end),
        series.slice_steps(val_end, total),
    )
