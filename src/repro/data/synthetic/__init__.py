"""Synthetic stand-ins for the paper's four real-world datasets.

The real METR-LA, London2000, NewYork2000 and CARPARK1918 datasets cannot be
redistributed or downloaded offline, so this package provides procedural
generators that reproduce the statistical structure those datasets expose to
the models under study:

* a road network with local connectivity (``road_network``),
* traffic-speed series whose congestion propagates *along that network* with
  rush-hour seasonality and sensor noise (``traffic``), and
* car-park availability series with capacity ceilings and daily occupancy
  cycles (``carpark``).

Each named configuration (``metr_la_like``, ``london200_like``,
``london2000_like``, ``newyork2000_like``, ``carpark1918_like``) matches the
node count, sampling interval, and history/horizon lengths of the paper's
Table II, but defaults to a shorter time range so that experiments complete
on a CPU; the full-scale time range is a parameter.
"""

from repro.data.synthetic.road_network import RoadNetwork, generate_road_network
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.data.synthetic.carpark import CarparkConfig, generate_carpark_dataset
from repro.data.synthetic.registry import DATASET_REGISTRY, DatasetSpec, load_dataset

__all__ = [
    "RoadNetwork",
    "generate_road_network",
    "TrafficConfig",
    "generate_traffic_dataset",
    "CarparkConfig",
    "generate_carpark_dataset",
    "DatasetSpec",
    "DATASET_REGISTRY",
    "load_dataset",
]
