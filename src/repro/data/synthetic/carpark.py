"""Synthetic car-park availability generator (CARPARK1918 stand-in).

CARPARK1918 records the number of available parking lots at 1918 Singapore
car parks every five minutes.  The generator reproduces the structure the
forecasting models care about:

* a hard capacity ceiling per car park,
* opposite daily occupancy cycles for *business* and *residential* car parks
  (business lots fill during working hours, residential lots overnight),
* spatially correlated demand — car parks in the same neighbourhood share a
  latent demand factor that diffuses over a proximity graph,
* integer-valued counts with bounded noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic.road_network import RoadNetwork, generate_road_network
from repro.data.timeseries import MultivariateTimeSeries
from repro.graph import row_normalize
from repro.utils.seed import spawn_rng


@dataclass
class CarparkConfig:
    """Parameters of the synthetic car-park availability simulator."""

    num_nodes: int = 1918
    num_steps: int = 2016
    step_minutes: int = 5
    capacity_low: int = 80
    capacity_high: int = 900
    business_fraction: float = 0.45
    demand_depth: float = 0.55
    temporal_rho: float = 0.65
    spatial_rho: float = 0.3
    demand_scale: float = 0.2
    demand_innovation: float = 0.09
    noise_std: float = 4.0
    neighbours: int = 6
    seed: int = 0
    name: str = "synthetic-carpark"


def _occupancy_profile(minute_of_day: np.ndarray, day_of_week: np.ndarray,
                       is_business: np.ndarray) -> np.ndarray:
    """Base occupied fraction ``(T, N)`` driven by the daily cycle."""
    hours = minute_of_day / 60.0
    work = np.exp(-0.5 * ((hours - 13.0) / 3.5) ** 2)  # peaks early afternoon
    night = np.exp(-0.5 * ((np.minimum(hours, 24.0 - hours)) / 3.0) ** 2)  # peaks around midnight
    weekday = (day_of_week < 5).astype(np.float64)
    business_cycle = work * (0.3 + 0.7 * weekday)
    residential_cycle = night * (0.85 + 0.15 * (1.0 - weekday))
    profile = np.where(is_business[None, :], business_cycle[:, None], residential_cycle[:, None])
    return profile


def generate_carpark_dataset(
    config: CarparkConfig, network: RoadNetwork | None = None
) -> MultivariateTimeSeries:
    """Simulate a car-park availability dataset according to ``config``."""
    rng = spawn_rng(config.seed)
    if network is None:
        network = generate_road_network(
            config.num_nodes, neighbours=config.neighbours, seed=config.seed
        )
    if network.num_nodes != config.num_nodes:
        raise ValueError("road network size does not match config.num_nodes")

    n, t = config.num_nodes, config.num_steps
    capacities = rng.integers(config.capacity_low, config.capacity_high + 1, size=n).astype(float)
    is_business = rng.random(n) < config.business_fraction

    minutes = np.arange(t) * config.step_minutes
    minute_of_day = minutes % (24 * 60)
    day_of_week = (minutes // (24 * 60)) % 7
    base_profile = _occupancy_profile(minute_of_day, day_of_week, is_business)

    # Latent demand factor diffusing over the proximity graph, with graph-
    # smoothed innovations so nearby car parks receive correlated demand shocks.
    transition = row_normalize(network.adjacency)
    smoothing = 0.4 * np.eye(n) + 0.4 * transition + 0.2 * (transition @ transition)
    demand = np.zeros((t, n))
    current = smoothing @ rng.normal(scale=config.demand_innovation, size=n)
    innovations = rng.normal(scale=config.demand_innovation, size=(t, n)) @ smoothing.T
    for step in range(t):
        current = (
            config.temporal_rho * current
            + config.spatial_rho * (transition @ current)
            + innovations[step]
        )
        demand[step] = current
    demand = config.demand_scale * np.tanh(demand)

    base_occupancy = np.clip(rng.normal(0.35, 0.1, size=n), 0.05, 0.7)
    occupancy = base_occupancy[None, :] + config.demand_depth * base_profile + demand
    occupancy = np.clip(occupancy, 0.02, 0.98)

    available = capacities[None, :] * (1.0 - occupancy)
    available += rng.normal(scale=config.noise_std, size=(t, n))
    available = np.clip(np.round(available), 0.0, capacities[None, :])

    return MultivariateTimeSeries(
        values=available[:, :, None],
        step_minutes=config.step_minutes,
        start_minute=0,
        name=config.name,
        adjacency=network.adjacency,
    )
