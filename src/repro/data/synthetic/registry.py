"""Named dataset configurations mirroring Table II of the paper.

Each entry keeps the node count, sampling interval and forecasting setup of
the corresponding real dataset; the number of time steps defaults to a
CPU-friendly value but can be overridden up to the paper's full time range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.synthetic.carpark import CarparkConfig, generate_carpark_dataset
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.data.timeseries import MultivariateTimeSeries


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a named synthetic dataset.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"metr_la_like"``).
    kind:
        Either ``"traffic"`` or ``"carpark"``.
    num_nodes:
        Sensor count of the corresponding real dataset (Table II).
    step_minutes:
        Sampling interval.
    history / horizon:
        Input and output window lengths used by the paper's experiments.
    default_steps:
        Default simulated length (kept modest so CPU experiments finish).
    paper_steps:
        Approximate length of the real dataset, for users who want the full
        time range.
    """

    name: str
    kind: str
    num_nodes: int
    step_minutes: int
    history: int
    horizon: int
    default_steps: int
    paper_steps: int
    description: str


DATASET_REGISTRY: dict[str, DatasetSpec] = {
    "metr_la_like": DatasetSpec(
        name="metr_la_like",
        kind="traffic",
        num_nodes=207,
        step_minutes=5,
        history=12,
        horizon=12,
        default_steps=2016,
        paper_steps=34272,
        description="Traffic speed, 207 sensors, 5-minute interval (METR-LA stand-in)",
    ),
    "london200_like": DatasetSpec(
        name="london200_like",
        kind="traffic",
        num_nodes=200,
        step_minutes=60,
        history=12,
        horizon=12,
        default_steps=2184,
        paper_steps=2184,
        description="Traffic speed, 200-road-segment subset of London2000 (Table IV)",
    ),
    "london2000_like": DatasetSpec(
        name="london2000_like",
        kind="traffic",
        num_nodes=2000,
        step_minutes=60,
        history=12,
        horizon=12,
        default_steps=2184,
        paper_steps=2184,
        description="Traffic speed, 2000 road segments, hourly (London2000 stand-in)",
    ),
    "newyork2000_like": DatasetSpec(
        name="newyork2000_like",
        kind="traffic",
        num_nodes=2000,
        step_minutes=60,
        history=12,
        horizon=12,
        default_steps=2184,
        paper_steps=2184,
        description="Traffic speed, 2000 road segments, hourly (NewYork2000 stand-in)",
    ),
    "carpark1918_like": DatasetSpec(
        name="carpark1918_like",
        kind="carpark",
        num_nodes=1918,
        step_minutes=5,
        history=24,
        horizon=12,
        default_steps=2016,
        paper_steps=17568,
        description="Available parking lots, 1918 car parks, 5-minute interval (CARPARK1918 stand-in)",
    ),
}


def load_dataset(
    name: str,
    num_nodes: int | None = None,
    num_steps: int | None = None,
    seed: int = 0,
) -> tuple[MultivariateTimeSeries, DatasetSpec]:
    """Generate the named dataset and return it with its spec.

    ``num_nodes`` / ``num_steps`` override the spec (used by the scaled-down
    benchmark configurations and by the Table IV graph-size sweep).
    """
    if name not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}")
    spec = DATASET_REGISTRY[name]
    nodes = num_nodes if num_nodes is not None else spec.num_nodes
    steps = num_steps if num_steps is not None else spec.default_steps
    # Different named datasets get different seeds so London and New York stand-ins differ.
    # (sum of code points rather than hash(): Python string hashes are salted per process.)
    dataset_seed = seed + sum(ord(character) for character in name) % 1009
    if spec.kind == "traffic":
        config = TrafficConfig(
            num_nodes=nodes,
            num_steps=steps,
            step_minutes=spec.step_minutes,
            seed=dataset_seed,
            name=name,
        )
        series = generate_traffic_dataset(config)
    elif spec.kind == "carpark":
        config = CarparkConfig(
            num_nodes=nodes,
            num_steps=steps,
            step_minutes=spec.step_minutes,
            seed=dataset_seed,
            name=name,
        )
        series = generate_carpark_dataset(config)
    else:  # pragma: no cover - registry is static
        raise ValueError(f"unknown dataset kind {spec.kind!r}")
    if num_nodes is not None or num_steps is not None:
        spec = replace(spec, num_nodes=nodes, default_steps=steps)
    return series, spec
