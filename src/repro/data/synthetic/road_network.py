"""Procedural road-network generation.

The traffic simulators need a graph whose edges reflect *physical* proximity
of sensors: congestion propagates along it, which is exactly the kind of
sparse, local spatial correlation SAGDFN's Significant Neighbors Sampling is
designed to discover from data.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.graph import gaussian_kernel_adjacency, knn_adjacency
from repro.utils.seed import spawn_rng


@dataclass
class RoadNetwork:
    """A sensor network embedded in the unit square.

    Attributes
    ----------
    positions:
        ``(N, 2)`` sensor coordinates.
    distances:
        ``(N, N)`` Euclidean distance matrix.
    adjacency:
        Weighted ``(N, N)`` adjacency (thresholded Gaussian kernel over the
        k-nearest-neighbour graph), the analogue of the distance-based graph
        DCRNN builds for METR-LA.
    graph:
        The same connectivity as a :class:`networkx.Graph` for algorithms
        that want graph traversal (e.g. congestion propagation).
    """

    positions: np.ndarray
    distances: np.ndarray
    adjacency: np.ndarray
    graph: nx.Graph

    @property
    def num_nodes(self) -> int:
        return self.positions.shape[0]


def generate_road_network(
    num_nodes: int,
    neighbours: int = 6,
    seed: int | None = 0,
    clusters: int | None = None,
) -> RoadNetwork:
    """Generate a road network of ``num_nodes`` sensors.

    Sensors are placed around ``clusters`` cluster centres (defaults to
    ``max(4, num_nodes // 50)``) to imitate the corridor structure of real
    road networks, then connected to their ``neighbours`` nearest sensors.

    Parameters
    ----------
    num_nodes:
        Number of sensors.
    neighbours:
        k of the k-nearest-neighbour connectivity.
    seed:
        RNG seed; the same seed always yields the same network.
    clusters:
        Number of spatial clusters (road corridors).
    """
    if num_nodes < 2:
        raise ValueError("a road network needs at least two sensors")
    rng = spawn_rng(seed)
    if clusters is None:
        clusters = max(4, num_nodes // 50)
    clusters = min(clusters, num_nodes)
    centres = rng.random((clusters, 2))
    assignment = rng.integers(0, clusters, size=num_nodes)
    jitter = rng.normal(scale=0.06, size=(num_nodes, 2))
    positions = np.clip(centres[assignment] + jitter, 0.0, 1.0)

    deltas = positions[:, None, :] - positions[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=-1))

    k = min(neighbours, num_nodes - 1)
    knn = knn_adjacency(distances, k=k, symmetric=True)
    kernel = gaussian_kernel_adjacency(distances, threshold=0.0)
    adjacency = knn * kernel

    graph = nx.from_numpy_array(adjacency)
    return RoadNetwork(positions=positions, distances=distances, adjacency=adjacency, graph=graph)
