"""Synthetic traffic-speed generator (METR-LA / London2000 / NewYork2000 stand-ins).

The generator produces speed readings whose statistical structure matches
what spatial-temporal GNNs exploit in the real datasets:

* **Rush-hour seasonality** — two weekday congestion peaks (morning and
  evening) whose depth varies per sensor.
* **Spatially diffusing congestion** — a latent congestion field follows an
  AR(1) process *on the road network* (``c_t = ρ · P c_{t-1} + ε``), so
  neighbouring sensors are strongly correlated while distant ones are nearly
  independent.  This is precisely the sparse locality that the Significant
  Neighbors Sampling module is designed to discover.
* **Incidents** — occasional accidents start at a random sensor and spread to
  graph neighbours with decaying intensity before dissipating.
* **Sensor noise and missing readings** — i.i.d. noise plus a small fraction
  of zeroed readings, matching the missing-data convention (zero = missing)
  of METR-LA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic.road_network import RoadNetwork, generate_road_network
from repro.data.timeseries import MultivariateTimeSeries
from repro.graph import row_normalize
from repro.utils.seed import spawn_rng


@dataclass
class TrafficConfig:
    """Parameters of the synthetic traffic simulator."""

    num_nodes: int = 207
    num_steps: int = 2016
    step_minutes: int = 5
    free_flow_mean: float = 65.0
    free_flow_std: float = 6.0
    rush_hour_depth: float = 0.45
    temporal_rho: float = 0.65
    spatial_rho: float = 0.3
    congestion_scale: float = 0.4
    congestion_innovation: float = 0.09
    incident_rate: float = 0.01
    incident_depth: float = 0.5
    incident_duration: int = 18
    noise_std: float = 1.0
    missing_rate: float = 0.005
    neighbours: int = 6
    seed: int = 0
    name: str = "synthetic-traffic"


def _rush_hour_profile(minute_of_day: np.ndarray, day_of_week: np.ndarray) -> np.ndarray:
    """Fraction of free-flow speed lost to recurring congestion at each step."""
    hours = minute_of_day / 60.0
    morning = np.exp(-0.5 * ((hours - 8.0) / 1.2) ** 2)
    evening = np.exp(-0.5 * ((hours - 17.5) / 1.5) ** 2)
    weekday = (day_of_week < 5).astype(np.float64)
    weekend_factor = 0.35
    scale = weekday + (1.0 - weekday) * weekend_factor
    return (morning + evening) * scale


def generate_traffic_dataset(
    config: TrafficConfig, network: RoadNetwork | None = None
) -> MultivariateTimeSeries:
    """Simulate a traffic-speed dataset according to ``config``.

    Returns a :class:`~repro.data.timeseries.MultivariateTimeSeries` whose
    ``adjacency`` attribute holds the generating road-network adjacency
    (available to predefined-graph baselines only).
    """
    rng = spawn_rng(config.seed)
    if network is None:
        network = generate_road_network(
            config.num_nodes, neighbours=config.neighbours, seed=config.seed
        )
    if network.num_nodes != config.num_nodes:
        raise ValueError("road network size does not match config.num_nodes")

    n, t = config.num_nodes, config.num_steps
    transition = row_normalize(network.adjacency)

    free_flow = rng.normal(config.free_flow_mean, config.free_flow_std, size=n)
    free_flow = np.clip(free_flow, 20.0, None)
    rush_sensitivity = np.clip(rng.normal(1.0, 0.25, size=n), 0.2, 2.0)

    minutes = np.arange(t) * config.step_minutes
    minute_of_day = minutes % (24 * 60)
    day_of_week = (minutes // (24 * 60)) % 7
    rush = _rush_hour_profile(minute_of_day, day_of_week)

    # Latent congestion field diffusing over the road network.  Innovations are
    # smoothed over the graph so that neighbouring sensors receive correlated
    # shocks, and the field evolves with both temporal persistence and
    # neighbour coupling: congestion literally *travels* along the network.
    smoothing = 0.4 * np.eye(n) + 0.4 * transition + 0.2 * (transition @ transition)
    congestion = np.zeros((t, n))
    current = smoothing @ rng.normal(scale=config.congestion_innovation, size=n)
    innovations = rng.normal(scale=config.congestion_innovation, size=(t, n)) @ smoothing.T
    for step in range(t):
        current = (
            config.temporal_rho * current
            + config.spatial_rho * (transition @ current)
            + innovations[step]
        )
        congestion[step] = current
    congestion = config.congestion_scale * np.tanh(congestion)

    # Incidents: localised congestion spikes that spread to graph neighbours.
    incident_effect = np.zeros((t, n))
    expected_incidents = config.incident_rate * t
    num_incidents = rng.poisson(expected_incidents) if expected_incidents > 0 else 0
    neighbour_weights = row_normalize(network.adjacency)
    for _ in range(int(num_incidents)):
        start = int(rng.integers(0, max(1, t - config.incident_duration)))
        node = int(rng.integers(0, n))
        impact = np.zeros(n)
        impact[node] = config.incident_depth
        for offset in range(config.incident_duration):
            if start + offset >= t:
                break
            decay = 1.0 - offset / config.incident_duration
            incident_effect[start + offset] += impact * decay
            impact = 0.6 * impact + 0.4 * (neighbour_weights @ impact)

    reduction = (
        config.rush_hour_depth * rush[:, None] * rush_sensitivity[None, :]
        + congestion
        + incident_effect
    )
    reduction = np.clip(reduction, 0.0, 0.95)
    speeds = free_flow[None, :] * (1.0 - reduction)
    speeds += rng.normal(scale=config.noise_std, size=(t, n))
    speeds = np.clip(speeds, 0.0, None)

    if config.missing_rate > 0:
        missing = rng.random((t, n)) < config.missing_rate
        speeds = np.where(missing, 0.0, speeds)

    return MultivariateTimeSeries(
        values=speeds[:, :, None],
        step_minutes=config.step_minutes,
        start_minute=0,
        name=config.name,
        adjacency=network.adjacency,
    )
