"""The :class:`MultivariateTimeSeries` container (Definition 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MultivariateTimeSeries:
    """Observations of ``N`` instances over ``T`` steps with ``C`` channels.

    Attributes
    ----------
    values:
        Array of shape ``(T, N, C)``; channel 0 is the quantity being
        forecast (traffic speed, available parking lots, …).
    step_minutes:
        Sampling interval in minutes (5 for METR-LA/CARPARK1918, 60 for the
        London2000/NewYork2000 stand-ins).
    start_minute:
        Minute-of-week of the first observation; used to derive the
        time-of-day / day-of-week covariates mentioned in Definition 3.
    node_ids:
        Optional identifiers of the ``N`` instances.
    name:
        Human-readable dataset name.
    adjacency:
        Optional ground-truth ``(N, N)`` adjacency of the generating process;
        available for the synthetic datasets and consumed only by the
        predefined-graph baselines (DCRNN, STGCN) and the
        "w/o SNS & SSMA" ablation — never by SAGDFN itself.
    """

    values: np.ndarray
    step_minutes: int = 5
    start_minute: int = 0
    node_ids: list[str] = field(default_factory=list)
    name: str = "unnamed"
    adjacency: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim == 2:
            self.values = self.values[:, :, None]
        if self.values.ndim != 3:
            raise ValueError(f"values must have shape (T, N, C), got {self.values.shape}")
        if not self.node_ids:
            self.node_ids = [f"node_{i}" for i in range(self.num_nodes)]
        if len(self.node_ids) != self.num_nodes:
            raise ValueError("node_ids length must match the number of nodes")

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #
    @property
    def num_steps(self) -> int:
        return self.values.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.values.shape[1]

    @property
    def num_channels(self) -> int:
        return self.values.shape[2]

    def __len__(self) -> int:
        return self.num_steps

    # ------------------------------------------------------------------ #
    # Covariates
    # ------------------------------------------------------------------ #
    def minute_of_day(self) -> np.ndarray:
        """Minute-of-day (0–1439) of every time step."""
        minutes = self.start_minute + np.arange(self.num_steps) * self.step_minutes
        return minutes % (24 * 60)

    def day_of_week(self) -> np.ndarray:
        """Day-of-week index (0–6) of every time step."""
        minutes = self.start_minute + np.arange(self.num_steps) * self.step_minutes
        return (minutes // (24 * 60)) % 7

    def observation_mask(self, null_value: float | None = 0.0) -> np.ndarray:
        """``(T, N)`` float64 mask of observed target entries (1 = observed).

        ``null_value`` marks missing observations in channel 0 — the masked
        loss/metric convention of the traffic datasets, where a reading of 0
        means a sensor outage rather than an empty road.  ``NaN`` null values
        are matched with ``np.isnan``; ``None`` declares the series dense and
        returns all ones.
        """
        target = self.values[:, :, 0]
        if null_value is None:
            return np.ones(target.shape, dtype=np.float64)
        if np.isnan(null_value):
            return (~np.isnan(target)).astype(np.float64)
        return (target != null_value).astype(np.float64)

    def with_time_covariates(self, include_day_of_week: bool = False) -> "MultivariateTimeSeries":
        """Return a copy with time-of-day (and optionally day-of-week) channels appended.

        Time-of-day is encoded as a fraction of the day in ``[0, 1)`` and
        broadcast over all nodes, following the DCRNN/Graph WaveNet
        preprocessing the paper inherits.
        """
        time_of_day = (self.minute_of_day() / (24.0 * 60.0))[:, None, None]
        channels = [self.values, np.broadcast_to(time_of_day, (self.num_steps, self.num_nodes, 1))]
        if include_day_of_week:
            day = (self.day_of_week() / 7.0)[:, None, None]
            channels.append(np.broadcast_to(day, (self.num_steps, self.num_nodes, 1)))
        stacked = np.concatenate(channels, axis=2)
        return MultivariateTimeSeries(
            values=stacked,
            step_minutes=self.step_minutes,
            start_minute=self.start_minute,
            node_ids=list(self.node_ids),
            name=self.name,
            adjacency=None if self.adjacency is None else self.adjacency.copy(),
        )

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #
    def slice_steps(self, start: int, stop: int) -> "MultivariateTimeSeries":
        """Return the sub-series covering time steps ``[start, stop)``."""
        return MultivariateTimeSeries(
            values=self.values[start:stop].copy(),
            step_minutes=self.step_minutes,
            start_minute=self.start_minute + start * self.step_minutes,
            node_ids=list(self.node_ids),
            name=self.name,
            adjacency=None if self.adjacency is None else self.adjacency.copy(),
        )

    def select_nodes(self, indices: np.ndarray | list[int]) -> "MultivariateTimeSeries":
        """Return the sub-series restricted to the given node indices.

        Used by the Table IV experiment, which trains on growing subsets of
        the London2000 graph while always evaluating the same 200 sensors.
        """
        indices = np.asarray(indices, dtype=np.int64)
        adjacency = None
        if self.adjacency is not None:
            adjacency = self.adjacency[np.ix_(indices, indices)].copy()
        return MultivariateTimeSeries(
            values=self.values[:, indices, :].copy(),
            step_minutes=self.step_minutes,
            start_minute=self.start_minute,
            node_ids=[self.node_ids[i] for i in indices],
            name=self.name,
            adjacency=adjacency,
        )
