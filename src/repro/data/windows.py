"""Sliding-window forecasting dataset (Definition 3 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.data.timeseries import MultivariateTimeSeries


class SlidingWindowDataset:
    """Pairs of (history, future) windows extracted from a multivariate series.

    Each sample ``i`` is the pair

    * ``x`` of shape ``(history, N, C_in)`` — the ``h`` past observations
      including any covariate channels, and
    * ``y`` of shape ``(horizon, N, 1)`` — the next ``f`` values of the
      target channel (channel 0).

    Parameters
    ----------
    series:
        Source series (already scaled if desired).
    history / horizon:
        ``h`` and ``f`` of Definition 3; the paper uses 12/12 for the traffic
        datasets and 24/12 for CARPARK1918.
    target_series:
        Optional unscaled series supplying the targets so that training can
        run on normalised inputs while the loss is computed in original units
        (the convention of DCRNN and the paper).
    mask:
        Optional ``(T, N)`` observation mask (1 = observed) appended to every
        history window as the trailing input channel — the mask-as-channel
        scheme of mask-aware models (``SAGDFNConfig.mask_input``).  Targets
        are *not* masked here; the masked loss/metrics handle missing future
        values through their ``null_value`` convention.
    """

    def __init__(
        self,
        series: MultivariateTimeSeries,
        history: int,
        horizon: int,
        target_series: MultivariateTimeSeries | None = None,
        mask: np.ndarray | None = None,
    ):
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        if series.num_steps < history + horizon:
            raise ValueError(
                f"series of length {series.num_steps} is too short for "
                f"history={history} + horizon={horizon}"
            )
        if target_series is not None and target_series.num_steps != series.num_steps:
            raise ValueError("target_series must be aligned with series")
        if mask is not None:
            mask = np.asarray(mask)
            expected = (series.num_steps, series.num_nodes)
            if mask.shape != expected:
                raise ValueError(f"mask must have shape (T, N) = {expected}, got {mask.shape}")
            mask = mask.astype(series.values.dtype, copy=False)[:, :, None]
        self.series = series
        self.target_series = target_series if target_series is not None else series
        self.mask = mask
        self.history = history
        self.horizon = horizon

    def __len__(self) -> int:
        return self.series.num_steps - self.history - self.horizon + 1

    def __getitem__(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        if not 0 <= index < len(self):
            raise IndexError(f"sample index {index} out of range [0, {len(self)})")
        start = index
        mid = index + self.history
        end = mid + self.horizon
        x = self.series.values[start:mid]
        if self.mask is not None:
            x = np.concatenate([x, self.mask[start:mid]], axis=-1)
        y = self.target_series.values[mid:end, :, :1]
        return x, y

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather many samples at once with a single fancy-index per array.

        Equivalent to stacking ``self[i]`` for each ``i`` in ``indices`` but
        without the per-sample Python loop: the ``(B, history)`` and
        ``(B, horizon)`` step-index grids are built once and applied to the
        underlying ``(T, N, C)`` value arrays directly, returning
        ``x`` of shape ``(B, history, N, C)`` and ``y`` of ``(B, horizon, N, 1)``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(f"indices must be one-dimensional, got shape {indices.shape}")
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError(
                f"sample indices out of range [0, {len(self)}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        x_steps = indices[:, None] + np.arange(self.history)[None, :]
        y_steps = indices[:, None] + self.history + np.arange(self.horizon)[None, :]
        x = self.series.values[x_steps]
        if self.mask is not None:
            x = np.concatenate([x, self.mask[x_steps]], axis=-1)
        # Slice the target channel first (a view), so the fancy-index gather
        # copies only the one channel that ends up in ``y``.
        y = self.target_series.values[:, :, :1][y_steps]
        return x, y

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise every sample as two stacked arrays ``(num_samples, …)``."""
        return self.batch(np.arange(len(self)))
