"""Evaluation harness: per-horizon evaluation, memory/OOM model, cost profiling, result tables."""

from repro.evaluation.evaluator import (
    collect_predictions,
    evaluate_classical,
    evaluate_neural,
)
from repro.evaluation.memory import (
    DEFAULT_GPU_MEMORY_GB,
    MemoryEstimate,
    estimate_training_memory_gb,
    max_trainable_nodes,
    would_oom,
)
from repro.evaluation.cost import CostReport, measure_cost
from repro.evaluation.results import ResultTable
from repro.evaluation.streaming import StreamingMetrics

__all__ = [
    "evaluate_neural",
    "evaluate_classical",
    "collect_predictions",
    "StreamingMetrics",
    "estimate_training_memory_gb",
    "would_oom",
    "max_trainable_nodes",
    "MemoryEstimate",
    "DEFAULT_GPU_MEMORY_GB",
    "CostReport",
    "measure_cost",
    "ResultTable",
]
