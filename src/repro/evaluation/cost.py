"""Computation-cost profiling (Table X): parameter counts, training and inference time."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import DataLoader
from repro.nn.loss import masked_mae
from repro.nn.module import Module
from repro.optim import Adam, clip_grad_norm
from repro.tensor import Tensor, no_grad
from repro.utils.timer import Timer


@dataclass(frozen=True)
class CostReport:
    """Cost profile of one model (the columns of Table X)."""

    model: str
    num_parameters: int
    train_seconds_per_epoch: float
    inference_seconds: float


def measure_cost(
    name: str,
    model: Module,
    loader: DataLoader,
    max_batches: int | None = None,
    learning_rate: float = 1e-3,
) -> CostReport:
    """Measure parameters, one training pass and one inference pass of ``model``.

    ``max_batches`` limits the measurement to the first few batches (the cost
    per batch is extrapolated to the full epoch), keeping the Table X
    benchmark affordable on CPU.
    """
    parameters = model.num_parameters()
    optimizer = Adam(model.parameters(), lr=learning_rate)

    train_timer = Timer()
    measured_batches = 0
    model.train()
    for batch_index, (batch_x, batch_y) in enumerate(loader):
        if max_batches is not None and batch_index >= max_batches:
            break
        with train_timer:
            if hasattr(model, "refresh_graph"):
                model.refresh_graph(batch_index)
            model.zero_grad()
            predictions = model(Tensor(batch_x))
            loss = masked_mae(predictions, Tensor(batch_y), null_value=None)
            loss.backward()
            clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
        measured_batches += 1
    per_batch = train_timer.total / max(measured_batches, 1)
    train_seconds_per_epoch = per_batch * len(loader)

    inference_timer = Timer()
    model.eval()
    with no_grad():
        for batch_index, (batch_x, _) in enumerate(loader):
            if max_batches is not None and batch_index >= max_batches:
                break
            with inference_timer:
                model(Tensor(batch_x))
    model.train()
    inference_per_batch = inference_timer.total / max(measured_batches, 1)
    inference_seconds = inference_per_batch * len(loader)

    return CostReport(
        model=name,
        num_parameters=parameters,
        train_seconds_per_epoch=train_seconds_per_epoch,
        inference_seconds=inference_seconds,
    )
