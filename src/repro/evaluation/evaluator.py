"""Per-horizon evaluation of neural and classical forecasters."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClassicalForecaster
from repro.baselines.historical_average import HistoricalAverage
from repro.data.loader import DataLoader
from repro.data.scalers import StandardScaler
from repro.evaluation.streaming import StreamingMetrics
from repro.metrics import HorizonMetrics, horizon_metrics
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad


def iter_predictions(
    model: Module,
    loader: DataLoader,
    scaler: StandardScaler | None = None,
):
    """Yield ``(prediction, target)`` arrays per batch of ``loader``.

    Handles the shared evaluation plumbing once: eval mode (restored on
    exit), ``no_grad``, and inverse-transforming predictions into original
    units.  Both the streaming and the concatenating consumers build on it.
    """
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for batch_x, batch_y in loader:
                output = model(Tensor(batch_x)).data
                if scaler is not None:
                    output = scaler.inverse_transform(output)
                yield output, batch_y
    finally:
        model.train(was_training)


def collect_predictions(
    model: Module,
    loader: DataLoader,
    scaler: StandardScaler | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run ``model`` over every batch of ``loader`` and stack predictions/targets.

    Predictions are inverse-transformed with ``scaler`` so both arrays are in
    original units, shaped ``(samples, horizon, N, 1)``.  Memory is linear in
    the dataset — prefer :func:`evaluate_neural` (streaming) when only the
    metrics are needed.
    """
    predictions, targets = [], []
    for output, batch_y in iter_predictions(model, loader, scaler):
        predictions.append(output)
        targets.append(batch_y)
    return np.concatenate(predictions, axis=0), np.concatenate(targets, axis=0)


def evaluate_neural(
    model: Module,
    loader: DataLoader,
    scaler: StandardScaler | None = None,
    horizons: tuple[int, ...] = (3, 6, 12),
    null_value: float | None = 0.0,
    quantiles: tuple[float, ...] | None = None,
) -> list[HorizonMetrics]:
    """Per-horizon metrics of a trained neural forecaster on ``loader``.

    Metrics are accumulated batch-by-batch (streaming), so evaluation memory
    is bounded by one batch no matter how long the loader is.  For a
    quantile-head model pass its ``quantiles`` (or rely on the model config's
    declaration, picked up automatically); point metrics then score the
    median head.
    """
    if quantiles is None:
        quantiles = getattr(getattr(model, "config", None), "quantiles", None)
    stream = StreamingMetrics(null_value=null_value, quantiles=quantiles)
    for output, batch_y in iter_predictions(model, loader, scaler):
        stream.update(output, batch_y)
    return stream.horizon_metrics(horizons)


def evaluate_classical(
    model: ClassicalForecaster,
    test_values: np.ndarray,
    history: int,
    horizon: int,
    horizons: tuple[int, ...] = (3, 6, 12),
    null_value: float | None = 0.0,
    stride: int = 1,
    global_step_offset: int = 0,
) -> list[HorizonMetrics]:
    """Slide a fitted classical forecaster over the test series and score it.

    ``test_values`` has shape ``(T, N)``; windows are advanced by ``stride``
    steps (``stride > 1`` keeps the classical baselines cheap on long series).
    """
    test_values = np.asarray(test_values, dtype=np.float64)
    steps = test_values.shape[0]
    predictions, targets = [], []
    for start in range(0, steps - history - horizon + 1, stride):
        window = test_values[start : start + history]
        target = test_values[start + history : start + history + horizon]
        if isinstance(model, HistoricalAverage):
            forecast = model.predict(window, start_step=global_step_offset + start + history)
        else:
            forecast = model.predict(window)
        predictions.append(forecast)
        targets.append(target)
    prediction = np.stack(predictions)[..., None]
    target = np.stack(targets)[..., None]
    return horizon_metrics(prediction, target, horizons=horizons, null_value=null_value)
