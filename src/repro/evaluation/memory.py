"""Analytic training-memory model reproducing the OOM behaviour of Tables IV–VII.

The paper's large-dataset experiments ran on a 32 GB V100; eight of the
baselines cannot fit the 1918/2000-node datasets even at batch size 32 and
are reported as ``×`` (OOM), while AGCRN / GTS / D2STGNN can only be trained
on 1750 / 1000 / 200-node sub-graphs at batch size 64 (Table IV).  Since this
reproduction runs on CPU, those memory limits are reproduced *analytically*:
every model's training footprint is decomposed into

* ``activation`` floats   — ``a · B · T · N · D``   (recurrent/conv states
  kept for back-propagation),
* ``pairwise`` floats     — ``p · N²``               (batch-independent
  pair-wise buffers: learned adjacencies, node-pair features and their
  gradients/optimiser states),
* ``dynamic`` floats      — ``q · B · T · N²``       (per-sample, per-step
  attention or dynamic-graph buffers),
* ``slim`` floats         — ``s · N · M``            (SAGDFN's slim
  adjacency and embedding buffers),

each float costing 12 bytes (value + gradient + Adam state).  The
coefficients below are *calibrated* so that the model reproduces exactly the
feasibility boundaries reported in the paper — AGCRN ≈ 1750 nodes at batch
64, GTS ≈ 1000, D2STGNN ≈ 200, and the OOM pattern of Tables V–VII at batch
32 — while keeping every term physically interpretable.  The calibration is
recorded in DESIGN.md as one of the paper → repo substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_GPU_MEMORY_GB = 32.0
BYTES_PER_TRAINED_FLOAT = 12  # value + gradient + Adam moment
GIGABYTE = 1024**3


@dataclass(frozen=True)
class MemoryCoefficients:
    """Per-model effective float counts of each memory component."""

    activation: float = 6.0
    pairwise: float = 0.0
    dynamic: float = 0.0
    slim: float = 0.0


#: Calibrated coefficients (see module docstring).
MEMORY_COEFFICIENTS: dict[str, MemoryCoefficients] = {
    # Classical / univariate / non-GNN models: activations only.
    "HA": MemoryCoefficients(activation=0.0),
    "ARIMA": MemoryCoefficients(activation=0.0),
    "VAR": MemoryCoefficients(activation=0.0),
    "SVR": MemoryCoefficients(activation=0.0),
    "LSTM": MemoryCoefficients(activation=6.0),
    "GRU": MemoryCoefficients(activation=6.0),
    "TimesNet": MemoryCoefficients(activation=6.0),
    "FEDformer": MemoryCoefficients(activation=5.0),
    "ETSformer": MemoryCoefficients(activation=5.0),
    # Scalable graph models (linear in N): run on the 2000-node datasets.
    "DCRNN": MemoryCoefficients(activation=20.0, pairwise=2.0),
    "GraphWaveNet": MemoryCoefficients(activation=10.0, pairwise=20.0),
    "MTGNN": MemoryCoefficients(activation=8.0, pairwise=20.0),
    "SAGDFN": MemoryCoefficients(activation=4.0, pairwise=0.0, slim=120.0),
    # Quadratic-memory models: OOM on the large datasets.
    "STGCN": MemoryCoefficients(activation=10.0, dynamic=6.0),
    "GMAN": MemoryCoefficients(activation=8.0, dynamic=10.0),
    "ASTGCN": MemoryCoefficients(activation=8.0, dynamic=8.0),
    "STSGCN": MemoryCoefficients(activation=8.0, dynamic=12.0),
    "AGCRN": MemoryCoefficients(activation=4.0, pairwise=800.0),
    "GTS": MemoryCoefficients(activation=8.0, pairwise=2400.0),
    "STEP": MemoryCoefficients(activation=10.0, pairwise=3600.0),
    "D2STGNN": MemoryCoefficients(activation=8.0, dynamic=90.0),
}


@dataclass(frozen=True)
class MemoryEstimate:
    """Breakdown of one model's estimated training footprint."""

    model: str
    activation_gb: float
    pairwise_gb: float
    dynamic_gb: float
    slim_gb: float

    @property
    def total_gb(self) -> float:
        return self.activation_gb + self.pairwise_gb + self.dynamic_gb + self.slim_gb


def estimate_training_memory_gb(
    model: str,
    num_nodes: int,
    batch_size: int = 32,
    history: int = 12,
    hidden_dim: int = 64,
    num_significant: int = 100,
) -> MemoryEstimate:
    """Estimated training memory of ``model`` on a graph of ``num_nodes`` nodes."""
    if model not in MEMORY_COEFFICIENTS:
        raise KeyError(f"unknown model {model!r}; available: {sorted(MEMORY_COEFFICIENTS)}")
    if num_nodes < 1 or batch_size < 1 or history < 1 or hidden_dim < 1:
        raise ValueError("num_nodes, batch_size, history and hidden_dim must be positive")
    coefficients = MEMORY_COEFFICIENTS[model]
    to_gb = BYTES_PER_TRAINED_FLOAT / GIGABYTE
    activation = coefficients.activation * batch_size * history * num_nodes * hidden_dim * to_gb
    pairwise = coefficients.pairwise * num_nodes * num_nodes * to_gb
    dynamic = coefficients.dynamic * batch_size * history * num_nodes * num_nodes * to_gb
    slim = coefficients.slim * num_nodes * num_significant * to_gb
    return MemoryEstimate(model, activation, pairwise, dynamic, slim)


def would_oom(
    model: str,
    num_nodes: int,
    batch_size: int = 32,
    history: int = 12,
    hidden_dim: int = 64,
    budget_gb: float = DEFAULT_GPU_MEMORY_GB,
) -> bool:
    """Whether ``model`` exceeds ``budget_gb`` of GPU memory for this setting."""
    estimate = estimate_training_memory_gb(model, num_nodes, batch_size, history, hidden_dim)
    return estimate.total_gb > budget_gb


def max_trainable_nodes(
    model: str,
    batch_size: int = 64,
    history: int = 12,
    hidden_dim: int = 64,
    budget_gb: float = DEFAULT_GPU_MEMORY_GB,
    upper: int = 100_000,
) -> int:
    """Largest graph the model can be trained on within ``budget_gb`` (binary search).

    Reproduces the "# nodes in training set" column of Table IV: at batch
    size 64 this returns roughly 1750 for AGCRN, 1000 for GTS and 200 for
    D2STGNN, while the linear-memory models can handle far more than the
    2000-node datasets used in the paper.
    """
    low, high = 1, upper
    if would_oom(model, 1, batch_size, history, hidden_dim, budget_gb):
        return 0
    if not would_oom(model, upper, batch_size, history, hidden_dim, budget_gb):
        return upper
    while low < high:
        middle = (low + high + 1) // 2
        if would_oom(model, middle, batch_size, history, hidden_dim, budget_gb):
            high = middle - 1
        else:
            low = middle
    return low
