"""Result-table formatting shared by the experiment drivers and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics import HorizonMetrics


@dataclass
class ResultTable:
    """A table of per-model, per-horizon metrics in the layout of Tables III–IX."""

    title: str
    horizons: tuple[int, ...] = (3, 6, 12)
    rows: dict[str, list[HorizonMetrics] | None] = field(default_factory=dict)

    def add(self, model: str, metrics: list[HorizonMetrics] | None) -> None:
        """Add one model's metrics; ``None`` marks an OOM entry (``×``)."""
        self.rows[model] = metrics

    def oom_models(self) -> list[str]:
        """Models recorded as out-of-memory."""
        return [model for model, metrics in self.rows.items() if metrics is None]

    def best_model(self, horizon: int, metric: str = "mae") -> str:
        """Model with the lowest value of ``metric`` at ``horizon``."""
        best_name, best_value = None, float("inf")
        for model, metrics in self.rows.items():
            if metrics is None:
                continue
            for entry in metrics:
                if entry.horizon == horizon and getattr(entry, metric) < best_value:
                    best_name, best_value = model, getattr(entry, metric)
        if best_name is None:
            raise ValueError(f"no metrics recorded for horizon {horizon}")
        return best_name

    def get(self, model: str, horizon: int) -> HorizonMetrics | None:
        """Metrics of ``model`` at ``horizon`` (``None`` if OOM)."""
        metrics = self.rows.get(model)
        if metrics is None:
            return None
        for entry in metrics:
            if entry.horizon == horizon:
                return entry
        raise KeyError(f"horizon {horizon} not recorded for {model}")

    def to_text(self) -> str:
        """Render the table in the layout of the paper (one row per model)."""
        header_cells = ["model".ljust(14)]
        for horizon in self.horizons:
            header_cells.append(f"H{horizon} MAE".rjust(9))
            header_cells.append(f"H{horizon} RMSE".rjust(10))
            header_cells.append(f"H{horizon} MAPE".rjust(10))
        lines = [self.title, " ".join(header_cells)]
        for model, metrics in self.rows.items():
            cells = [model.ljust(14)]
            if metrics is None:
                cells.extend(["×".rjust(9), "×".rjust(10), "×".rjust(10)] * len(self.horizons))
            else:
                by_horizon = {entry.horizon: entry for entry in metrics}
                for horizon in self.horizons:
                    entry = by_horizon[horizon]
                    cells.append(f"{entry.mae:9.3f}")
                    cells.append(f"{entry.rmse:10.3f}")
                    cells.append(f"{entry.mape * 100:9.1f}%")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
