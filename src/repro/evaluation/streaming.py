"""Streaming (memory-bounded) masked-metric accumulation.

The seed evaluation path concatenated every prediction of a loader into one
``(samples, f, N, 1)`` array before computing MAE / RMSE / MAPE — fine at
test-suite scale, linear-in-dataset memory at serving scale.  The masked
metrics are all ratios of per-entry sums, so they can be accumulated batch
by batch instead:

.. math::

    \\text{MAE} = \\frac{\\sum_b \\sum_{i \\in \\text{valid}(b)} |p_i - t_i|}
                       {\\sum_b |\\text{valid}(b)|}

:class:`StreamingMetrics` keeps those sums **per forecast step** (in
float64, regardless of the engine precision policy), which makes both the
overall metrics and the paper's per-horizon tables available from a single
pass with ``O(f)`` state.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import HorizonMetrics


class StreamingMetrics:
    """Accumulate masked MAE / RMSE / MAPE sums over ``(B, f, N, …)`` batches.

    Parameters
    ----------
    null_value:
        Target value treated as missing (``None`` disables masking, ``nan``
        masks NaNs) — the same convention as :mod:`repro.metrics`.
    epsilon:
        Floor applied to ``|target|`` in the MAPE denominator.
    quantiles:
        Quantile levels of a probabilistic head, matching the trailing axis
        of every ``prediction`` passed to :meth:`update` (the target keeps a
        single trailing channel).  Point metrics are scored on the head
        closest to the median; additionally a per-quantile **coverage**
        accumulator (``P(target ≤ prediction_q)``), the mean **pinball**
        loss and the mean outer **interval width**
        (``prediction_{q_max} − prediction_{q_min}``) are tracked.  ``None``
        keeps the point-forecast contract (prediction and target shapes must
        match exactly).
    """

    def __init__(self, null_value: float | None = 0.0, epsilon: float = 1e-5,
                 quantiles: tuple[float, ...] | None = None):
        self.null_value = null_value
        self.epsilon = epsilon
        self.quantiles = None if quantiles is None else tuple(float(q) for q in quantiles)
        if self.quantiles is not None and not self.quantiles:
            raise ValueError("quantiles must be non-empty (or None for point metrics)")
        self._median_index = (
            0
            if not self.quantiles
            else int(np.argmin(np.abs(np.asarray(self.quantiles) - 0.5)))
        )
        self._abs_sum: np.ndarray | None = None  # (f,) Σ |p - t| over valid entries
        self._sq_sum: np.ndarray | None = None  # (f,) Σ (p - t)²
        self._ape_sum: np.ndarray | None = None  # (f,) Σ |p - t| / max(|t|, ε)
        self._count: np.ndarray | None = None  # (f,) number of valid entries
        self._coverage_sum: np.ndarray | None = None  # (Q, f) Σ 1[t ≤ p_q]
        self._pinball_sum: np.ndarray | None = None  # (f,) Σ_q pinball_q / Q
        self._width_sum: np.ndarray | None = None  # (f,) Σ (p_qmax - p_qmin)
        self.num_batches = 0
        self.num_samples = 0

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def _mask(self, target: np.ndarray) -> np.ndarray:
        if self.null_value is None:
            return np.ones_like(target, dtype=bool)
        if np.isnan(self.null_value):
            return ~np.isnan(target)
        return ~np.isclose(target, self.null_value)

    def update(self, prediction: np.ndarray, target: np.ndarray) -> None:
        """Fold one batch of shape ``(B, f, …)`` into the running sums.

        With ``quantiles`` configured, ``prediction`` carries one channel
        per quantile in its trailing axis and ``target`` a single trailing
        channel; point metrics score the median head, and the coverage /
        pinball / interval-width sums are accumulated alongside.  Empty
        batches (``B == 0``) are accepted and contribute nothing.
        """
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        full_prediction = None
        if self.quantiles is not None:
            expected = target.shape[:-1] + (len(self.quantiles),)
            if target.shape[-1:] != (1,) or prediction.shape != expected:
                raise ValueError(
                    f"quantile predictions must be shaped {expected} against a "
                    f"single-channel target, got {prediction.shape} vs {target.shape}"
                )
            full_prediction = prediction
            prediction = prediction[..., self._median_index : self._median_index + 1]
        if prediction.shape != target.shape:
            raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
        if prediction.ndim < 2:
            raise ValueError(
                f"expected batched forecasts (B, f, ...), got shape {prediction.shape}"
            )
        steps = prediction.shape[1]
        if self._count is None:
            self._abs_sum = np.zeros(steps)
            self._sq_sum = np.zeros(steps)
            self._ape_sum = np.zeros(steps)
            self._count = np.zeros(steps)
            if self.quantiles is not None:
                self._coverage_sum = np.zeros((len(self.quantiles), steps))
                self._pinball_sum = np.zeros(steps)
                self._width_sum = np.zeros(steps)
        elif steps != self._count.shape[0]:
            raise ValueError(
                f"forecast length changed mid-stream: {steps} vs {self._count.shape[0]}"
            )

        mask = self._mask(target)
        cleaned = np.nan_to_num(target, nan=0.0)
        diff = np.abs(prediction - cleaned) * mask
        reduce_axes = (0,) + tuple(range(2, prediction.ndim))
        self._abs_sum += diff.sum(axis=reduce_axes)
        self._sq_sum += (diff * diff).sum(axis=reduce_axes)
        denominator = np.maximum(np.abs(cleaned), self.epsilon)
        self._ape_sum += (diff / denominator).sum(axis=reduce_axes)
        self._count += mask.sum(axis=reduce_axes)
        if self.quantiles is not None:
            levels = np.asarray(self.quantiles)
            covered = (cleaned <= full_prediction) & mask
            # Keep the step axis (1) and the trailing quantile axis; reduce
            # the rest, then move quantiles first: (Q, f).
            cov_axes = (0,) + tuple(range(2, covered.ndim - 1))
            self._coverage_sum += np.moveaxis(covered.sum(axis=cov_axes), -1, 0)
            residual = cleaned - full_prediction
            per_entry = np.where(residual >= 0.0, levels * residual, (levels - 1.0) * residual)
            # ``reduce_axes`` covers every axis but the step axis — including
            # the trailing quantile axis — so this also averages over Q.
            self._pinball_sum += (per_entry * mask).sum(axis=reduce_axes) / len(self.quantiles)
            width = (full_prediction[..., -1:] - full_prediction[..., :1]) * mask
            self._width_sum += width.sum(axis=reduce_axes)
        self.num_batches += 1
        self.num_samples += prediction.shape[0]

    def merge(self, other: "StreamingMetrics") -> "StreamingMetrics":
        """Fold another accumulator's sums into this one, in place.

        The per-step sums are associative, so metrics accumulated
        independently (one :class:`StreamingMetrics` per online session, per
        worker, per shard) merge into exactly what a single accumulator over
        the union of batches would hold.  Both sides must share the masking
        convention and quantile levels; an empty ``other`` is a no-op and
        merging into an empty ``self`` adopts ``other``'s sums.
        """
        if not isinstance(other, StreamingMetrics):
            raise TypeError(f"cannot merge {type(other).__name__} into StreamingMetrics")
        same_null = (
            self.null_value is other.null_value
            or (
                self.null_value is not None
                and other.null_value is not None
                and (
                    (np.isnan(self.null_value) and np.isnan(other.null_value))
                    or self.null_value == other.null_value
                )
            )
        )
        if not same_null or self.quantiles != other.quantiles:
            raise ValueError(
                "cannot merge StreamingMetrics with different masking or quantiles"
            )
        if other._count is None:
            return self
        if self._count is None:
            self._abs_sum = other._abs_sum.copy()
            self._sq_sum = other._sq_sum.copy()
            self._ape_sum = other._ape_sum.copy()
            self._count = other._count.copy()
            if self.quantiles is not None:
                self._coverage_sum = other._coverage_sum.copy()
                self._pinball_sum = other._pinball_sum.copy()
                self._width_sum = other._width_sum.copy()
        else:
            if self._count.shape != other._count.shape:
                raise ValueError(
                    f"forecast lengths differ: {self._count.shape[0]} vs "
                    f"{other._count.shape[0]}"
                )
            self._abs_sum += other._abs_sum
            self._sq_sum += other._sq_sum
            self._ape_sum += other._ape_sum
            self._count += other._count
            if self.quantiles is not None:
                self._coverage_sum += other._coverage_sum
                self._pinball_sum += other._pinball_sum
                self._width_sum += other._width_sum
        self.num_batches += other.num_batches
        self.num_samples += other.num_samples
        return self

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _ratios(self, numerator: np.ndarray, count: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(count > 0, numerator / np.maximum(count, 1.0), np.nan)

    @staticmethod
    def _coverage_key(level: float) -> str:
        return f"coverage@{level:g}"

    def compute(self) -> dict[str, float]:
        """Overall masked metrics over everything seen so far.

        Quantile mode adds ``pinball``, ``interval_width`` and one
        ``coverage@<q>`` entry per level.  With no valid entries accumulated
        (nothing seen yet, all-masked windows, or only empty batches) every
        metric is an explicit NaN — never a divide-by-zero artefact.
        """
        no_data = self._count is None or self._count.sum() <= 0
        if no_data:
            result = {"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")}
        else:
            total = float(self._count.sum())
            result = {
                "mae": float(self._abs_sum.sum() / total),
                "rmse": float(np.sqrt(self._sq_sum.sum() / total)),
                "mape": float(self._ape_sum.sum() / total),
            }
        if self.quantiles is not None:
            if no_data:
                result["pinball"] = float("nan")
                result["interval_width"] = float("nan")
                for level in self.quantiles:
                    result[self._coverage_key(level)] = float("nan")
            else:
                result["pinball"] = float(self._pinball_sum.sum() / total)
                result["interval_width"] = float(self._width_sum.sum() / total)
                coverage = self._coverage_sum.sum(axis=1) / total
                for level, value in zip(self.quantiles, coverage):
                    result[self._coverage_key(level)] = float(value)
        return result

    def horizon_metrics(self, horizons: tuple[int, ...] = (3, 6, 12)) -> list[HorizonMetrics]:
        """Per-horizon metrics (1-based forecast steps), as in the paper's tables."""
        if self._count is None:
            raise RuntimeError("no batches accumulated yet")
        max_horizon = self._count.shape[0]
        mae = self._ratios(self._abs_sum, self._count)
        rmse = np.sqrt(self._ratios(self._sq_sum, self._count))
        mape = self._ratios(self._ape_sum, self._count)
        results = []
        for horizon in horizons:
            if horizon < 1 or horizon > max_horizon:
                raise ValueError(
                    f"horizon {horizon} outside the forecast range 1..{max_horizon}"
                )
            step = horizon - 1
            results.append(
                HorizonMetrics(
                    horizon=horizon,
                    mae=float(mae[step]),
                    rmse=float(rmse[step]),
                    mape=float(mape[step]),
                )
            )
        return results
