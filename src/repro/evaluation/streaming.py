"""Streaming (memory-bounded) masked-metric accumulation.

The seed evaluation path concatenated every prediction of a loader into one
``(samples, f, N, 1)`` array before computing MAE / RMSE / MAPE — fine at
test-suite scale, linear-in-dataset memory at serving scale.  The masked
metrics are all ratios of per-entry sums, so they can be accumulated batch
by batch instead:

.. math::

    \\text{MAE} = \\frac{\\sum_b \\sum_{i \\in \\text{valid}(b)} |p_i - t_i|}
                       {\\sum_b |\\text{valid}(b)|}

:class:`StreamingMetrics` keeps those sums **per forecast step** (in
float64, regardless of the engine precision policy), which makes both the
overall metrics and the paper's per-horizon tables available from a single
pass with ``O(f)`` state.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import HorizonMetrics


class StreamingMetrics:
    """Accumulate masked MAE / RMSE / MAPE sums over ``(B, f, N, …)`` batches.

    Parameters
    ----------
    null_value:
        Target value treated as missing (``None`` disables masking, ``nan``
        masks NaNs) — the same convention as :mod:`repro.metrics`.
    epsilon:
        Floor applied to ``|target|`` in the MAPE denominator.
    """

    def __init__(self, null_value: float | None = 0.0, epsilon: float = 1e-5):
        self.null_value = null_value
        self.epsilon = epsilon
        self._abs_sum: np.ndarray | None = None  # (f,) Σ |p - t| over valid entries
        self._sq_sum: np.ndarray | None = None  # (f,) Σ (p - t)²
        self._ape_sum: np.ndarray | None = None  # (f,) Σ |p - t| / max(|t|, ε)
        self._count: np.ndarray | None = None  # (f,) number of valid entries
        self.num_batches = 0
        self.num_samples = 0

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def _mask(self, target: np.ndarray) -> np.ndarray:
        if self.null_value is None:
            return np.ones_like(target, dtype=bool)
        if np.isnan(self.null_value):
            return ~np.isnan(target)
        return ~np.isclose(target, self.null_value)

    def update(self, prediction: np.ndarray, target: np.ndarray) -> None:
        """Fold one batch of shape ``(B, f, …)`` into the running sums."""
        prediction = np.asarray(prediction, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if prediction.shape != target.shape:
            raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
        if prediction.ndim < 2:
            raise ValueError(
                f"expected batched forecasts (B, f, ...), got shape {prediction.shape}"
            )
        steps = prediction.shape[1]
        if self._count is None:
            self._abs_sum = np.zeros(steps)
            self._sq_sum = np.zeros(steps)
            self._ape_sum = np.zeros(steps)
            self._count = np.zeros(steps)
        elif steps != self._count.shape[0]:
            raise ValueError(
                f"forecast length changed mid-stream: {steps} vs {self._count.shape[0]}"
            )

        mask = self._mask(target)
        cleaned = np.nan_to_num(target, nan=0.0)
        diff = np.abs(prediction - cleaned) * mask
        reduce_axes = (0,) + tuple(range(2, prediction.ndim))
        self._abs_sum += diff.sum(axis=reduce_axes)
        self._sq_sum += (diff * diff).sum(axis=reduce_axes)
        denominator = np.maximum(np.abs(cleaned), self.epsilon)
        self._ape_sum += (diff / denominator).sum(axis=reduce_axes)
        self._count += mask.sum(axis=reduce_axes)
        self.num_batches += 1
        self.num_samples += prediction.shape[0]

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _ratios(self, numerator: np.ndarray, count: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(count > 0, numerator / np.maximum(count, 1.0), np.nan)

    def compute(self) -> dict[str, float]:
        """Overall masked metrics over everything seen so far."""
        if self._count is None or self._count.sum() <= 0:
            return {"mae": float("nan"), "rmse": float("nan"), "mape": float("nan")}
        total = float(self._count.sum())
        return {
            "mae": float(self._abs_sum.sum() / total),
            "rmse": float(np.sqrt(self._sq_sum.sum() / total)),
            "mape": float(self._ape_sum.sum() / total),
        }

    def horizon_metrics(self, horizons: tuple[int, ...] = (3, 6, 12)) -> list[HorizonMetrics]:
        """Per-horizon metrics (1-based forecast steps), as in the paper's tables."""
        if self._count is None:
            raise RuntimeError("no batches accumulated yet")
        max_horizon = self._count.shape[0]
        mae = self._ratios(self._abs_sum, self._count)
        rmse = np.sqrt(self._ratios(self._sq_sum, self._count))
        mape = self._ratios(self._ape_sum, self._count)
        results = []
        for horizon in horizons:
            if horizon < 1 or horizon > max_horizon:
                raise ValueError(
                    f"horizon {horizon} outside the forecast range 1..{max_horizon}"
                )
            step = horizon - 1
            results.append(
                HorizonMetrics(
                    horizon=horizon,
                    mae=float(mae[step]),
                    rmse=float(rmse[step]),
                    mape=float(mape[step]),
                )
            )
        return results
