"""Experiment drivers — one module per table / figure of the paper's evaluation.

Every driver exposes a ``run_*`` function with two kinds of parameters:

* *shape* parameters fixed by the paper (which models, which dataset, which
  horizons), and
* *scale* parameters (node count, series length, epochs, hidden sizes) that
  default to CPU-friendly values and can be raised to the paper's full
  setting.

The :mod:`repro.experiments.runner` module provides a uniform entry point
used by the benchmark suite and the example scripts.
"""

from repro.experiments.common import ExperimentData, prepare_data, train_neural_model
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "ExperimentData",
    "prepare_data",
    "train_neural_model",
    "EXPERIMENTS",
    "run_experiment",
]
