"""Command-line entry point for the experiment drivers.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments table1
    python -m repro.experiments table3 --num-nodes 48 --num-steps 1000 --epochs 3
    python -m repro.experiments table8 --num-nodes 40 --epochs 2
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation import ResultTable
from repro.experiments.runner import EXPERIMENTS, run_experiment


def _print_result(name: str, result) -> None:
    """Render whatever structure the driver returned in a terminal-friendly way."""
    if isinstance(result, ResultTable):
        print(result.to_text())
        return
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, ResultTable):
                print(value.to_text())
            else:
                print(f"{key}: {value}")
        return
    if isinstance(result, list):
        for item in result:
            print(item)
        return
    print(result)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables or figures.",
    )
    parser.add_argument("experiment", nargs="?", choices=sorted(EXPERIMENTS),
                        help="experiment id (table1..table10, fig2..fig4)")
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--num-nodes", type=int, default=None, help="override the node count")
    parser.add_argument("--num-steps", type=int, default=None, help="override the series length")
    parser.add_argument("--epochs", type=int, default=None, help="override the training epochs")
    parser.add_argument("--batch-size", type=int, default=None, help="override the batch size")
    parser.add_argument("--seed", type=int, default=None, help="override the random seed")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    overrides = {
        key: value
        for key, value in {
            "num_nodes": args.num_nodes,
            "num_steps": args.num_steps,
            "epochs": args.epochs,
            "batch_size": args.batch_size,
            "seed": args.seed,
        }.items()
        if value is not None
    }
    if args.experiment == "table1":
        overrides.pop("num_steps", None)
        overrides.pop("epochs", None)
        overrides.pop("batch_size", None)
        overrides.pop("seed", None)
    if args.experiment == "table10":
        overrides.pop("epochs", None)
    result = run_experiment(args.experiment, **overrides)
    _print_result(args.experiment, result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
