"""Shared plumbing for the experiment drivers.

The paper's experimental protocol (Section V-A) is implemented once here:
70/10/20 chronological split, z-score normalisation of the target channel
fit on the training split, time-of-day covariate appended to the model input,
masked metrics in original units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import build_baseline
from repro.baselines.base import ClassicalForecaster
from repro.core import SAGDFN, SAGDFNConfig, Trainer
from repro.data import (
    DataLoader,
    MultivariateTimeSeries,
    SlidingWindowDataset,
    StandardScaler,
    chronological_split,
)
from repro.data.synthetic import load_dataset
from repro.evaluation import evaluate_classical, evaluate_neural
from repro.metrics import HorizonMetrics
from repro.nn.module import Module
from repro.optim import Adam


@dataclass
class ExperimentData:
    """Everything a driver needs to train and evaluate on one dataset."""

    name: str
    series: MultivariateTimeSeries
    train: MultivariateTimeSeries
    val: MultivariateTimeSeries
    test: MultivariateTimeSeries
    scaler: StandardScaler
    train_loader: DataLoader
    val_loader: DataLoader
    test_loader: DataLoader
    history: int
    horizon: int
    batch_size: int
    adjacency: np.ndarray | None
    exog_dim: int = 0
    mask_input: bool = False

    @property
    def num_nodes(self) -> int:
        return self.series.num_nodes

    @property
    def input_dim(self) -> int:
        """Total model input channels the loaders emit.

        Base is target + time-of-day (the legacy width 2); scenario data adds
        ``exog_dim`` exogenous covariate channels and, for missing-data runs,
        the trailing observation-mask channel.
        """
        return 2 + self.exog_dim + (1 if self.mask_input else 0)

    @property
    def steps_per_day(self) -> int:
        return (24 * 60) // self.series.step_minutes

    def train_values(self) -> np.ndarray:
        """Raw training targets ``(T, N)`` for the classical baselines and GTS features."""
        return self.train.values[:, :, 0]

    def test_values(self) -> np.ndarray:
        """Raw test targets ``(T, N)`` for the classical baselines."""
        return self.test.values[:, :, 0]


def _make_loader(
    split: MultivariateTimeSeries,
    scaler: StandardScaler,
    history: int,
    horizon: int,
    batch_size: int,
    shuffle: bool,
    seed: int,
    include_day_of_week: bool = False,
    mask_input: bool = False,
    null_value: float | None = 0.0,
) -> DataLoader:
    with_covariates = split.with_time_covariates(include_day_of_week=include_day_of_week)
    with_covariates.values[..., 0] = scaler.transform(with_covariates.values[..., 0])
    mask = None
    if mask_input:
        mask = split.observation_mask(null_value)
        # Zero-impute missing targets *in normalised space* (= mean-impute in
        # original units); the mask channel appended by the dataset tells the
        # model which entries were imputed.  ``where`` (not ``*=``) so NaN
        # sentinels are replaced too.  Targets stay untouched — the masked
        # loss handles missing futures through ``null_value``.
        with_covariates.values[..., 0] = np.where(mask != 0, with_covariates.values[..., 0], 0.0)
    dataset = SlidingWindowDataset(
        with_covariates, history, horizon, target_series=split, mask=mask
    )
    return DataLoader(dataset, batch_size=batch_size, shuffle=shuffle, seed=seed)


def prepare_data_from_series(
    series: MultivariateTimeSeries,
    history: int,
    horizon: int,
    batch_size: int = 16,
    seed: int = 0,
    name: str | None = None,
    include_day_of_week: bool = False,
    mask_input: bool = False,
    null_value: float | None = 0.0,
) -> ExperimentData:
    """Split an existing series and build the three data loaders.

    Follows the paper's 70/10/20 chronological split, but guarantees that the
    validation and test segments are long enough to hold at least one
    ``history + horizon`` window (relevant for short, CPU-scale series).

    Scenario knobs (defaults reproduce the legacy point/dense pipeline):
    ``include_day_of_week`` appends the day-of-week covariate as one
    exogenous channel; ``mask_input`` switches on the missing-data pipeline —
    the scaler is fit on observed training entries only, missing targets are
    mean-imputed in normalised space, and each loader emits the observation
    mask as the trailing input channel.  ``null_value`` is the sentinel that
    marks a missing observation (0 for the traffic datasets; ``NaN`` works).
    """
    total = series.num_steps
    required = history + horizon
    val_steps = max(int(round(total * 0.1)), required)
    test_steps = max(int(round(total * 0.2)), required)
    train_steps = total - val_steps - test_steps
    if train_steps < required:
        raise ValueError(
            f"series of length {total} is too short for history={history}, horizon={horizon} "
            "with a 70/10/20 split"
        )
    train = series.slice_steps(0, train_steps)
    val = series.slice_steps(train_steps, train_steps + val_steps)
    test = series.slice_steps(train_steps + val_steps, total)
    sample_mask = train.observation_mask(null_value) if mask_input else None
    scaler = StandardScaler().fit(train.values[..., 0], sample_mask=sample_mask)
    scenario = dict(
        include_day_of_week=include_day_of_week, mask_input=mask_input, null_value=null_value
    )
    return ExperimentData(
        name=name or series.name,
        series=series,
        train=train,
        val=val,
        test=test,
        scaler=scaler,
        train_loader=_make_loader(
            train, scaler, history, horizon, batch_size, True, seed + 1, **scenario
        ),
        val_loader=_make_loader(
            val, scaler, history, horizon, batch_size, False, seed + 2, **scenario
        ),
        test_loader=_make_loader(
            test, scaler, history, horizon, batch_size, False, seed + 3, **scenario
        ),
        history=history,
        horizon=horizon,
        batch_size=batch_size,
        adjacency=series.adjacency,
        exog_dim=1 if include_day_of_week else 0,
        mask_input=mask_input,
    )


def prepare_data(
    dataset_name: str,
    num_nodes: int | None = None,
    num_steps: int | None = None,
    history: int | None = None,
    horizon: int | None = None,
    batch_size: int = 16,
    seed: int = 0,
) -> ExperimentData:
    """Generate a dataset, split it and build the three data loaders."""
    series, spec = load_dataset(dataset_name, num_nodes=num_nodes, num_steps=num_steps, seed=seed)
    history = history if history is not None else spec.history
    horizon = horizon if horizon is not None else spec.horizon
    return prepare_data_from_series(
        series, history, horizon, batch_size=batch_size, seed=seed, name=dataset_name
    )


def small_sagdfn_config(data: ExperimentData, **overrides) -> SAGDFNConfig:
    """CPU-sized SAGDFN configuration for ``data`` (override any field)."""
    num_nodes = data.num_nodes
    defaults = dict(
        num_nodes=num_nodes,
        # Endogenous width stays the legacy 2 (target + time-of-day); the
        # scenario channels are declared separately so that
        # ``config.encoder_input_width == data.input_dim``.
        input_dim=2,
        exog_dim=data.exog_dim,
        mask_input=data.mask_input,
        output_dim=1,
        history=data.history,
        horizon=data.horizon,
        embedding_dim=10,
        num_significant=min(10, num_nodes),
        top_k=min(8, num_nodes),
        hidden_size=24,
        num_heads=2,
        ffn_hidden=12,
        alpha=1.5,
        diffusion_steps=2,
        convergence_iteration=30,
    )
    defaults.update(overrides)
    return SAGDFNConfig(**defaults)


def train_neural_model(
    model: Module,
    data: ExperimentData,
    epochs: int = 2,
    learning_rate: float = 5e-3,
    patience: int | None = None,
) -> list[HorizonMetrics]:
    """Train ``model`` with the shared protocol and return test metrics per horizon."""
    trainer = Trainer(model, Adam(model.parameters(), lr=learning_rate), scaler=data.scaler)
    trainer.fit(data.train_loader, data.val_loader, epochs=epochs, patience=patience)
    horizons = _default_horizons(data.horizon)
    return evaluate_neural(model, data.test_loader, data.scaler, horizons=horizons)


def train_sagdfn(
    data: ExperimentData,
    epochs: int = 2,
    learning_rate: float = 5e-3,
    config: SAGDFNConfig | None = None,
    **config_overrides,
) -> tuple[SAGDFN, list[HorizonMetrics]]:
    """Build, train and evaluate SAGDFN on ``data``."""
    if config is None:
        config = small_sagdfn_config(data, **config_overrides)
    predefined = data.adjacency if config.use_predefined_graph else None
    model = SAGDFN(config, predefined_adjacency=predefined)
    metrics = train_neural_model(model, data, epochs=epochs, learning_rate=learning_rate)
    return model, metrics


def run_classical_baseline(name: str, data: ExperimentData) -> list[HorizonMetrics]:
    """Fit a classical baseline on the training split and score it on the test split."""
    model = build_baseline(
        name,
        num_nodes=data.num_nodes,
        input_dim=data.input_dim,
        history=data.history,
        horizon=data.horizon,
        steps_per_day=data.steps_per_day,
    )
    model.fit(data.train_values())
    offset = data.train.num_steps + data.val.num_steps
    return evaluate_classical(
        model,
        data.test_values(),
        history=data.history,
        horizon=data.horizon,
        horizons=_default_horizons(data.horizon),
        global_step_offset=offset,
    )


def run_neural_baseline(
    name: str,
    data: ExperimentData,
    epochs: int = 2,
    learning_rate: float = 5e-3,
    hidden_size: int = 24,
    seed: int = 0,
) -> list[HorizonMetrics]:
    """Build, train and score one neural baseline from the registry."""
    model = build_baseline(
        name,
        num_nodes=data.num_nodes,
        input_dim=data.input_dim,
        history=data.history,
        horizon=data.horizon,
        adjacency=data.adjacency,
        series_values=data.train_values(),
        hidden_size=hidden_size,
        seed=seed,
    )
    return train_neural_model(model, data, epochs=epochs, learning_rate=learning_rate)


def _default_horizons(horizon: int) -> tuple[int, ...]:
    """The paper's 3/6/12 horizons, restricted to what the dataset provides."""
    return tuple(h for h in (3, 6, 12) if h <= horizon) or (horizon,)
