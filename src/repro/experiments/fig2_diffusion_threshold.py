"""Figure 2: diffusion threshold — how the slim width M affects one sensor's features.

Figure 2 of the paper shows that the diffused features of a London2000
sensor barely change once the number of significant neighbours ``M`` grows
beyond ~10–20, which motivates setting ``M ≈ 5%·N``.  The driver reproduces
the measurement: it trains SAGDFN briefly for each value of ``M``, extracts
the diffused representation of one target sensor on a probe batch, and
reports how much that representation changes from one ``M`` to the next.
"""

from __future__ import annotations

import numpy as np

from repro.core import SAGDFN, Trainer
from repro.experiments.common import ExperimentData, prepare_data, small_sagdfn_config
from repro.optim import Adam
from repro.tensor import Tensor, no_grad


def _sensor_features(model: SAGDFN, data: ExperimentData, sensor: int) -> np.ndarray:
    """Diffused encoder features of ``sensor`` on one probe batch."""
    batch_x, _ = next(iter(data.val_loader))
    with no_grad():
        adjacency = model.slim_adjacency()
        cell = model.forecaster.encoder_cells[0]
        hidden = cell.initial_state(batch_x.shape[0], data.num_nodes)
        history = Tensor(batch_x)
        for t in range(batch_x.shape[1]):
            hidden, _ = cell(history[:, t], hidden, adjacency, model.index_set)
    return hidden.data[:, sensor, :].copy()


def run_fig2(
    m_values: tuple[int, ...] = (2, 4, 8, 12, 16),
    sensor: int = 5,
    num_nodes: int = 40,
    num_steps: int = 600,
    epochs: int = 1,
    batch_size: int = 16,
    seed: int = 0,
) -> dict:
    """Sweep the slim width ``M`` and measure the change in one sensor's features.

    Returns the per-``M`` feature matrices, the relative change between
    consecutive ``M`` values, and the ``M`` value after which the change
    stays below 10% (the "threshold" of Figure 2).
    """
    if any(m >= num_nodes for m in m_values):
        raise ValueError("all m_values must be smaller than num_nodes")
    data = prepare_data("london2000_like", num_nodes=num_nodes, num_steps=num_steps,
                        batch_size=batch_size, seed=seed)
    features: dict[int, np.ndarray] = {}
    for m in m_values:
        config = small_sagdfn_config(data, num_significant=m, top_k=max(1, int(m * 0.8)))
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
        trainer.fit(data.train_loader, epochs=epochs)
        features[m] = _sensor_features(model, data, sensor)

    changes: dict[int, float] = {}
    ordered = sorted(m_values)
    for previous, current in zip(ordered, ordered[1:]):
        denominator = np.linalg.norm(features[previous]) + 1e-12
        changes[current] = float(np.linalg.norm(features[current] - features[previous]) / denominator)

    threshold = None
    for m in ordered[1:]:
        if changes[m] < 0.10:
            threshold = m
            break
    return {"sensor": sensor, "features": features, "relative_change": changes,
            "threshold_m": threshold}
