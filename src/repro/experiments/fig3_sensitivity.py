"""Figure 3: hyper-parameter sensitivity (α, number of heads, slim width M).

Three sweeps, as in the paper:

* α of the α-entmax normaliser on the METR-LA stand-in (panel a),
* the number of attention heads on the METR-LA stand-in (panel b),
* the slim width ``M`` on the CARPARK stand-in (panel c).
"""

from __future__ import annotations

from repro.experiments.common import prepare_data, train_sagdfn
from repro.metrics import HorizonMetrics


def _overall_mae(metrics: list[HorizonMetrics]) -> float:
    return sum(entry.mae for entry in metrics) / len(metrics)


def run_fig3(
    alphas: tuple[float, ...] = (1.0, 1.5, 2.0),
    head_counts: tuple[int, ...] = (1, 2, 4),
    m_values: tuple[int, ...] = (4, 8, 12),
    num_nodes: int = 32,
    num_steps: int = 600,
    epochs: int = 1,
    batch_size: int = 16,
    seed: int = 0,
) -> dict:
    """Run all three sensitivity sweeps at reduced scale.

    Returns a dictionary with one ``{value: mean MAE}`` mapping per panel.
    """
    traffic = prepare_data("metr_la_like", num_nodes=num_nodes, num_steps=num_steps,
                           batch_size=batch_size, seed=seed)
    carpark = prepare_data("carpark1918_like", num_nodes=num_nodes, num_steps=num_steps,
                           batch_size=batch_size, seed=seed)

    alpha_results = {}
    for alpha in alphas:
        _, metrics = train_sagdfn(traffic, epochs=epochs, alpha=alpha)
        alpha_results[alpha] = _overall_mae(metrics)

    head_results = {}
    for heads in head_counts:
        _, metrics = train_sagdfn(traffic, epochs=epochs, num_heads=heads)
        head_results[heads] = _overall_mae(metrics)

    m_results = {}
    for m in m_values:
        if m >= num_nodes:
            raise ValueError("all m_values must be smaller than num_nodes")
        _, metrics = train_sagdfn(carpark, epochs=epochs, num_significant=m,
                                  top_k=max(1, int(m * 0.8)))
        m_results[m] = _overall_mae(metrics)

    return {"alpha": alpha_results, "heads": head_results, "m": m_results}
