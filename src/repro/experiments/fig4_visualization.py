"""Figure 4: prediction vs ground-truth visualisation on METR-LA and CARPARK1918.

The driver trains SAGDFN on each dataset stand-in, rolls it over the test
split and returns aligned (ground truth, prediction) series for a handful of
sensors, ready to be plotted or written to CSV.  The benchmark checks the
qualitative claims of the figure: predictions track the daily cycle and are
smoother (lower total variation) than the noisy ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.evaluator import collect_predictions
from repro.experiments.common import prepare_data, train_sagdfn


def run_fig4(
    datasets: tuple[str, ...] = ("metr_la_like", "carpark1918_like"),
    sensors: tuple[int, ...] = (0, 3),
    horizon_step: int = 1,
    num_nodes: int = 32,
    num_steps: int = 700,
    epochs: int = 2,
    batch_size: int = 16,
    seed: int = 0,
) -> dict[str, dict]:
    """Produce visualisation series for the requested datasets and sensors.

    Returns, per dataset, the ground-truth and predicted series of each
    sensor at forecast step ``horizon_step`` (1-based), plus summary
    statistics (MAE of the plotted slice and total variation of both curves).
    """
    results: dict[str, dict] = {}
    for dataset_name in datasets:
        data = prepare_data(dataset_name, num_nodes=num_nodes, num_steps=num_steps,
                            batch_size=batch_size, seed=seed)
        if not 1 <= horizon_step <= data.horizon:
            raise ValueError(f"horizon_step must be in 1..{data.horizon}")
        model, _ = train_sagdfn(data, epochs=epochs)
        predictions, targets = collect_predictions(model, data.test_loader, data.scaler)
        step = horizon_step - 1
        per_sensor = {}
        for sensor in sensors:
            truth = targets[:, step, sensor, 0]
            predicted = predictions[:, step, sensor, 0]
            per_sensor[sensor] = {
                "ground_truth": truth,
                "prediction": predicted,
                "mae": float(np.abs(truth - predicted)[truth != 0].mean()),
                "truth_total_variation": float(np.abs(np.diff(truth)).sum()),
                "prediction_total_variation": float(np.abs(np.diff(predicted)).sum()),
            }
        results[dataset_name] = {
            "sensors": per_sensor,
            "num_plotted_steps": int(targets.shape[0]),
        }
    return results
