"""Tables V–VII: performance comparison on the three large datasets.

CARPARK1918 (Table V), London2000 (Table VI) and NewYork2000 (Table VII)
share one protocol: every baseline that fits in 32 GB of GPU memory is
trained and scored; the eight models whose footprint exceeds the budget at
the paper's scale are reported as OOM (``×``).  The OOM decision comes from
the analytic memory model (:mod:`repro.evaluation.memory`) evaluated at the
*paper-scale* node count, while the feasible models are actually trained at
the scaled-down node count of the benchmark run.
"""

from __future__ import annotations

from repro.baselines.registry import BASELINE_REGISTRY
from repro.evaluation import ResultTable, would_oom
from repro.experiments.common import (
    prepare_data,
    run_classical_baseline,
    run_neural_baseline,
    train_sagdfn,
)

#: The baseline rows of Tables V–VII, in the paper's order.
LARGE_TABLE_BASELINES: tuple[str, ...] = (
    "ARIMA",
    "VAR",
    "SVR",
    "LSTM",
    "DCRNN",
    "STGCN",
    "GraphWaveNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "ASTGCN",
    "STSGCN",
    "GTS",
    "STEP",
    "D2STGNN",
)

#: Paper-scale node count of each large dataset (drives the OOM decision).
PAPER_SCALE_NODES: dict[str, int] = {
    "carpark1918_like": 1918,
    "london2000_like": 2000,
    "newyork2000_like": 2000,
}


def run_large_dataset_table(
    dataset_name: str,
    models: tuple[str, ...] = ("ARIMA", "VAR", "LSTM", "DCRNN", "GraphWaveNet", "MTGNN", "GTS"),
    num_nodes: int = 48,
    num_steps: int = 900,
    epochs: int = 2,
    batch_size: int = 16,
    oom_batch_size: int = 32,
    seed: int = 0,
    sagdfn_overrides: dict | None = None,
) -> ResultTable:
    """Run one of Tables V–VII on a scaled-down stand-in.

    Every requested model is first checked against the 32 GB memory budget at
    the dataset's *paper-scale* node count with batch size ``oom_batch_size``
    (the paper falls back to 32 before declaring OOM); models that would not
    fit are added to the table as OOM rows and are not trained.
    """
    if dataset_name not in PAPER_SCALE_NODES:
        raise KeyError(f"unknown large dataset {dataset_name!r}")
    unknown = set(models) - set(LARGE_TABLE_BASELINES)
    if unknown:
        raise ValueError(f"models not in Tables V–VII: {sorted(unknown)}")
    paper_nodes = PAPER_SCALE_NODES[dataset_name]
    data = prepare_data(dataset_name, num_nodes=num_nodes, num_steps=num_steps,
                        batch_size=batch_size, seed=seed)
    horizons = tuple(h for h in (3, 6, 12) if h <= data.horizon)
    table = ResultTable(
        title=f"{dataset_name} (paper scale N={paper_nodes}, benchmark scale N={data.num_nodes})",
        horizons=horizons,
    )
    for name in models:
        info = BASELINE_REGISTRY[name]
        if info.family == "classical":
            table.add(name, run_classical_baseline(name, data))
            continue
        if would_oom(name, paper_nodes, batch_size=oom_batch_size, history=data.history):
            table.add(name, None)
            continue
        table.add(name, run_neural_baseline(name, data, epochs=epochs, seed=seed))
    _, sagdfn_metrics = train_sagdfn(data, epochs=epochs, **(sagdfn_overrides or {}))
    table.add("SAGDFN", sagdfn_metrics)
    return table


def run_table5(**kwargs) -> ResultTable:
    """Table V: CARPARK1918 stand-in."""
    return run_large_dataset_table("carpark1918_like", **kwargs)


def run_table6(**kwargs) -> ResultTable:
    """Table VI: London2000 stand-in."""
    return run_large_dataset_table("london2000_like", **kwargs)


def run_table7(**kwargs) -> ResultTable:
    """Table VII: NewYork2000 stand-in."""
    return run_large_dataset_table("newyork2000_like", **kwargs)
