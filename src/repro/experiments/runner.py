"""Uniform entry point over every experiment driver.

``run_experiment("table3")`` (etc.) dispatches to the corresponding driver
with its default, CPU-sized parameters; keyword arguments are forwarded, so
``run_experiment("table3", num_nodes=207, epochs=50)`` runs the paper-scale
configuration.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.fig2_diffusion_threshold import run_fig2
from repro.experiments.fig3_sensitivity import run_fig3
from repro.experiments.fig4_visualization import run_fig4
from repro.experiments.large_datasets import run_table5, run_table6, run_table7
from repro.experiments.table1_complexity import run_table1
from repro.experiments.table3_metr_la import run_table3
from repro.experiments.table4_london200 import run_table4
from repro.experiments.table8_ablation import run_table8
from repro.experiments.table9_non_gnn import run_table9
from repro.experiments.table10_cost import run_table10

#: Experiment id → driver.  Ids follow the paper's table/figure numbering.
EXPERIMENTS: dict[str, Callable] = {
    "table1": run_table1,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "table9": run_table9,
    "table10": run_table10,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
}


def run_experiment(name: str, **kwargs):
    """Run the experiment ``name`` (e.g. ``"table3"``, ``"fig2"``) and return its result."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)
