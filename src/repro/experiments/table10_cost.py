"""Table X: computation cost (parameters, training time per epoch, inference time).

The paper profiles DCRNN, AGCRN, MTGNN, GTS, D2STGNN and SAGDFN on
CARPARK1918; the headline findings are that SAGDFN has by far the fewest
parameters and the lowest training / inference time.  The driver measures
the re-implementations on a scaled-down CARPARK stand-in; absolute seconds
differ from the paper's V100 numbers, but the ordering is what the benchmark
asserts.
"""

from __future__ import annotations

from repro.baselines import build_baseline
from repro.core import SAGDFN
from repro.evaluation import CostReport, measure_cost
from repro.experiments.common import prepare_data, small_sagdfn_config

TABLE10_BASELINES: tuple[str, ...] = ("DCRNN", "AGCRN", "MTGNN", "GTS", "D2STGNN")


def run_table10(
    models: tuple[str, ...] = ("DCRNN", "AGCRN", "MTGNN", "GTS"),
    num_nodes: int = 40,
    num_steps: int = 600,
    batch_size: int = 16,
    max_batches: int = 3,
    seed: int = 0,
    dataset_name: str = "carpark1918_like",
) -> list[CostReport]:
    """Measure parameter counts and per-epoch cost of the Table X models + SAGDFN."""
    unknown = set(models) - set(TABLE10_BASELINES)
    if unknown:
        raise ValueError(f"models not in Table X: {sorted(unknown)}")
    data = prepare_data(dataset_name, num_nodes=num_nodes, num_steps=num_steps,
                        batch_size=batch_size, seed=seed)
    reports: list[CostReport] = []
    for name in models:
        model = build_baseline(
            name,
            num_nodes=data.num_nodes,
            input_dim=data.input_dim,
            history=data.history,
            horizon=data.horizon,
            adjacency=data.adjacency,
            series_values=data.train_values(),
            seed=seed,
        )
        reports.append(measure_cost(name, model, data.train_loader, max_batches=max_batches))
    sagdfn = SAGDFN(small_sagdfn_config(data))
    reports.append(measure_cost("SAGDFN", sagdfn, data.train_loader, max_batches=max_batches))
    return reports
