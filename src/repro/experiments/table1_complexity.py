"""Table I + Examples 1–2: complexity of adaptive-weight-GNN forecasting methods."""

from __future__ import annotations

from repro.core.complexity import (
    ComplexityProfile,
    complexity_table,
    example_memory_comparison,
)


def run_table1(
    num_nodes: int = 2000,
    embedding_dim: int = 100,
    hidden_dim: int = 64,
    num_significant: int = 100,
) -> dict:
    """Evaluate the complexity expressions of Table I at the paper's large-dataset setting.

    Returns both the per-model profiles and the Example 1 / Example 2 memory
    comparison, plus the reduction factors the paper highlights (``N / M`` in
    both computation and memory).
    """
    profiles: list[ComplexityProfile] = complexity_table(
        num_nodes, embedding_dim, hidden_dim, num_significant
    )
    by_model = {profile.model: profile for profile in profiles}
    reduction_vs_gts = {
        "computation": by_model["GTS"].computation / by_model["SAGDFN"].computation,
        "memory": by_model["GTS"].memory / by_model["SAGDFN"].memory,
    }
    return {
        "profiles": profiles,
        "example_memory": example_memory_comparison(
            num_nodes=num_nodes,
            embedding_dim=embedding_dim,
            hidden_dim=hidden_dim,
            num_significant=num_significant,
        ),
        "reduction_vs_gts": reduction_vs_gts,
    }
