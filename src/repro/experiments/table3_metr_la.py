"""Table III: performance comparison on METR-LA (207 sensors).

The driver trains SAGDFN and any requested subset of the 15 baselines on the
METR-LA stand-in and reports MAE / RMSE / MAPE at horizons 3, 6 and 12.  At
paper scale all sixteen models are feasible (no OOM entries in Table III).
"""

from __future__ import annotations

from repro.baselines.registry import BASELINE_REGISTRY
from repro.evaluation import ResultTable
from repro.experiments.common import (
    prepare_data,
    run_classical_baseline,
    run_neural_baseline,
    train_sagdfn,
)

#: Baselines shown in Table III, in the paper's row order.
TABLE3_BASELINES: tuple[str, ...] = (
    "ARIMA",
    "VAR",
    "SVR",
    "LSTM",
    "DCRNN",
    "STGCN",
    "GraphWaveNet",
    "GMAN",
    "AGCRN",
    "MTGNN",
    "ASTGCN",
    "STSGCN",
    "GTS",
    "STEP",
    "D2STGNN",
)


def run_table3(
    models: tuple[str, ...] = ("ARIMA", "VAR", "LSTM", "DCRNN", "AGCRN", "GTS"),
    num_nodes: int = 48,
    num_steps: int = 900,
    epochs: int = 2,
    batch_size: int = 16,
    seed: int = 0,
    sagdfn_overrides: dict | None = None,
) -> ResultTable:
    """Run the Table III comparison on a scaled-down METR-LA stand-in.

    ``models`` selects which baselines to train (all names must appear in
    :data:`TABLE3_BASELINES`); SAGDFN is always included.
    """
    unknown = set(models) - set(TABLE3_BASELINES)
    if unknown:
        raise ValueError(f"models not in Table III: {sorted(unknown)}")
    data = prepare_data(
        "metr_la_like", num_nodes=num_nodes, num_steps=num_steps, batch_size=batch_size, seed=seed
    )
    table = ResultTable(title=f"Table III (METR-LA stand-in, N={data.num_nodes})")
    for name in models:
        info = BASELINE_REGISTRY[name]
        if info.family == "classical":
            table.add(name, run_classical_baseline(name, data))
        else:
            table.add(name, run_neural_baseline(name, data, epochs=epochs, seed=seed))
    _, sagdfn_metrics = train_sagdfn(data, epochs=epochs, **(sagdfn_overrides or {}))
    table.add("SAGDFN", sagdfn_metrics)
    return table
