"""Table IV: forecasting a fixed 200-sensor subset while training on growing graphs.

The paper's point: SAGDFN's accuracy on the *same* 200 London sensors keeps
improving as more sensors are added to the training graph (200 → 1000 → 1750
→ 5000), while AGCRN / GTS / D2STGNN are stuck at the largest graph they can
fit in GPU memory (1750 / 1000 / 200 nodes at batch 64).

The driver reproduces both halves:

* the analytic memory model supplies each baseline's maximum processable
  graph size at paper scale (Table IV's "# nodes in training set" column);
* the actual training runs use scaled-down node counts, always evaluating on
  the *same* first ``eval_nodes`` sensors of one shared London2000-like
  series so the comparison across training sizes is apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from repro.core import SAGDFN, SAGDFNConfig, Trainer
from repro.data.synthetic import load_dataset
from repro.evaluation import ResultTable, max_trainable_nodes
from repro.evaluation.evaluator import collect_predictions
from repro.experiments.common import (
    ExperimentData,
    prepare_data_from_series,
    small_sagdfn_config,
)
from repro.baselines import build_baseline
from repro.metrics import HorizonMetrics, horizon_metrics
from repro.optim import Adam


def _metrics_on_first_nodes(model, data: ExperimentData, eval_nodes: int) -> list[HorizonMetrics]:
    """Evaluate ``model`` on the first ``eval_nodes`` sensors of ``data``'s test split."""
    predictions, targets = collect_predictions(model, data.test_loader, data.scaler)
    horizons = tuple(h for h in (3, 6, 12) if h <= data.horizon)
    return horizon_metrics(
        predictions[:, :, :eval_nodes], targets[:, :, :eval_nodes], horizons=horizons
    )


def _train(model, data: ExperimentData, epochs: int, learning_rate: float = 5e-3) -> None:
    trainer = Trainer(model, Adam(model.parameters(), lr=learning_rate), scaler=data.scaler)
    trainer.fit(data.train_loader, data.val_loader, epochs=epochs)


def run_table4(
    eval_nodes: int = 24,
    training_sizes: tuple[int, ...] = (24, 48, 96),
    baseline_sizes: dict[str, int] | None = None,
    num_steps: int = 700,
    epochs: int = 2,
    batch_size: int = 16,
    seed: int = 0,
) -> dict:
    """Scaled-down Table IV.

    Parameters
    ----------
    eval_nodes:
        Size of the fixed evaluation subset (the paper's "London200").
    training_sizes:
        Training-graph sizes for SAGDFN (the paper's 200 / 1000 / 1750 / 5000
        column, scaled down).  Must be non-decreasing and start at a value
        ≥ ``eval_nodes``.
    baseline_sizes:
        Training-graph size per baseline; defaults to sizes proportional to
        the paper's maximum processable graphs (AGCRN 1750, GTS 1000,
        D2STGNN 200 out of 2000) relative to ``max(training_sizes)``.
    """
    if eval_nodes > min(training_sizes):
        raise ValueError("eval_nodes must not exceed the smallest training size")
    largest = max(training_sizes)
    if baseline_sizes is None:
        scale = largest / 2000.0
        baseline_sizes = {
            "AGCRN": min(largest, max(eval_nodes, int(round(1750 * scale)))),
            "GTS": min(largest, max(eval_nodes, int(round(1000 * scale)))),
            "D2STGNN": min(largest, max(eval_nodes, int(round(200 * scale)))),
        }

    # One shared series; every training graph is a prefix of its sensors so
    # the evaluation sensors are literally the same time series everywhere.
    full_series, spec = load_dataset("london2000_like", num_nodes=largest, num_steps=num_steps,
                                     seed=seed)

    def subset_data(num_nodes: int) -> ExperimentData:
        series = full_series.select_nodes(np.arange(num_nodes))
        return prepare_data_from_series(series, spec.history, spec.horizon,
                                        batch_size=batch_size, seed=seed,
                                        name=f"london{num_nodes}")

    results: dict = {
        "paper_max_nodes": {
            name: max_trainable_nodes(name, batch_size=64) for name in ("AGCRN", "GTS", "D2STGNN")
        }
    }
    table = ResultTable(title=f"Table IV (London stand-in, eval on first {eval_nodes} sensors)")

    baseline_rows: dict[str, dict] = {}
    for name, size in baseline_sizes.items():
        data = subset_data(size)
        model = build_baseline(
            name,
            num_nodes=data.num_nodes,
            input_dim=data.input_dim,
            history=data.history,
            horizon=data.horizon,
            adjacency=data.adjacency,
            series_values=data.train_values(),
            seed=seed,
        )
        _train(model, data, epochs)
        metrics = _metrics_on_first_nodes(model, data, eval_nodes)
        baseline_rows[name] = {"train_nodes": size, "metrics": metrics}
        table.add(f"{name}@{size}", metrics)

    sagdfn_rows: dict[int, list[HorizonMetrics]] = {}
    for size in training_sizes:
        data = subset_data(size)
        config = small_sagdfn_config(data)
        model = SAGDFN(config)
        _train(model, data, epochs)
        metrics = _metrics_on_first_nodes(model, data, eval_nodes)
        sagdfn_rows[size] = metrics
        table.add(f"SAGDFN@{size}", metrics)

    results["baselines"] = baseline_rows
    results["sagdfn"] = sagdfn_rows
    results["table"] = table
    return results
