"""Table VIII: ablation study of SAGDFN's components on CARPARK1918.

Five rows: the full model and the four variants obtained by disabling the
α-entmax normaliser, the pair-wise attention, the Significant Neighbors
Sampling module, or both SNS and the Sparse Spatial Multi-Head Attention
(falling back to a distance-based top-k predefined graph).
"""

from __future__ import annotations

from repro.evaluation import ResultTable
from repro.experiments.common import prepare_data, train_sagdfn

#: Ablation rows of Table VIII mapped to SAGDFNConfig overrides.
ABLATION_VARIANTS: dict[str, dict] = {
    "SAGDFN": {},
    "w/o Entmax": {"normalizer": "softmax"},
    "w/o Attention": {"use_pairwise_attention": False},
    "w/o SNS": {"use_sns": False},
    "w/o SNS & SSMA": {"use_predefined_graph": True},
}


def run_table8(
    variants: tuple[str, ...] = tuple(ABLATION_VARIANTS),
    num_nodes: int = 40,
    num_steps: int = 800,
    epochs: int = 2,
    batch_size: int = 16,
    seed: int = 0,
    dataset_name: str = "carpark1918_like",
) -> ResultTable:
    """Run the ablation on a scaled-down CARPARK1918 stand-in."""
    unknown = set(variants) - set(ABLATION_VARIANTS)
    if unknown:
        raise ValueError(f"unknown ablation variants: {sorted(unknown)}")
    data = prepare_data(dataset_name, num_nodes=num_nodes, num_steps=num_steps,
                        batch_size=batch_size, seed=seed)
    horizons = tuple(h for h in (3, 6, 12) if h <= data.horizon)
    table = ResultTable(title=f"Table VIII ablation ({dataset_name}, N={data.num_nodes})",
                        horizons=horizons)
    for variant in variants:
        overrides = ABLATION_VARIANTS[variant]
        _, metrics = train_sagdfn(data, epochs=epochs, **overrides)
        table.add(variant, metrics)
    return table
