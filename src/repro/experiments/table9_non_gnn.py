"""Table IX: comparison with non-GNN long-sequence forecasting methods.

TimesNet, FEDformer and ETSformer model each series independently; the table
shows they trail SAGDFN on both METR-LA and CARPARK1918 because they cannot
exploit spatial correlation.
"""

from __future__ import annotations

from repro.evaluation import ResultTable
from repro.experiments.common import prepare_data, run_neural_baseline, train_sagdfn

NON_GNN_MODELS: tuple[str, ...] = ("TimesNet", "FEDformer", "ETSformer")


def run_table9(
    datasets: tuple[str, ...] = ("metr_la_like", "carpark1918_like"),
    models: tuple[str, ...] = NON_GNN_MODELS,
    num_nodes: int = 40,
    num_steps: int = 800,
    epochs: int = 2,
    batch_size: int = 16,
    seed: int = 0,
) -> dict[str, ResultTable]:
    """Run the Table IX comparison; returns one ResultTable per dataset."""
    unknown = set(models) - set(NON_GNN_MODELS)
    if unknown:
        raise ValueError(f"models not in Table IX: {sorted(unknown)}")
    tables: dict[str, ResultTable] = {}
    for dataset_name in datasets:
        data = prepare_data(dataset_name, num_nodes=num_nodes, num_steps=num_steps,
                            batch_size=batch_size, seed=seed)
        horizons = tuple(h for h in (3, 6, 12) if h <= data.horizon)
        table = ResultTable(title=f"Table IX ({dataset_name}, N={data.num_nodes})",
                            horizons=horizons)
        for name in models:
            table.add(name, run_neural_baseline(name, data, epochs=epochs, seed=seed))
        _, sagdfn_metrics = train_sagdfn(data, epochs=epochs)
        table.add("SAGDFN", sagdfn_metrics)
        tables[dataset_name] = table
    return tables
