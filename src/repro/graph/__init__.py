"""Graph substrate: adjacency construction, normalisation and diffusion operators.

The SAGDFN model never needs a *predefined* adjacency matrix, but several of
its baselines do (DCRNN, STGCN, the "w/o SNS & SSMA" ablation), and the slim
``N × M`` diffusion of Eq. 9 still needs degree normalisation.  This package
collects every graph-algebra helper the models share.
"""

from repro.graph.adjacency import (
    add_self_loops,
    cheb_polynomials,
    degree_vector,
    gaussian_kernel_adjacency,
    knn_adjacency,
    random_walk_matrix,
    row_normalize,
    scaled_laplacian,
    symmetric_normalize,
    threshold_sparsify,
)
from repro.graph.diffusion import (
    dense_diffusion,
    slim_degree_vector,
    slim_diffusion_step,
    slim_graph_conv,
)

__all__ = [
    "row_normalize",
    "symmetric_normalize",
    "degree_vector",
    "add_self_loops",
    "random_walk_matrix",
    "scaled_laplacian",
    "cheb_polynomials",
    "gaussian_kernel_adjacency",
    "knn_adjacency",
    "threshold_sparsify",
    "dense_diffusion",
    "slim_degree_vector",
    "slim_diffusion_step",
    "slim_graph_conv",
]
