"""Adjacency-matrix construction and normalisation helpers (plain NumPy).

These functions operate on dense ``(N, N)`` arrays; the *slim* ``(N, M)``
operators used by SAGDFN live in :mod:`repro.graph.diffusion`.
"""

from __future__ import annotations

import numpy as np


def degree_vector(adjacency: np.ndarray, axis: int = 1) -> np.ndarray:
    """Row (out-) degree of a weighted adjacency matrix."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    return adjacency.sum(axis=axis)


def add_self_loops(adjacency: np.ndarray, weight: float = 1.0) -> np.ndarray:
    """Return ``A + weight · I``."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("self loops require a square adjacency matrix")
    return adjacency + weight * np.eye(adjacency.shape[0])


def row_normalize(adjacency: np.ndarray, eps: float = 1e-10) -> np.ndarray:
    """Random-walk normalisation ``D⁻¹ A`` (rows sum to one where possible)."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degrees = adjacency.sum(axis=1, keepdims=True)
    return adjacency / np.maximum(degrees, eps)


def symmetric_normalize(adjacency: np.ndarray, eps: float = 1e-10) -> np.ndarray:
    """Symmetric normalisation ``D^{-1/2} A D^{-1/2}`` used by classical GCNs."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degrees = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, eps))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Alias of :func:`row_normalize`, named as in the DCRNN paper."""
    return row_normalize(adjacency)


def scaled_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """Rescaled Laplacian ``2 L / λ_max − I`` used by Chebyshev graph convolutions."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    normalised = symmetric_normalize(adjacency)
    laplacian = np.eye(adjacency.shape[0]) - normalised
    eigenvalues = np.linalg.eigvalsh(laplacian)
    lambda_max = float(eigenvalues.max())
    if lambda_max <= 0:
        lambda_max = 2.0
    return 2.0 * laplacian / lambda_max - np.eye(adjacency.shape[0])


def cheb_polynomials(laplacian: np.ndarray, order: int) -> list[np.ndarray]:
    """Chebyshev polynomial basis ``T_0 … T_{order-1}`` of the scaled Laplacian."""
    if order < 1:
        raise ValueError("order must be >= 1")
    n = laplacian.shape[0]
    polynomials = [np.eye(n)]
    if order > 1:
        polynomials.append(laplacian.copy())
    for _ in range(2, order):
        polynomials.append(2.0 * laplacian @ polynomials[-1] - polynomials[-2])
    return polynomials


def gaussian_kernel_adjacency(
    distances: np.ndarray, sigma: float | None = None, threshold: float = 0.1
) -> np.ndarray:
    """Thresholded Gaussian kernel adjacency from a pairwise distance matrix.

    This is the construction used by DCRNN/STGCN for road networks:
    ``W_ij = exp(-d_ij² / σ²)`` with entries below ``threshold`` zeroed and the
    diagonal removed.  ``sigma`` defaults to the standard deviation of the
    finite distances.
    """
    distances = np.asarray(distances, dtype=np.float64)
    finite = distances[np.isfinite(distances)]
    if sigma is None:
        sigma = float(finite.std()) or 1.0
    weights = np.exp(-np.square(distances / sigma))
    weights[~np.isfinite(distances)] = 0.0
    weights[weights < threshold] = 0.0
    np.fill_diagonal(weights, 0.0)
    return weights


def knn_adjacency(distances: np.ndarray, k: int, symmetric: bool = True) -> np.ndarray:
    """Binary k-nearest-neighbour adjacency from a pairwise distance matrix."""
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    masked = distances.copy()
    np.fill_diagonal(masked, np.inf)
    neighbours = np.argsort(masked, axis=1)[:, :k]
    adjacency = np.zeros_like(distances)
    rows = np.repeat(np.arange(n), k)
    adjacency[rows, neighbours.reshape(-1)] = 1.0
    if symmetric:
        adjacency = np.maximum(adjacency, adjacency.T)
    return adjacency


def threshold_sparsify(adjacency: np.ndarray, keep_top: int) -> np.ndarray:
    """Keep only the ``keep_top`` largest entries per row, zeroing the rest.

    Used by the "w/o SNS & SSMA" ablation, which retains the top-100 closest
    neighbours of a distance-derived adjacency matrix.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n, m = adjacency.shape
    if keep_top >= m:
        return adjacency.copy()
    result = np.zeros_like(adjacency)
    top_indices = np.argpartition(-adjacency, keep_top, axis=1)[:, :keep_top]
    rows = np.repeat(np.arange(n), keep_top)
    cols = top_indices.reshape(-1)
    result[rows, cols] = adjacency[rows, cols]
    return result
