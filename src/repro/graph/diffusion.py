"""Graph diffusion operators, both dense (baselines) and slim (SAGDFN, Eq. 9).

The *slim* operators are the heart of the paper's scalability claim: instead
of an ``(N, N)`` adjacency matrix they take a learned ``(N, M)`` matrix
``A_s`` together with the index set ``I`` of the ``M`` globally significant
neighbours, and compute

.. math::

    W \\star_{A_s} X \\;=\\; \\sum_{j=0}^{J-1} W_j
        \\left[(D + I)^{-1} (A_s X_I + X)\\right]^{j}

where ``X_I`` gathers the rows of ``X`` belonging to the significant
neighbours and ``D`` is the (diagonal) degree derived from ``A_s``.  The cost
per diffusion step is ``O(N · M · D)`` instead of ``O(N² · D)``.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def dense_diffusion(adjacency: np.ndarray, signal: Tensor, steps: int) -> list[Tensor]:
    """Return ``[X, A X, A² X, …]`` for a dense ``(N, N)`` support.

    ``signal`` has shape ``(..., N, D)``; each diffusion step multiplies along
    the node axis.  Used by DCRNN/AGCRN-style baselines.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    support = Tensor(np.asarray(adjacency, dtype=np.float64))
    outputs = [signal]
    current = signal
    for _ in range(1, steps):
        current = support.matmul(current)
        outputs.append(current)
    return outputs


def slim_degree_vector(slim_adjacency: Tensor | np.ndarray) -> np.ndarray:
    """Row sums of the slim ``(N, M)`` adjacency — the diagonal of ``D`` in Eq. 9."""
    data = slim_adjacency.data if isinstance(slim_adjacency, Tensor) else np.asarray(slim_adjacency)
    return data.sum(axis=-1)


def slim_diffusion_step(
    slim_adjacency: Tensor,
    signal: Tensor,
    significant_indices: np.ndarray,
) -> Tensor:
    """One hop of the slim diffusion: ``(D + I)⁻¹ (A_s X_I + X)``.

    Parameters
    ----------
    slim_adjacency:
        ``(N, M)`` tensor of correlation strengths between every node and the
        ``M`` significant neighbours.
    signal:
        ``(..., N, D)`` tensor of node features (the leading axes are batch
        dimensions).
    significant_indices:
        Integer array of length ``M`` holding the node ids of the significant
        neighbours (the index set ``I``).
    """
    significant_indices = np.asarray(significant_indices, dtype=np.int64)
    if slim_adjacency.shape[-1] != significant_indices.shape[0]:
        raise ValueError(
            f"slim adjacency has {slim_adjacency.shape[-1]} columns but "
            f"{significant_indices.shape[0]} significant indices were given"
        )
    gathered = signal[..., significant_indices, :]
    aggregated = slim_adjacency.matmul(gathered) + signal
    # (D + I)^{-1} with D the row sums of A_s; kept differentiable so gradients
    # also flow through the normalisation, as in a PyTorch implementation.
    scale = 1.0 / (slim_adjacency.sum(axis=-1, keepdims=True) + 1.0)
    return aggregated * scale


def slim_graph_conv(
    slim_adjacency: Tensor,
    signal: Tensor,
    significant_indices: np.ndarray,
    weights: list[Tensor],
) -> Tensor:
    """Full fast graph convolution of Eq. 9: ``Σ_j W_j · diffusionʲ(X)``.

    ``weights[j]`` maps the ``D``-dimensional diffused features of hop ``j``
    to the output width; hop 0 is the identity diffusion (the raw signal).
    """
    if not weights:
        raise ValueError("slim_graph_conv needs at least one weight matrix")
    current = signal
    output = current.matmul(weights[0])
    for hop_weight in weights[1:]:
        current = slim_diffusion_step(slim_adjacency, current, significant_indices)
        output = output + current.matmul(hop_weight)
    return output
