"""Forecasting metrics used throughout the evaluation (masked MAE / RMSE / MAPE)."""

from repro.metrics.forecasting import (
    HorizonMetrics,
    horizon_metrics,
    mae,
    mape,
    metrics_dict,
    rmse,
)

__all__ = ["mae", "rmse", "mape", "metrics_dict", "horizon_metrics", "HorizonMetrics"]
