"""Forecasting metrics used throughout the evaluation (masked MAE / RMSE / MAPE)."""

from repro.metrics.forecasting import (
    HorizonMetrics,
    enforce_quantile_monotonicity,
    horizon_metrics,
    mae,
    mape,
    metrics_dict,
    pinball,
    quantile_coverage,
    rmse,
)

__all__ = [
    "mae",
    "rmse",
    "mape",
    "pinball",
    "quantile_coverage",
    "enforce_quantile_monotonicity",
    "metrics_dict",
    "horizon_metrics",
    "HorizonMetrics",
]
