"""Masked forecasting metrics on plain NumPy arrays.

The paper reports MAE, RMSE and MAPE at horizons 3, 6 and 12, excluding
missing readings (encoded as zeros) from every metric — the convention
introduced by DCRNN for METR-LA and kept by all follow-up work.  These
functions mirror :mod:`repro.nn.loss` but operate on arrays (no autodiff) so
the evaluation harness stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _mask(target: np.ndarray, null_value: float | None) -> np.ndarray:
    if null_value is None:
        return np.ones_like(target, dtype=bool)
    if np.isnan(null_value):
        return ~np.isnan(target)
    return ~np.isclose(target, null_value)


def mae(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Masked mean absolute error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.abs(prediction[mask] - target[mask]).mean())


def rmse(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Masked root mean squared error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.sqrt(np.square(prediction[mask] - target[mask]).mean()))


def mape(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0,
         epsilon: float = 1e-5) -> float:
    """Masked mean absolute percentage error (returned as a fraction, not %)."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    denominator = np.maximum(np.abs(target[mask]), epsilon)
    return float((np.abs(prediction[mask] - target[mask]) / denominator).mean())


def metrics_dict(prediction: np.ndarray, target: np.ndarray,
                 null_value: float | None = 0.0) -> dict[str, float]:
    """All three metrics in one dictionary."""
    return {
        "mae": mae(prediction, target, null_value),
        "rmse": rmse(prediction, target, null_value),
        "mape": mape(prediction, target, null_value),
    }


@dataclass(frozen=True)
class HorizonMetrics:
    """Metrics of one model at one forecasting horizon."""

    horizon: int
    mae: float
    rmse: float
    mape: float

    def as_dict(self) -> dict[str, float]:
        return {"mae": self.mae, "rmse": self.rmse, "mape": self.mape}


def horizon_metrics(
    prediction: np.ndarray,
    target: np.ndarray,
    horizons: tuple[int, ...] = (3, 6, 12),
    null_value: float | None = 0.0,
) -> list[HorizonMetrics]:
    """Per-horizon metrics for stacked forecasts.

    ``prediction`` and ``target`` have shape ``(samples, f, N, …)``; horizon
    ``k`` refers to the k-th forecast step (1-based), matching the
    "Horizon 3 / 6 / 12" columns of the paper's tables.
    """
    prediction, target = np.asarray(prediction), np.asarray(target)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    results = []
    max_horizon = prediction.shape[1]
    for horizon in horizons:
        if horizon < 1 or horizon > max_horizon:
            raise ValueError(f"horizon {horizon} outside the forecast range 1..{max_horizon}")
        step = horizon - 1
        results.append(
            HorizonMetrics(
                horizon=horizon,
                mae=mae(prediction[:, step], target[:, step], null_value),
                rmse=rmse(prediction[:, step], target[:, step], null_value),
                mape=mape(prediction[:, step], target[:, step], null_value),
            )
        )
    return results
