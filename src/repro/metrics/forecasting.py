"""Masked forecasting metrics on plain NumPy arrays.

The paper reports MAE, RMSE and MAPE at horizons 3, 6 and 12, excluding
missing readings (encoded as zeros) from every metric — the convention
introduced by DCRNN for METR-LA and kept by all follow-up work.  These
functions mirror :mod:`repro.nn.loss` but operate on arrays (no autodiff) so
the evaluation harness stays cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _mask(target: np.ndarray, null_value: float | None) -> np.ndarray:
    if null_value is None:
        return np.ones_like(target, dtype=bool)
    if np.isnan(null_value):
        return ~np.isnan(target)
    return ~np.isclose(target, null_value)


def mae(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Masked mean absolute error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.abs(prediction[mask] - target[mask]).mean())


def rmse(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0) -> float:
    """Masked root mean squared error."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    return float(np.sqrt(np.square(prediction[mask] - target[mask]).mean()))


def mape(prediction: np.ndarray, target: np.ndarray, null_value: float | None = 0.0,
         epsilon: float = 1e-5) -> float:
    """Masked mean absolute percentage error (returned as a fraction, not %)."""
    prediction, target = np.asarray(prediction), np.asarray(target)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    denominator = np.maximum(np.abs(target[mask]), epsilon)
    return float((np.abs(prediction[mask] - target[mask]) / denominator).mean())


def pinball(prediction: np.ndarray, target: np.ndarray, quantiles,
            null_value: float | None = 0.0) -> float:
    """Masked mean pinball loss over a trailing quantile axis.

    ``prediction`` has one channel per quantile in its last axis; ``target``
    a single trailing channel.  Averages over observed entries and quantiles
    (matching :func:`repro.nn.loss.masked_pinball`).
    """
    prediction, target = np.asarray(prediction), np.asarray(target)
    quantiles = np.asarray(quantiles, dtype=np.float64).reshape(-1)
    mask = _mask(target, null_value)
    if not mask.any():
        return float("nan")
    diff = target - prediction  # broadcasts (…, 1) against (…, Q)
    per_entry = np.where(diff >= 0.0, quantiles * diff, (quantiles - 1.0) * diff)
    valid = np.broadcast_to(mask, per_entry.shape)
    return float(per_entry[valid].mean())


def quantile_coverage(prediction: np.ndarray, target: np.ndarray, quantiles,
                      null_value: float | None = 0.0) -> dict[float, float]:
    """Empirical coverage of every quantile head: ``P(target <= prediction_q)``.

    A calibrated head predicts coverage ≈ q; the streaming accumulator in
    :class:`repro.evaluation.streaming.StreamingMetrics` reports the same
    quantity batch-by-batch.
    """
    prediction, target = np.asarray(prediction), np.asarray(target)
    quantiles = np.asarray(quantiles, dtype=np.float64).reshape(-1)
    mask = _mask(target, null_value)
    if not mask.any():
        return {float(q): float("nan") for q in quantiles}
    covered = (target <= prediction) & np.broadcast_to(mask, prediction.shape)
    flat_valid = float(mask.sum())
    counts = covered.reshape(-1, quantiles.size).sum(axis=0)
    return {float(q): float(c / flat_valid) for q, c in zip(quantiles, counts)}


def enforce_quantile_monotonicity(prediction: np.ndarray, axis: int = -1) -> np.ndarray:
    """Sort the quantile axis, fixing any quantile crossing.

    Rearranging crossed quantile predictions into non-decreasing order never
    increases the pinball loss (the classical non-crossing repair), and
    makes the coverage curve monotone in ``q``.  Returns a sorted copy.
    """
    return np.sort(np.asarray(prediction), axis=axis)


def metrics_dict(prediction: np.ndarray, target: np.ndarray,
                 null_value: float | None = 0.0) -> dict[str, float]:
    """All three metrics in one dictionary."""
    return {
        "mae": mae(prediction, target, null_value),
        "rmse": rmse(prediction, target, null_value),
        "mape": mape(prediction, target, null_value),
    }


@dataclass(frozen=True)
class HorizonMetrics:
    """Metrics of one model at one forecasting horizon."""

    horizon: int
    mae: float
    rmse: float
    mape: float

    def as_dict(self) -> dict[str, float]:
        return {"mae": self.mae, "rmse": self.rmse, "mape": self.mape}


def horizon_metrics(
    prediction: np.ndarray,
    target: np.ndarray,
    horizons: tuple[int, ...] = (3, 6, 12),
    null_value: float | None = 0.0,
) -> list[HorizonMetrics]:
    """Per-horizon metrics for stacked forecasts.

    ``prediction`` and ``target`` have shape ``(samples, f, N, …)``; horizon
    ``k`` refers to the k-th forecast step (1-based), matching the
    "Horizon 3 / 6 / 12" columns of the paper's tables.
    """
    prediction, target = np.asarray(prediction), np.asarray(target)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    results = []
    max_horizon = prediction.shape[1]
    for horizon in horizons:
        if horizon < 1 or horizon > max_horizon:
            raise ValueError(f"horizon {horizon} outside the forecast range 1..{max_horizon}")
        step = horizon - 1
        results.append(
            HorizonMetrics(
                horizon=horizon,
                mae=mae(prediction[:, step], target[:, step], null_value),
                rmse=rmse(prediction[:, step], target[:, step], null_value),
                mape=mape(prediction[:, step], target[:, step], null_value),
            )
        )
    return results
