"""Neural-network building blocks on top of the ``repro.tensor`` autodiff engine.

The module hierarchy mirrors the familiar ``torch.nn`` layout so that the
SAGDFN model and the baselines read like their published reference
implementations:

* :class:`Module` / :class:`Parameter` — parameter registration, traversal,
  ``state_dict`` round-tripping and train/eval mode switching.
* Layers: :class:`Linear`, :class:`Sequential`, :class:`Embedding`,
  :class:`Dropout`, :class:`LayerNorm`, :class:`BatchNorm1d`,
  :class:`GRUCell`, :class:`LSTMCell`, :class:`MultiHeadAttention`,
  :class:`Conv1d`, :class:`FeedForward`.
* Losses: MAE / MSE / Huber / MAPE, with masked variants following the
  missing-data convention of the traffic-forecasting literature.
"""

from repro.nn.module import Module, Parameter, ModuleList, Sequential
from repro.nn.linear import Linear, FeedForward
from repro.nn.embedding import Embedding
from repro.nn.activations import ReLU, Sigmoid, Tanh, LeakyReLU
from repro.nn.dropout import Dropout
from repro.nn.normalization import BatchNorm1d, LayerNorm
from repro.nn.rnn import GRUCell, LSTMCell, RNNCell, GRU, LSTM
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.conv import Conv1d, CausalConv1d, GatedTemporalConv
from repro.nn import init
from repro.nn.loss import (
    l1_loss,
    mse_loss,
    huber_loss,
    mape_loss,
    pinball_loss,
    masked_pinball,
    masked_mae,
    masked_mse,
    masked_rmse,
    masked_mape,
    L1Loss,
    MSELoss,
    HuberLoss,
)

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "FeedForward",
    "Embedding",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "Dropout",
    "LayerNorm",
    "BatchNorm1d",
    "RNNCell",
    "GRUCell",
    "LSTMCell",
    "GRU",
    "LSTM",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "Conv1d",
    "CausalConv1d",
    "GatedTemporalConv",
    "init",
    "l1_loss",
    "mse_loss",
    "huber_loss",
    "mape_loss",
    "pinball_loss",
    "masked_pinball",
    "masked_mae",
    "masked_mse",
    "masked_rmse",
    "masked_mape",
    "L1Loss",
    "MSELoss",
    "HuberLoss",
]
