"""Activation functions as stateless :class:`~repro.nn.module.Module` wrappers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)
