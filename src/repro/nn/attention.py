"""Scaled dot-product and multi-head attention.

Used by the GMAN-style and Transformer-style baselines (Table III and IX);
the paper's own Sparse Spatial Multi-Head Attention lives in
``repro.core.attention`` because it scores *node pairs* with feed-forward
networks instead of dot products.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.sparse import alpha_entmax
from repro.tensor import Tensor


def scaled_dot_product_attention(
    query: Tensor, key: Tensor, value: Tensor, mask: np.ndarray | None = None, alpha: float = 1.0
) -> Tensor:
    """Attention ``normalise(Q Kᵀ / √d) V`` with optional additive mask.

    ``alpha`` selects the normaliser: 1.0 is softmax, larger values use the
    sparse α-entmax family.
    """
    d_k = query.shape[-1]
    scores = query.matmul(key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        scores = scores + Tensor(np.where(mask, 0.0, -1e9))
    weights = alpha_entmax(scores, alpha=alpha, axis=-1)
    return weights.matmul(value)


class MultiHeadAttention(Module):
    """Standard multi-head attention over the last two axes of ``(B, T, D)``."""

    def __init__(self, model_dim: int, num_heads: int, alpha: float = 1.0, seed: int | None = None):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError("model_dim must be divisible by num_heads")
        base = 0 if seed is None else seed
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.alpha = alpha
        self.query_proj = Linear(model_dim, model_dim, seed=base)
        self.key_proj = Linear(model_dim, model_dim, seed=base + 1)
        self.value_proj = Linear(model_dim, model_dim, seed=base + 2)
        self.output_proj = Linear(model_dim, model_dim, seed=base + 3)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        return x.reshape(batch, steps, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, steps, dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, steps, heads * dim)

    def forward(self, query: Tensor, key: Tensor | None = None, value: Tensor | None = None,
                mask: np.ndarray | None = None) -> Tensor:
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))
        attended = scaled_dot_product_attention(q, k, v, mask=mask, alpha=self.alpha)
        return self.output_proj(self._merge_heads(attended))
