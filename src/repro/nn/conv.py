"""Temporal (1-D) convolutions, including dilated/causal and gated variants.

These are the building blocks of the Graph WaveNet / MTGNN baselines, whose
temporal modules are stacks of dilated causal convolutions with gated
activations (tanh ⊙ sigmoid).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class Conv1d(Module):
    """1-D convolution over the last axis of a ``(B, C_in, T)`` input.

    Implemented as a sum of shifted matrix multiplications, which keeps the
    backward pass entirely inside the autodiff engine.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        bias: bool = True,
        seed: int | None = None,
    ):
        super().__init__()
        if kernel_size < 1 or dilation < 1:
            raise ValueError("kernel_size and dilation must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        rng = spawn_rng(seed)
        self.weight = Parameter(
            init.xavier_uniform((kernel_size, in_channels, out_channels), rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

    @property
    def receptive_field(self) -> int:
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expects (batch, {self.in_channels}, time) input, got {x.shape}"
            )
        batch, _, steps = x.shape
        out_steps = steps - self.receptive_field + 1
        if out_steps <= 0:
            raise ValueError(
                f"input of length {steps} is shorter than the receptive field "
                f"{self.receptive_field}"
            )
        # (B, C_in, T) -> (B, T, C_in) so each tap is a matmul on the last axis.
        x_t = x.transpose(0, 2, 1)
        terms = []
        for k in range(self.kernel_size):
            start = k * self.dilation
            window = x_t[:, start : start + out_steps, :]
            terms.append(window.matmul(self.weight[k]))
        out = terms[0]
        for term in terms[1:]:
            out = out + term
        if self.bias is not None:
            out = out + self.bias
        return out.transpose(0, 2, 1)


class CausalConv1d(Module):
    """Dilated convolution with left zero-padding so output length equals input length."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        seed: int | None = None,
    ):
        super().__init__()
        self.conv = Conv1d(in_channels, out_channels, kernel_size, dilation=dilation, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        pad = self.conv.receptive_field - 1
        padded = x.pad(((0, 0), (0, 0), (pad, 0)))
        return self.conv(padded)


class GatedTemporalConv(Module):
    """Gated dilated convolution ``tanh(conv_f(x)) ⊙ sigmoid(conv_g(x))``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        seed: int | None = None,
    ):
        super().__init__()
        base = 0 if seed is None else seed
        self.filter_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, seed=base)
        self.gate_conv = CausalConv1d(in_channels, out_channels, kernel_size, dilation, seed=base + 1)

    def forward(self, x: Tensor) -> Tensor:
        return self.filter_conv(x).tanh() * self.gate_conv(x).sigmoid()
