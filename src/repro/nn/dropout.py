"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class Dropout(Module):
    """Randomly zero elements with probability ``p`` during training.

    Uses the "inverted" formulation (activations are scaled by ``1/(1-p)`` at
    training time) so evaluation is the identity.
    """

    def __init__(self, p: float = 0.1, seed: int | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = spawn_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)
