"""Embedding lookup table."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors.

    This is how SAGDFN, AGCRN, MTGNN, and Graph WaveNet represent node
    (sensor) identities; the rows are learned end-to-end.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: int | None = None):
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding sizes must be positive")
        rng = spawn_rng(seed)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 1.0 / np.sqrt(embedding_dim),
                                           size=(num_embeddings, embedding_dim)), name="weight")

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]

    def all(self) -> Tensor:
        """Return the whole table as a differentiable ``(num_embeddings, dim)`` tensor."""
        return self.weight
