"""Weight initialisation schemes (Glorot/Xavier, Kaiming/He, uniform, constant)."""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) uniform initialisation for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
