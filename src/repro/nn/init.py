"""Weight initialisation schemes (Glorot/Xavier, Kaiming/He, uniform, constant).

Every initialiser returns an array in the engine's policy dtype
(:func:`repro.tensor.get_default_dtype`) unless an explicit ``dtype`` is
given, so models built under ``set_default_dtype("float32")`` come out
float32 end-to-end without a second cast at :class:`Parameter` creation.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dtype import get_default_dtype


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def _cast(array: np.ndarray, dtype) -> np.ndarray:
    return array.astype(dtype if dtype is not None else get_default_dtype(), copy=False)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                   dtype=None) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                  dtype=None) -> np.ndarray:
    """Glorot & Bengio (2010) normal initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape), dtype)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, dtype=None) -> np.ndarray:
    """He et al. (2015) uniform initialisation for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-bound, bound, size=shape), dtype)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, low: float = -0.1,
            high: float = 0.1, dtype=None) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return _cast(rng.uniform(low, high, size=shape), dtype)


def zeros(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=dtype if dtype is not None else get_default_dtype())


def ones(shape: tuple[int, ...], dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=dtype if dtype is not None else get_default_dtype())
