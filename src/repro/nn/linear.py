"""Affine layers: :class:`Linear` and the two-layer :class:`FeedForward`."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.utils.seed import spawn_rng


class Linear(Module):
    """Affine transformation ``y = x W + b`` applied to the last axis.

    Parameters
    ----------
    in_features / out_features:
        Input and output widths of the last axis.
    bias:
        Whether to learn an additive bias.
    seed:
        Seed of the Xavier-uniform initialiser (deterministic by default).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int | None = None):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = spawn_rng(seed)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dimension {self.in_features}, got shape {x.shape}"
            )
        out = x.matmul(self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out


class FeedForward(Module):
    """Two-layer perceptron ``Linear → activation → Linear``.

    This is the ``FFN_p`` used by the Sparse Spatial Multi-Head Attention
    module (Eq. 2 of the paper) to score node/neighbour pairs.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        activation: str = "relu",
        seed: int | None = None,
    ):
        super().__init__()
        base = 0 if seed is None else seed
        self.input_layer = Linear(in_features, hidden_features, seed=base)
        self.output_layer = Linear(hidden_features, out_features, seed=base + 1)
        if activation not in {"relu", "tanh", "sigmoid"}:
            raise ValueError(f"unsupported activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.input_layer(x)
        if self.activation == "relu":
            hidden = hidden.relu()
        elif self.activation == "tanh":
            hidden = hidden.tanh()
        else:
            hidden = hidden.sigmoid()
        return self.output_layer(hidden)
