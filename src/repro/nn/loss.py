"""Forecasting losses: MAE, MSE, Huber, MAPE, and masked variants.

The traffic-forecasting literature (DCRNN, Graph WaveNet, SAGDFN) treats
zero readings as missing values and excludes them from both the training
loss and evaluation metrics; the ``masked_*`` functions implement that
convention and are used by the trainer and the evaluation harness.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the training loss of Eq. 11."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear for residuals larger than ``delta``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = (prediction - target).abs()
    quadratic = 0.5 * diff * diff
    linear = delta * diff - 0.5 * delta * delta
    mask = diff.data <= delta
    from repro.tensor import where

    return where(mask, quadratic, linear).mean()


def mape_loss(prediction: Tensor, target: Tensor, epsilon: float = 1e-5) -> Tensor:
    """Mean absolute percentage error (targets close to zero are floored)."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    denominator = Tensor(np.maximum(np.abs(target.data), epsilon))
    return ((prediction - target).abs() / denominator).mean()


def _quantile_array(quantiles) -> np.ndarray:
    quantiles = np.asarray(quantiles, dtype=np.float64).reshape(-1)
    if quantiles.size == 0:
        raise ValueError("quantiles must be non-empty")
    if np.any(quantiles <= 0.0) or np.any(quantiles >= 1.0):
        raise ValueError(f"quantiles must lie strictly inside (0, 1): {quantiles.tolist()}")
    return quantiles


def pinball_loss(prediction: Tensor, target: Tensor, quantiles) -> Tensor:
    """Mean pinball (quantile) loss over a trailing quantile axis.

    ``prediction`` carries one channel per quantile in its last axis;
    ``target`` has a single trailing channel and broadcasts against it.  The
    per-entry loss is ``max(q·(t − p), (q − 1)·(t − p))`` — at ``q = 0.5``
    this is exactly ``0.5·|t − p|``, so a lone median head reduces to half
    the MAE.
    """
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    quantiles = _quantile_array(quantiles)
    if prediction.shape[-1] != quantiles.size:
        raise ValueError(
            f"prediction has {prediction.shape[-1]} quantile channels, "
            f"expected {quantiles.size}"
        )
    diff = target - prediction  # broadcasts (…, 1) against (…, Q)
    from repro.tensor import where

    q = Tensor(quantiles)
    return where(diff.data >= 0.0, q * diff, (q - 1.0) * diff).mean()


def masked_pinball(
    prediction: Tensor, target: Tensor, quantiles, null_value: float | None = 0.0
) -> Tensor:
    """Pinball loss over entries whose target differs from ``null_value``.

    The mask is derived from the single-channel target and broadcast over
    the quantile axis; masked entries contribute neither loss nor gradient.
    The result averages over the observed entries *and* the quantile axis,
    so ``masked_pinball(p, t, (0.5,)) == 0.5 · masked_mae(p, t)``.
    """
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    quantiles = _quantile_array(quantiles)
    if prediction.shape[-1] != quantiles.size:
        raise ValueError(
            f"prediction has {prediction.shape[-1]} quantile channels, "
            f"expected {quantiles.size}"
        )
    cleaned, mask = _masked_target(target, null_value)
    diff = cleaned - prediction
    from repro.tensor import where

    q = Tensor(quantiles)
    per_entry = where(diff.data >= 0.0, q * diff, (q - 1.0) * diff)
    return (per_entry * Tensor(mask)).mean()


def _masked_target(target: Tensor, null_value: float | None) -> tuple[Tensor, np.ndarray]:
    """Return the target with NaNs removed and the normalised inclusion mask.

    The mask is scaled so that multiplying element-wise and taking ``mean()``
    averages only over the observed entries (the DCRNN convention).
    """
    if null_value is None:
        mask = np.ones_like(target.data)
    elif np.isnan(null_value):
        mask = (~np.isnan(target.data)).astype(float)
    else:
        mask = (~np.isclose(target.data, null_value)).astype(float)
    total = mask.mean()
    mask = np.zeros_like(mask) if total <= 0 else mask / total
    cleaned = Tensor(np.nan_to_num(target.data, nan=0.0))
    return cleaned, mask


def masked_mae(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """MAE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    return ((prediction - cleaned).abs() * Tensor(mask)).mean()


def masked_mse(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """MSE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    diff = prediction - cleaned
    return (diff * diff * Tensor(mask)).mean()


def masked_rmse(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """RMSE over entries whose target differs from ``null_value``."""
    return masked_mse(prediction, target, null_value=null_value).sqrt()


def masked_mape(prediction: Tensor, target: Tensor, null_value: float | None = 0.0,
                epsilon: float = 1e-5) -> Tensor:
    """MAPE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    denominator = Tensor(np.maximum(np.abs(cleaned.data), epsilon))
    return ((prediction - cleaned).abs() / denominator * Tensor(mask)).mean()


class L1Loss(Module):
    """Module wrapper around :func:`l1_loss`."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return l1_loss(prediction, target)


class MSELoss(Module):
    """Module wrapper around :func:`mse_loss`."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mse_loss(prediction, target)


class HuberLoss(Module):
    """Module wrapper around :func:`huber_loss`."""

    def __init__(self, delta: float = 1.0):
        super().__init__()
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return huber_loss(prediction, target, delta=self.delta)
