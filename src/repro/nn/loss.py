"""Forecasting losses: MAE, MSE, Huber, MAPE, and masked variants.

The traffic-forecasting literature (DCRNN, Graph WaveNet, SAGDFN) treats
zero readings as missing values and excludes them from both the training
loss and evaluation metrics; the ``masked_*`` functions implement that
convention and are used by the trainer and the evaluation harness.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the training loss of Eq. 11."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear for residuals larger than ``delta``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    diff = (prediction - target).abs()
    quadratic = 0.5 * diff * diff
    linear = delta * diff - 0.5 * delta * delta
    mask = diff.data <= delta
    from repro.tensor import where

    return where(mask, quadratic, linear).mean()


def mape_loss(prediction: Tensor, target: Tensor, epsilon: float = 1e-5) -> Tensor:
    """Mean absolute percentage error (targets close to zero are floored)."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    denominator = Tensor(np.maximum(np.abs(target.data), epsilon))
    return ((prediction - target).abs() / denominator).mean()


def _masked_target(target: Tensor, null_value: float | None) -> tuple[Tensor, np.ndarray]:
    """Return the target with NaNs removed and the normalised inclusion mask.

    The mask is scaled so that multiplying element-wise and taking ``mean()``
    averages only over the observed entries (the DCRNN convention).
    """
    if null_value is None:
        mask = np.ones_like(target.data)
    elif np.isnan(null_value):
        mask = (~np.isnan(target.data)).astype(float)
    else:
        mask = (~np.isclose(target.data, null_value)).astype(float)
    total = mask.mean()
    mask = np.zeros_like(mask) if total <= 0 else mask / total
    cleaned = Tensor(np.nan_to_num(target.data, nan=0.0))
    return cleaned, mask


def masked_mae(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """MAE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    return ((prediction - cleaned).abs() * Tensor(mask)).mean()


def masked_mse(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """MSE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    diff = prediction - cleaned
    return (diff * diff * Tensor(mask)).mean()


def masked_rmse(prediction: Tensor, target: Tensor, null_value: float | None = 0.0) -> Tensor:
    """RMSE over entries whose target differs from ``null_value``."""
    return masked_mse(prediction, target, null_value=null_value).sqrt()


def masked_mape(prediction: Tensor, target: Tensor, null_value: float | None = 0.0,
                epsilon: float = 1e-5) -> Tensor:
    """MAPE over entries whose target differs from ``null_value``."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    cleaned, mask = _masked_target(target, null_value)
    denominator = Tensor(np.maximum(np.abs(cleaned.data), epsilon))
    return ((prediction - cleaned).abs() / denominator * Tensor(mask)).mean()


class L1Loss(Module):
    """Module wrapper around :func:`l1_loss`."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return l1_loss(prediction, target)


class MSELoss(Module):
    """Module wrapper around :func:`mse_loss`."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mse_loss(prediction, target)


class HuberLoss(Module):
    """Module wrapper around :func:`huber_loss`."""

    def __init__(self, delta: float = 1.0):
        super().__init__()
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return huber_loss(prediction, target, delta=self.delta)
