"""Parameter registration and the :class:`Module` base class."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`~repro.tensor.Tensor` flagged as a learnable parameter.

    Any :class:`Parameter` assigned as an attribute of a :class:`Module` is
    automatically registered and returned by :meth:`Module.parameters`.
    """

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, name={self.name!r})"


class Module:
    """Base class for all neural-network layers and models.

    Subclasses define parameters and sub-modules as attributes in
    ``__init__`` and implement :meth:`forward`.  The base class provides
    parameter traversal, gradient zeroing, ``state_dict`` serialisation and
    train/eval mode propagation (used by :class:`~repro.nn.dropout.Dropout`
    and :class:`~repro.nn.normalization.BatchNorm1d`).
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and its children."""
        seen: set[int] = set()
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{key}.")

    def parameters(self) -> list[Parameter]:
        """Return all unique parameters of this module (deduplicated by identity)."""
        result: list[Parameter] = []
        seen: set[int] = set()
        for _, parameter in self.named_parameters():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                result.append(parameter)
        return result

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all of its descendants."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters, used for the Table X comparison."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters previously captured by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()


class ModuleList(Module):
    """A list of sub-modules whose parameters are registered with the parent."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self.items: list[Module] = list(modules) if modules else []

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Sequential(Module):
    """Feed the input through each sub-module in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.items = ModuleList(list(modules))

    def forward(self, x):
        for module in self.items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
