"""Parameter registration and the :class:`Module` base class."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`~repro.tensor.Tensor` flagged as a learnable parameter.

    Any :class:`Parameter` assigned as an attribute of a :class:`Module` is
    automatically registered and returned by :meth:`Module.parameters`.
    """

    def __init__(self, data, name: str | None = None, dtype=None):
        super().__init__(data, requires_grad=True, name=name, dtype=dtype)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, name={self.name!r})"


class Module:
    """Base class for all neural-network layers and models.

    Subclasses define parameters and sub-modules as attributes in
    ``__init__`` and implement :meth:`forward`.  The base class provides
    parameter traversal, gradient zeroing, ``state_dict`` serialisation and
    train/eval mode propagation (used by :class:`~repro.nn.dropout.Dropout`
    and :class:`~repro.nn.normalization.BatchNorm1d`).
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and its children."""
        seen: set[int] = set()
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{key}.")

    def parameters(self) -> list[Parameter]:
        """Return all unique parameters of this module (deduplicated by identity)."""
        result: list[Parameter] = []
        seen: set[int] = set()
        for _, parameter in self.named_parameters():
            if id(parameter) not in seen:
                seen.add(id(parameter))
                result.append(parameter)
        return result

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all of its descendants."""
        for _, module in self.named_modules():
            yield module

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(prefix, module)`` pairs for this module and its descendants.

        Prefixes follow the :meth:`named_parameters` convention: the root
        module has prefix ``""`` and a child assigned as ``self.attention``
        has prefix ``"attention."``, so ``prefix + parameter_name`` is the
        key the parameter takes in :meth:`state_dict`.
        """
        yield prefix, self
        for name, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{name}.{i}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{name}.{key}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters, used for the Table X comparison."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Training state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def to(self, dtype) -> "Module":
        """Cast every parameter and floating buffer (Tensor or ndarray) to ``dtype``.

        Complements the engine-wide precision policy
        (:func:`repro.tensor.set_default_dtype`): use ``to`` to convert an
        already-built model, e.g. ``model.to(np.float32)``.
        """
        dtype = np.dtype(dtype)
        if not np.issubdtype(dtype, np.floating):
            raise ValueError(f"Module.to expects a floating dtype, got {dtype}")
        for parameter in self.parameters():
            parameter.data = parameter.data.astype(dtype, copy=False)
            if parameter.grad is not None:
                parameter.grad = parameter.grad.astype(dtype, copy=False)
        def cast(value):
            """Cast one buffer (Tensor or floating ndarray); None if untouched."""
            if isinstance(value, Parameter):
                return None  # already cast above (deduplicated by identity)
            if isinstance(value, Tensor):
                if np.issubdtype(value.data.dtype, np.floating):
                    value.data = value.data.astype(dtype, copy=False)
                return None  # mutated in place
            if isinstance(value, np.ndarray) and np.issubdtype(value.dtype, np.floating):
                return value.astype(dtype, copy=False)
            return None

        for module in self.modules():
            for name, value in vars(module).items():
                if isinstance(value, (list, tuple)):
                    items = [cast(item) if not isinstance(item, Module) else None
                             for item in value]
                    if any(item is not None for item in items):
                        rebuilt = [new if new is not None else old
                                   for old, new in zip(value, items)]
                        setattr(module, name, type(value)(rebuilt))
                elif isinstance(value, dict):
                    for key, item in value.items():
                        if not isinstance(item, Module):
                            replacement = cast(item)
                            if replacement is not None:
                                value[key] = replacement
                else:
                    replacement = cast(value)
                    if replacement is not None:
                        setattr(module, name, replacement)
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of every parameter keyed by its dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def _upgrade_state_dict(
        self, prefix: str, state: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Hook for migrating legacy checkpoint keys to the current layout.

        Called by :meth:`load_state_dict` for every module in the tree with
        that module's :meth:`named_modules` prefix.  Subclasses that change
        their parameterisation override this to rewrite old keys in ``state``
        (e.g. stacking per-head weights); the default is the identity.
        """
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters previously captured by :meth:`state_dict`.

        Legacy checkpoints are transparently upgraded via the per-module
        :meth:`_upgrade_state_dict` hooks before key matching.
        """
        state = dict(state)
        for prefix, module in self.named_modules():
            state = module._upgrade_state_dict(prefix, state)
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=parameter.data.dtype)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()


class ModuleList(Module):
    """A list of sub-modules whose parameters are registered with the parent."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self.items: list[Module] = list(modules) if modules else []

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")


class Sequential(Module):
    """Feed the input through each sub-module in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.items = ModuleList(list(modules))

    def forward(self, x):
        for module in self.items:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]
