"""Normalisation layers: LayerNorm and BatchNorm1d."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape), name="weight")
        self.bias = Parameter(np.zeros(normalized_shape), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + self.eps).sqrt()
        return normalised * self.weight + self.bias


class BatchNorm1d(Module):
    """Batch normalisation over the first axis for ``(batch, features)`` inputs.

    Keeps running statistics used at evaluation time, matching the standard
    exponential-moving-average formulation.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features), name="weight")
        self.bias = Parameter(np.zeros(num_features), name="bias")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (batch, {self.num_features}) input, got {x.shape}"
            )
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            variance = (centered * centered).mean(axis=0, keepdims=True)
            normalised = centered / (variance + self.eps).sqrt()
        else:
            normalised = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normalised * self.weight + self.bias
