"""Recurrent cells and sequence layers (RNN / GRU / LSTM).

The paper's forecasting module is a GRU whose dense matrix multiplications
are replaced by the fast graph convolution (``OneStepFastGConv``); the plain
cells here are used by the LSTM/GRU baselines and as reference behaviour in
tests.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import Tensor, concat


class RNNCell(Module):
    """Vanilla Elman recurrence ``h' = tanh(W [x, h] + b)``."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.transform = Linear(input_size + hidden_size, hidden_size, seed=seed)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return self.transform(concat([x, h], axis=-1)).tanh()


class GRUCell(Module):
    """Gated Recurrent Unit cell (Cho et al., 2014).

    Implements the update/reset-gate recurrence of Eq. 10 of the paper with
    ordinary matrix multiplications; the SAGDFN variant substitutes the graph
    convolution operator for each ``Linear``.
    """

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None):
        super().__init__()
        base = 0 if seed is None else seed
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_gate = Linear(input_size + hidden_size, hidden_size, seed=base)
        self.update_gate = Linear(input_size + hidden_size, hidden_size, seed=base + 1)
        self.candidate = Linear(input_size + hidden_size, hidden_size, seed=base + 2)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = concat([x, h], axis=-1)
        reset = self.reset_gate(combined).sigmoid()
        update = self.update_gate(combined).sigmoid()
        candidate = self.candidate(concat([x, reset * h], axis=-1)).tanh()
        return update * h + (1.0 - update) * candidate

    def initial_state(self, batch_size: int) -> Tensor:
        dtype = self.update_gate.weight.dtype
        return Tensor(np.zeros((batch_size, self.hidden_size)), dtype=dtype)


class LSTMCell(Module):
    """Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997)."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None):
        super().__init__()
        base = 0 if seed is None else seed
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_gate = Linear(input_size + hidden_size, hidden_size, seed=base)
        self.forget_gate = Linear(input_size + hidden_size, hidden_size, seed=base + 1)
        self.cell_gate = Linear(input_size + hidden_size, hidden_size, seed=base + 2)
        self.output_gate = Linear(input_size + hidden_size, hidden_size, seed=base + 3)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        combined = concat([x, h], axis=-1)
        i = self.input_gate(combined).sigmoid()
        f = self.forget_gate(combined).sigmoid()
        g = self.cell_gate(combined).tanh()
        o = self.output_gate(combined).sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        dtype = self.forget_gate.weight.dtype
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros.copy(), dtype=dtype), Tensor(zeros.copy(), dtype=dtype)


class GRU(Module):
    """Single-layer GRU unrolled over the time axis of a ``(B, T, F)`` input."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, seed=seed)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, h: Tensor | None = None) -> tuple[Tensor, Tensor]:
        """Return ``(outputs, final_state)`` with outputs shaped ``(B, T, H)``."""
        batch, steps, _ = x.shape
        if h is None:
            h = self.cell.initial_state(batch)
        outputs = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        from repro.tensor import stack

        return stack(outputs, axis=1), h


class LSTM(Module):
    """Single-layer LSTM unrolled over the time axis of a ``(B, T, F)`` input."""

    def __init__(self, input_size: int, hidden_size: int, seed: int | None = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, seed=seed)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, steps, _ = x.shape
        if state is None:
            state = self.cell.initial_state(batch)
        h, c = state
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        from repro.tensor import stack

        return stack(outputs, axis=1), (h, c)
