"""Optimisers, learning-rate schedulers and gradient clipping."""

from repro.optim.optimizer import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.clip import clip_grad_norm, clip_grad_value
from repro.optim.lr_scheduler import CosineAnnealingLR, MultiStepLR, ReduceLROnPlateau, StepLR

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "clip_grad_value",
    "StepLR",
    "MultiStepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
]
