"""Adam optimiser (Kingma & Ba, 2015) — the optimiser used by the paper."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first/second moment estimates.

    The paper trains SAGDFN with Adam; defaults match the reference
    configuration (lr 1e-3, β₁ = 0.9, β₂ = 0.999).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            # Keep moment buffers in the parameter's dtype, so a model cast
            # with Module.to(float32) is not silently promoted back to
            # float64 by stale float64 optimizer state on the first step.
            if self._m[index].dtype != parameter.data.dtype:
                self._m[index] = self._m[index].astype(parameter.data.dtype)
                self._v[index] = self._v[index].astype(parameter.data.dtype)
            m, v = self._m[index], self._v[index]
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
