"""Gradient clipping utilities."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so that their global L2 norm is at most ``max_norm``.

    Returns the norm *before* clipping, which trainers typically log.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total


def clip_grad_value(parameters: Iterable[Parameter], clip_value: float) -> None:
    """Clamp every gradient element into ``[-clip_value, clip_value]``."""
    for parameter in parameters:
        if parameter.grad is not None:
            np.clip(parameter.grad, -clip_value, clip_value, out=parameter.grad)
