"""Learning-rate schedulers operating on an :class:`~repro.optim.Optimizer`."""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self, *args) -> None:
        raise NotImplementedError

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        exponent = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**exponent)


class MultiStepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        passed = sum(1 for milestone in self.milestones if self.epoch >= milestone)
        self.optimizer.lr = self.base_lr * (self.gamma**passed)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def step(self) -> None:
        self.epoch += 1
        progress = min(self.epoch, self.t_max) / self.t_max
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress)
        )


class ReduceLROnPlateau(_Scheduler):
    """Halve the learning rate when the monitored metric stops improving."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5, patience: int = 3,
                 min_lr: float = 1e-6):
        super().__init__(optimizer)
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = float("inf")
        self.bad_epochs = 0

    def step(self, metric: float) -> None:
        self.epoch += 1
        if metric < self.best - 1e-12:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
