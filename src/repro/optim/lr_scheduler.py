"""Learning-rate schedulers operating on an :class:`~repro.optim.Optimizer`.

Two properties distinguish these from naive implementations:

* **Chainable updates** — ``step()`` applies the *change* the schedule
  prescribes for the new epoch to the optimiser's current learning rate,
  instead of recomputing the absolute value from the ``base_lr`` captured at
  construction.  Recomputing silently stomped any learning-rate change made
  in between — by :class:`ReduceLROnPlateau`, or by the user — on the next
  ``step()``.  Without external changes the chained sequence is identical to
  the closed form.
* **Resumable state** — every scheduler implements ``state_dict()`` /
  ``load_state_dict()`` (including the optimiser's current learning rate),
  and :func:`repro.utils.checkpoint.save_bundle` can persist the state, so a
  resumed run continues the schedule where it stopped instead of restarting
  it from epoch 0.
"""

from __future__ import annotations

import math

from repro.optim.optimizer import Optimizer


class _Scheduler:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self, *args) -> None:
        raise NotImplementedError

    @property
    def lr(self) -> float:
        return self.optimizer.lr

    # ------------------------------------------------------------------ #
    # Resume
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Everything needed to resume the schedule, optimiser lr included."""
        state = {k: v for k, v in self.__dict__.items() if k != "optimizer"}
        state["lr"] = self.optimizer.lr
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict`; unknown keys raise ``KeyError``.

        Validates every key (including ``lr``) before mutating anything, so
        a mismatched state — say a ``StepLR`` record fed to a
        ``CosineAnnealingLR`` — leaves both the scheduler and the optimiser
        untouched instead of half-applied.
        """
        state = dict(state)
        if "lr" not in state:
            raise KeyError("scheduler state is missing the 'lr' key")
        unknown = [key for key in state if key != "lr" and key not in self.__dict__]
        if unknown:
            raise KeyError(f"unknown scheduler state keys {unknown!r}")
        self.optimizer.lr = float(state.pop("lr"))
        for key, value in state.items():
            setattr(self, key, value)


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        if self.epoch % self.step_size == 0:
            self.optimizer.lr = self.optimizer.lr * self.gamma


class MultiStepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: Optimizer, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        hits = self.milestones.count(self.epoch)
        if hits:
            self.optimizer.lr = self.optimizer.lr * (self.gamma**hits)


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base learning rate to ``eta_min`` over ``t_max`` epochs.

    Uses the chainable recurrence
    ``lr_t = η_min + (lr_{t-1} − η_min) · (1 + cos(πt/T)) / (1 + cos(π(t−1)/T))``,
    which reproduces the closed-form cosine exactly when the learning rate is
    never touched from outside, and scales gracefully when it is.  After
    ``t_max`` steps the learning rate is left where the cosine put it
    (``eta_min``, unless modified externally).
    """

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def step(self) -> None:
        self.epoch += 1
        if self.epoch > self.t_max:
            return
        previous = 1.0 + math.cos(math.pi * (self.epoch - 1) / self.t_max)
        current = 1.0 + math.cos(math.pi * self.epoch / self.t_max)
        self.optimizer.lr = self.eta_min + (self.optimizer.lr - self.eta_min) * (
            current / previous
        )


class ReduceLROnPlateau(_Scheduler):
    """Halve the learning rate when the monitored metric stops improving."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5, patience: int = 3,
                 min_lr: float = 1e-6):
        super().__init__(optimizer)
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = float("inf")
        self.bad_epochs = 0

    def step(self, metric: float) -> None:
        self.epoch += 1
        if metric < self.best - 1e-12:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
