"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

from repro.nn.module import Parameter


class Optimizer:
    """Common interface: holds the parameter list and the learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        raise NotImplementedError
