"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Vanilla / momentum SGD.

    Parameters
    ----------
    momentum:
        Classical (heavy-ball) momentum coefficient; 0 disables it.
    weight_decay:
        L2 penalty added to the gradient before the update.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            # Align momentum state with the parameter dtype (see Adam.step).
            if self._velocity[index].dtype != parameter.data.dtype:
                self._velocity[index] = self._velocity[index].astype(parameter.data.dtype)
            velocity = self._velocity[index]
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update
