"""Inference serving layer: frozen-graph forecasting at request time.

SAGDFN freezes its significant-neighbour index set after convergence
iteration ``r`` (Algorithm 2), which means a *trained* model's graph
artefacts — the slim adjacency ``A_s``, the index set ``I`` and the degree
normalisation ``(D + I)^{-1}`` — are constants at serving time.  This
package exploits that:

* :class:`ForecastService` rehydrates a forecaster from a single checkpoint
  bundle (:func:`repro.utils.checkpoint.save_bundle`), runs SNS + sparse
  attention **once** at load time, and answers forecast requests with only
  the encoder–decoder forward under ``no_grad``.
* :class:`MicroBatcher` coalesces concurrent requests (up to
  ``max_batch`` / ``max_wait_ms``) into one batched forward, trading a few
  milliseconds of queueing delay for much higher throughput.
* :class:`ServingCluster` replicates the frozen kernel across worker
  processes (shared-memory request rings, per-worker micro-batching, an
  asyncio front door) for multi-core throughput on one host — with a
  supervisor that respawns dead workers (exponential backoff, crash-loop
  circuit breaker), per-request deadlines and a bounded admission
  watermark (typed :class:`Overloaded` / :class:`DeadlineExceeded`
  shedding), CRC-checked response rings, and a deterministic
  :class:`FaultPlan` chaos harness (:mod:`repro.serve.faults`).
* :mod:`repro.serve.online` adds the stateful half: per-client
  :class:`StreamingSession` history rings behind a :class:`SessionManager`,
  incremental scaler updates, and a :class:`DriftMonitor` that re-runs SNS
  over recent history and hot-swaps the frozen kernel
  (``swap_index_set`` on either target) when the index-set overlap drops
  below threshold.
* ``python -m repro.serve`` is the command-line entry point
  (``--workers N`` routes through the cluster, ``--online`` replays a
  stream through sessions).
"""

from repro.serve.batching import (
    BatchStats,
    DeadlineExceeded,
    MicroBatcher,
    Overloaded,
)
from repro.serve.cluster import (
    ClusterError,
    ClusterHealth,
    RingCorruptionError,
    ServingCluster,
    WorkerDiedError,
    WorkerHealth,
)
from repro.serve.faults import FaultEvent, FaultPlan
from repro.serve.online import (
    DriftConfig,
    DriftMonitor,
    DriftReport,
    SessionManager,
    StreamingSession,
)
from repro.serve.service import ForecastService, FrozenGraph

__all__ = [
    "ForecastService",
    "FrozenGraph",
    "MicroBatcher",
    "BatchStats",
    "Overloaded",
    "DeadlineExceeded",
    "ServingCluster",
    "ClusterError",
    "WorkerDiedError",
    "RingCorruptionError",
    "ClusterHealth",
    "WorkerHealth",
    "FaultPlan",
    "FaultEvent",
    "DriftConfig",
    "DriftMonitor",
    "DriftReport",
    "SessionManager",
    "StreamingSession",
]
