"""Command-line forecast server: ``python -m repro.serve``.

Loads a serving bundle, answers a batch of forecast requests through the
micro-batching queue and reports latency/throughput, e.g.::

    # serve requests stored as a (R, h, N, C) .npy array
    python -m repro.serve checkpoints/sagdfn_bundle.npz \\
        --input requests.npy --output predictions.npy

    # synthetic smoke run straight from the bundle's own config
    python -m repro.serve checkpoints/sagdfn_bundle.npz --requests 32 --max-batch 8

    # multi-worker cluster: replicate the frozen kernel across processes
    python -m repro.serve checkpoints/sagdfn_bundle.npz --workers 4 --requests 256

    # stateful online serving: replay a stream through sessions, with
    # drift-triggered hot-swap of the frozen graph
    python -m repro.serve checkpoints/sagdfn_bundle.npz --online --steps 256 \\
        --drift-threshold 0.5
"""

from __future__ import annotations

import argparse
import sys
import time
import zipfile
from pathlib import Path

import numpy as np

from repro.serve.batching import MicroBatcher
from repro.serve.service import ForecastService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve forecast requests from a SAGDFN checkpoint bundle.",
    )
    parser.add_argument("checkpoint", type=Path, help="serving bundle written by save_bundle")
    parser.add_argument("--input", type=Path, default=None,
                        help=".npy file of request windows, shape (R, h, N, C) or (h, N, C)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write predictions (R, f, N, 1) to this .npy file")
    parser.add_argument("--requests", type=int, default=16,
                        help="number of synthetic requests when --input is omitted")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 replicates the frozen kernel "
                             "across a same-host ServingCluster (shared-memory "
                             "request rings, one micro-batcher per worker)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batching: largest coalesced batch")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batching: wait for stragglers after the first request")
    parser.add_argument("--deadline-s", type=float, default=None,
                        help="admission control: per-request deadline; a request "
                             "still queued this many seconds after submission is "
                             "shed before it reaches the kernel")
    parser.add_argument("--max-pending", type=int, default=None,
                        help="admission control: per-worker pending-queue "
                             "watermark; beyond it new requests are rejected "
                             "with a typed Overloaded error instead of queueing")
    parser.add_argument("--no-freeze", action="store_true",
                        help="re-derive the graph on every request (debugging only)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="large-N memory knob: node-block size of the SNS ranking "
                             "and attention scoring at graph-freeze time")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        help="large-N memory knob: derive the node blocks from this "
                             "scratch budget (MiB) instead of --chunk-size")
    parser.add_argument("--backend", type=str, default=None,
                        help="execution backend override (e.g. numpy, numba); the "
                             "default honours the bundle's recorded backend, then "
                             "REPRO_BACKEND, then numpy")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the synthetic request generator")

    online = parser.add_argument_group(
        "online serving", "stateful sessions with drift-triggered hot-swap"
    )
    online.add_argument("--online", action="store_true",
                        help="replay an observation stream through streaming "
                             "sessions instead of serving one-shot windows")
    online.add_argument("--stream", type=Path, default=None,
                        help=".npy observation stream in original units: (T, N) "
                             "target-only, (T, N, C) with covariate channels, or "
                             "(T, N, C+1) with a trailing observation mask for "
                             "mask-aware bundles; synthetic (with a mid-stream "
                             "regime change) when omitted")
    online.add_argument("--steps", type=int, default=128,
                        help="length of the synthetic stream when --stream is omitted")
    online.add_argument("--sessions", type=int, default=1,
                        help="number of client sessions the stream is replayed into")
    online.add_argument("--forecast-every", type=int, default=4,
                        help="forecast from each filled session every this many steps")
    online.add_argument("--drift-threshold", type=float, default=None,
                        help="swap when the re-sampled index-set overlap drops below "
                             "this; overrides the bundle's recorded drift config "
                             "(no monitoring when neither is present)")
    online.add_argument("--drift-check-every", type=int, default=None,
                        help="timesteps between drift checks (default: bundle drift "
                             "config, else 32)")
    online.add_argument("--drift-min-history", type=int, default=None,
                        help="pooled timesteps required before the first drift check")
    online.add_argument("--update-scaler", action="store_true",
                        help="partial_fit the bundle scaler from the live feed "
                             "(requires v3 scaler statistics)")
    return parser


def _load_bundle_or_exit(path: Path):
    """Load a serving bundle, mapping every failure to a one-line exit."""
    from repro.utils.checkpoint import load_bundle

    try:
        return load_bundle(path)
    except FileNotFoundError:
        raise SystemExit(f"error: checkpoint bundle not found: {path}")
    except (zipfile.BadZipFile, ValueError, KeyError, EOFError, OSError) as error:
        detail = str(error).splitlines()[0] if str(error) else type(error).__name__
        raise SystemExit(f"error: cannot load checkpoint bundle {path}: {detail}")


def _expected_width(config: dict) -> int | None:
    """Request channel width the bundle's scenario implies (None without config)."""
    if not config or "input_dim" not in config:
        return None
    return (
        int(config["input_dim"])
        + int(config.get("exog_dim", 0) or 0)
        + int(bool(config.get("mask_input", False)))
    )


def _load_windows(args, config: dict) -> np.ndarray:
    if args.input is not None:
        try:
            windows = np.load(args.input)
        except FileNotFoundError:
            raise SystemExit(f"error: --input file not found: {args.input}")
        except (zipfile.BadZipFile, ValueError, OSError) as error:
            detail = str(error).splitlines()[0] if str(error) else type(error).__name__
            raise SystemExit(f"error: cannot load --input {args.input}: {detail}")
        if windows.ndim == 3:
            windows = windows[None]
        if windows.ndim != 4:
            raise SystemExit(
                f"--input must hold (R, h, N, C) or (h, N, C) windows, got {windows.shape}"
            )
        width = _expected_width(config)
        if width is not None and windows.shape[-1] != width:
            raise SystemExit(
                f"error: --input windows carry {windows.shape[-1]} channels but the "
                f"bundle scenario expects {width} (input_dim + exog_dim + mask)"
            )
        return windows
    if not config:
        raise SystemExit("bundle has no model config; synthetic requests need --input")
    # Scenario-aware request width: endogenous channels, declared exogenous
    # covariates, plus the observation-mask channel of mask-aware models
    # (pre-scenario bundle configs lack the fields → point/dense width).
    width = _expected_width(config)
    shape = (args.requests, config["history"], config["num_nodes"], width)
    windows = np.random.default_rng(args.seed).normal(size=shape)
    if config.get("mask_input", False):
        windows[..., -1] = 1.0  # synthetic smoke requests are fully observed
    return windows


def _report(num_served: int, predictions: np.ndarray, elapsed: float,
            stats, output: Path | None) -> None:
    throughput = num_served / elapsed if elapsed > 0 else float("inf")
    print(
        f"served {num_served} requests in {elapsed * 1000.0:.1f} ms "
        f"({throughput:.1f} req/s) over {stats.num_batches} batches "
        f"(mean batch {stats.mean_batch_size:.1f}, max {stats.max_batch_size})"
    )
    if output is not None:
        np.save(output, predictions)
        print(f"wrote predictions {predictions.shape} to {output}")


def _submit_and_gather(submit, windows: np.ndarray, deadline_s: float | None):
    """Submit every window, tolerating typed admission-control errors.

    Returns ``(results, rejected, shed)``: predictions of the requests
    that made it through, plus the counts rejected at the watermark
    (:class:`Overloaded`) and shed at their deadline
    (:class:`DeadlineExceeded`).
    """
    from repro.serve.batching import DeadlineExceeded, Overloaded

    futures = []
    rejected = 0
    for window in windows:
        try:
            futures.append(submit(window, deadline_s=deadline_s))
        except Overloaded:
            rejected += 1
    results = []
    shed = 0
    for future in futures:
        try:
            results.append(future.result())
        except DeadlineExceeded:
            shed += 1
    return results, rejected, shed


def _serve_cluster(args) -> int:
    from repro.serve.cluster import ServingCluster

    if args.no_freeze:
        raise SystemExit("--no-freeze is a single-process debugging flag; drop --workers")
    windows = _load_windows(args, _load_bundle_or_exit(args.checkpoint).config)
    load_start = time.perf_counter()
    with ServingCluster(
        args.checkpoint,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        chunk_size=args.chunk_size,
        memory_budget_mb=args.memory_budget_mb,
        backend=args.backend,
        max_pending=args.max_pending,
    ) as cluster:
        load_ms = (time.perf_counter() - load_start) * 1000.0
        print(
            f"started {cluster.workers}-worker cluster on {args.checkpoint} "
            f"in {load_ms:.1f} ms"
        )
        serve_start = time.perf_counter()
        results, rejected, shed = _submit_and_gather(
            cluster.submit, windows, args.deadline_s
        )
        elapsed = time.perf_counter() - serve_start
        stats = cluster.stats
        health = cluster.health()
    predictions = (
        np.stack(results) if results
        else np.empty((0,) + tuple(cluster.prediction_shape))
    )
    _report(len(results), predictions, elapsed, stats, args.output)
    if args.deadline_s is not None or args.max_pending is not None:
        print(f"admission: {rejected} rejected (overloaded), "
              f"{shed} shed (deadline)")
    print(
        f"health: {health.num_alive}/{health.num_workers} workers live, "
        f"{health.num_parked} parked, {health.total_restarts} restart(s), "
        f"{health.redispatches} re-dispatch(es), generation {health.generation}"
    )
    return 0


# --------------------------------------------------------------------- #
# Online (stateful) serving
# --------------------------------------------------------------------- #
def _synthetic_stream(config: dict, steps: int, seed: int) -> np.ndarray:
    """A (T, N, width) original-units stream with a mid-stream regime change.

    The first half follows one set of node phase offsets, the second half a
    shuffled set — node correlation structure changes, which is exactly the
    drift the monitor's re-sampling should notice.
    """
    rng = np.random.default_rng(seed)
    num_nodes = int(config["num_nodes"])
    width = int(config["input_dim"]) + int(config.get("exog_dim", 0) or 0)
    t = np.arange(steps)[:, None]
    phases = rng.uniform(0.0, 2.0 * np.pi, size=num_nodes)
    values = 50.0 + 10.0 * np.sin(0.3 * t + phases) + rng.normal(0.0, 1.0, (steps, num_nodes))
    half = steps // 2
    shuffled = rng.permutation(phases)
    values[half:] = (
        50.0
        + 10.0 * np.sin(0.3 * t[half:] + shuffled)
        + rng.normal(0.0, 1.0, (steps - half, num_nodes))
    )
    stream = np.zeros((steps, num_nodes, width))
    stream[..., 0] = values
    if width > 1:
        stream[..., 1:] = rng.random((steps, num_nodes, width - 1))
    return stream


def _load_stream(args, config: dict) -> tuple[np.ndarray, np.ndarray | None]:
    """Returns ``(stream (T, N, width), mask (T, N) | None)`` in original units."""
    width = int(config["input_dim"]) + int(config.get("exog_dim", 0) or 0)
    mask_input = bool(config.get("mask_input", False))
    if args.stream is None:
        return _synthetic_stream(config, args.steps, args.seed), None
    try:
        raw = np.load(args.stream)
    except FileNotFoundError:
        raise SystemExit(f"error: --stream file not found: {args.stream}")
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        detail = str(error).splitlines()[0] if str(error) else type(error).__name__
        raise SystemExit(f"error: cannot load --stream {args.stream}: {detail}")
    if raw.ndim == 2:
        raw = raw[..., None]
    if raw.ndim != 3 or raw.shape[1] != int(config["num_nodes"]):
        raise SystemExit(
            f"error: --stream must be (T, {config['num_nodes']}) or "
            f"(T, {config['num_nodes']}, C), got {raw.shape}"
        )
    mask = None
    if raw.shape[-1] == width + 1 and mask_input:
        mask = raw[..., -1]
        raw = raw[..., :-1]
    if raw.shape[-1] != width:
        raise SystemExit(
            f"error: --stream carries {raw.shape[-1]} channels but the bundle "
            f"scenario expects {width} (input_dim + exog_dim"
            + (" [+ trailing mask])" if mask_input else ")")
        )
    return raw, mask


def _serve_online(args) -> int:
    from repro.serve.online import DriftConfig, SessionManager

    if args.no_freeze:
        raise SystemExit("--online serves the frozen graph; drop --no-freeze")
    if args.sessions < 1:
        raise SystemExit("--sessions must be >= 1")
    if args.forecast_every < 1:
        raise SystemExit("--forecast-every must be >= 1")
    bundle = _load_bundle_or_exit(args.checkpoint)
    if not bundle.config:
        raise SystemExit("bundle has no model config; --online cannot size sessions")
    stream, mask = _load_stream(args, bundle.config)

    drift_record = dict(bundle.drift) if bundle.drift else {}
    if args.drift_threshold is not None:
        drift_record["overlap_threshold"] = args.drift_threshold
    if args.drift_check_every is not None:
        drift_record["check_every"] = args.drift_check_every
    if args.drift_min_history is not None:
        drift_record["min_history"] = args.drift_min_history
    drift = DriftConfig(**drift_record) if drift_record else None

    load_start = time.perf_counter()
    try:
        manager = SessionManager.from_checkpoint(
            args.checkpoint,
            workers=0 if args.workers == 1 else args.workers,
            drift=drift,
            update_scaler=args.update_scaler,
            **(
                {"max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
                 "backend": args.backend}
                if args.workers > 1
                else {"chunk_size": args.chunk_size,
                      "memory_budget_mb": args.memory_budget_mb,
                      "backend": args.backend}
            ),
        )
    except (RuntimeError, ValueError) as error:
        raise SystemExit(f"error: cannot start online serving: {error}")
    load_ms = (time.perf_counter() - load_start) * 1000.0
    mode = f"{args.workers}-worker cluster" if args.workers > 1 else "single process"
    print(f"online serving on {args.checkpoint} ({mode}), loaded in {load_ms:.1f} ms")

    clients = [f"session-{i}" for i in range(args.sessions)]
    width = manager.width
    forecasts: list[np.ndarray] = []
    checks = swaps = 0
    serve_start = time.perf_counter()
    try:
        for step in range(stream.shape[0]):
            values = stream[step, :, 0][None]
            covariates = stream[step, :, 1:][None] if width > 1 else None
            step_mask = None if mask is None else mask[step][None]
            for client in clients:
                report = manager.push_observations(
                    client, values, covariates=covariates, mask=step_mask
                )
                if report is not None and report.checked:
                    checks += 1
                    swaps += int(report.swapped)
            session = manager.session(clients[0])
            if session.ready and (step + 1) % args.forecast_every == 0:
                forecasts.append(manager.forecast(clients[0]))
    finally:
        if hasattr(manager.target, "close"):
            manager.target.close()
    elapsed = time.perf_counter() - serve_start

    metrics = manager.metrics()
    mae = metrics.get("mae")
    print(
        f"replayed {stream.shape[0]} steps into {len(clients)} session(s) in "
        f"{elapsed * 1000.0:.1f} ms: {len(forecasts)} forecasts, "
        f"{checks} drift check(s), {swaps} swap(s), generation {manager.generation}"
        + (f", live mae {mae:.3f}" if mae is not None and np.isfinite(mae) else "")
    )
    if args.output is not None and forecasts:
        predictions = np.stack(forecasts)
        np.save(args.output, predictions)
        print(f"wrote predictions {predictions.shape} to {args.output}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # --requests only sizes the *synthetic* workload; with --input the
    # request count comes from the file and the flag must not reject runs.
    if args.input is None and args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.deadline_s is not None and args.deadline_s <= 0:
        raise SystemExit("--deadline-s must be > 0")
    if args.max_pending is not None and args.max_pending < 1:
        raise SystemExit("--max-pending must be >= 1")
    if args.online:
        return _serve_online(args)
    if args.workers > 1:
        return _serve_cluster(args)

    load_start = time.perf_counter()
    _load_bundle_or_exit(args.checkpoint)  # one-line exit on missing/corrupt paths
    service = ForecastService.from_checkpoint(
        args.checkpoint,
        freeze_graph=not args.no_freeze,
        chunk_size=args.chunk_size,
        memory_budget_mb=args.memory_budget_mb,
        backend=args.backend,
    )
    load_ms = (time.perf_counter() - load_start) * 1000.0
    mode = "frozen-graph" if service.frozen is not None else "full-forward"
    print(
        f"loaded {args.checkpoint} in {load_ms:.1f} ms "
        f"({mode} mode, {service.backend_name} backend)"
    )

    windows = _load_windows(args, service.config)
    serve_start = time.perf_counter()
    with MicroBatcher.for_service(service, max_batch=args.max_batch,
                                  max_wait_ms=args.max_wait_ms,
                                  max_pending=args.max_pending) as batcher:
        results, rejected, shed = _submit_and_gather(
            batcher.submit, windows, args.deadline_s
        )
    elapsed = time.perf_counter() - serve_start
    predictions = np.stack(results) if results else np.empty((0,))
    _report(len(results), predictions, elapsed, batcher.stats, args.output)
    if args.deadline_s is not None or args.max_pending is not None:
        print(f"admission: {rejected} rejected (overloaded), "
              f"{shed} shed (deadline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
