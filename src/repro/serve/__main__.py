"""Command-line forecast server: ``python -m repro.serve``.

Loads a serving bundle, answers a batch of forecast requests through the
micro-batching queue and reports latency/throughput, e.g.::

    # serve requests stored as a (R, h, N, C) .npy array
    python -m repro.serve checkpoints/sagdfn_bundle.npz \\
        --input requests.npy --output predictions.npy

    # synthetic smoke run straight from the bundle's own config
    python -m repro.serve checkpoints/sagdfn_bundle.npz --requests 32 --max-batch 8

    # multi-worker cluster: replicate the frozen kernel across processes
    python -m repro.serve checkpoints/sagdfn_bundle.npz --workers 4 --requests 256
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.serve.batching import MicroBatcher
from repro.serve.service import ForecastService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve forecast requests from a SAGDFN checkpoint bundle.",
    )
    parser.add_argument("checkpoint", type=Path, help="serving bundle written by save_bundle")
    parser.add_argument("--input", type=Path, default=None,
                        help=".npy file of request windows, shape (R, h, N, C) or (h, N, C)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write predictions (R, f, N, 1) to this .npy file")
    parser.add_argument("--requests", type=int, default=16,
                        help="number of synthetic requests when --input is omitted")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; >1 replicates the frozen kernel "
                             "across a same-host ServingCluster (shared-memory "
                             "request rings, one micro-batcher per worker)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batching: largest coalesced batch")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batching: wait for stragglers after the first request")
    parser.add_argument("--no-freeze", action="store_true",
                        help="re-derive the graph on every request (debugging only)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="large-N memory knob: node-block size of the SNS ranking "
                             "and attention scoring at graph-freeze time")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        help="large-N memory knob: derive the node blocks from this "
                             "scratch budget (MiB) instead of --chunk-size")
    parser.add_argument("--backend", type=str, default=None,
                        help="execution backend override (e.g. numpy, numba); the "
                             "default honours the bundle's recorded backend, then "
                             "REPRO_BACKEND, then numpy")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed of the synthetic request generator")
    return parser


def _load_windows(args, config: dict) -> np.ndarray:
    if args.input is not None:
        windows = np.load(args.input)
        if windows.ndim == 3:
            windows = windows[None]
        if windows.ndim != 4:
            raise SystemExit(
                f"--input must hold (R, h, N, C) or (h, N, C) windows, got {windows.shape}"
            )
        return windows
    if not config:
        raise SystemExit("bundle has no model config; synthetic requests need --input")
    # Scenario-aware request width: endogenous channels, declared exogenous
    # covariates, plus the observation-mask channel of mask-aware models
    # (pre-scenario bundle configs lack the fields → point/dense width).
    width = (
        int(config["input_dim"])
        + int(config.get("exog_dim", 0) or 0)
        + int(bool(config.get("mask_input", False)))
    )
    shape = (args.requests, config["history"], config["num_nodes"], width)
    windows = np.random.default_rng(args.seed).normal(size=shape)
    if config.get("mask_input", False):
        windows[..., -1] = 1.0  # synthetic smoke requests are fully observed
    return windows


def _report(windows: np.ndarray, predictions: np.ndarray, elapsed: float,
            stats, output: Path | None) -> None:
    throughput = len(windows) / elapsed if elapsed > 0 else float("inf")
    print(
        f"served {len(windows)} requests in {elapsed * 1000.0:.1f} ms "
        f"({throughput:.1f} req/s) over {stats.num_batches} batches "
        f"(mean batch {stats.mean_batch_size:.1f}, max {stats.max_batch_size})"
    )
    if output is not None:
        np.save(output, predictions)
        print(f"wrote predictions {predictions.shape} to {output}")


def _serve_cluster(args) -> int:
    from repro.serve.cluster import ServingCluster
    from repro.utils.checkpoint import load_bundle

    if args.no_freeze:
        raise SystemExit("--no-freeze is a single-process debugging flag; drop --workers")
    windows = _load_windows(args, load_bundle(args.checkpoint).config)
    load_start = time.perf_counter()
    with ServingCluster(
        args.checkpoint,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        chunk_size=args.chunk_size,
        memory_budget_mb=args.memory_budget_mb,
        backend=args.backend,
    ) as cluster:
        load_ms = (time.perf_counter() - load_start) * 1000.0
        print(
            f"started {cluster.workers}-worker cluster on {args.checkpoint} "
            f"in {load_ms:.1f} ms"
        )
        serve_start = time.perf_counter()
        futures = [cluster.submit(window) for window in windows]
        predictions = np.stack([future.result() for future in futures])
        elapsed = time.perf_counter() - serve_start
        stats = cluster.stats
    _report(windows, predictions, elapsed, stats, args.output)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # --requests only sizes the *synthetic* workload; with --input the
    # request count comes from the file and the flag must not reject runs.
    if args.input is None and args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.workers > 1:
        return _serve_cluster(args)

    load_start = time.perf_counter()
    service = ForecastService.from_checkpoint(
        args.checkpoint,
        freeze_graph=not args.no_freeze,
        chunk_size=args.chunk_size,
        memory_budget_mb=args.memory_budget_mb,
        backend=args.backend,
    )
    load_ms = (time.perf_counter() - load_start) * 1000.0
    mode = "frozen-graph" if service.frozen is not None else "full-forward"
    print(
        f"loaded {args.checkpoint} in {load_ms:.1f} ms "
        f"({mode} mode, {service.backend_name} backend)"
    )

    windows = _load_windows(args, service.config)
    serve_start = time.perf_counter()
    with MicroBatcher.for_service(service, max_batch=args.max_batch,
                                  max_wait_ms=args.max_wait_ms) as batcher:
        futures = [batcher.submit(window) for window in windows]
        predictions = np.stack([future.result() for future in futures])
    elapsed = time.perf_counter() - serve_start
    _report(windows, predictions, elapsed, batcher.stats, args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
