"""Micro-batching request queue for the forecast service.

Concurrent clients each submit a single history window; a background worker
drains the queue, coalescing up to ``max_batch`` requests (waiting at most
``max_wait_ms`` for stragglers after the first request arrives) and runs
**one** batched forward for the whole group.  Batched inference amortises
the per-call graph-convolution overhead, so throughput grows with batch
size while each request pays at most ``max_wait_ms`` of queueing delay.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

_SHUTDOWN = object()


class Overloaded(RuntimeError):
    """Raised at submit time when the pending queue is at its watermark.

    Typed rejection is admission control: under overload the server sheds
    new work immediately instead of queueing it unboundedly and serving it
    long after its deadline.  Callers can catch this and retry elsewhere
    (the cluster fails over to a less-loaded worker) or surface it.
    """


class DeadlineExceeded(RuntimeError):
    """Set on a future whose request expired before its batch ran.

    The batching worker sheds expired requests *before* the kernel
    forward, so a deadline miss costs a queue pop, never a wasted
    inference.
    """


@dataclass
class BatchStats:
    """Running counters of the batching worker (O(1) memory, server-lifetime safe).

    Batches whose forward raised are counted too (in ``num_batches`` /
    ``num_requests`` as well as ``num_failed_batches``), so the counters
    reflect every batch the worker actually formed, not just the lucky ones.

    :meth:`record` is lock-guarded: the counters are fed from the batching
    worker thread but read (and, in multi-batcher setups like the serving
    cluster, merged) from arbitrary threads, and the read-modify-write
    increments would otherwise race and undercount.
    """

    num_requests: int = 0
    num_batches: int = 0
    max_batch_size: int = 0
    num_failed_batches: int = 0
    num_expired: int = 0
    num_rejected: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, batch_size: int, failed: bool = False) -> None:
        with self._lock:
            self.num_requests += batch_size
            self.num_batches += 1
            if batch_size > self.max_batch_size:
                self.max_batch_size = batch_size
            if failed:
                self.num_failed_batches += 1

    def record_expired(self, count: int = 1) -> None:
        """Count requests shed at their deadline before reaching the kernel."""
        with self._lock:
            self.num_expired += count

    def record_rejected(self, count: int = 1) -> None:
        """Count requests rejected at the pending-queue watermark."""
        with self._lock:
            self.num_rejected += count

    def merge(self, other: "BatchStats") -> None:
        """Fold ``other``'s counters into this one (cluster-wide aggregation)."""
        with other._lock:
            requests, batches = other.num_requests, other.num_batches
            largest, failed = other.max_batch_size, other.num_failed_batches
            expired, rejected = other.num_expired, other.num_rejected
        with self._lock:
            self.num_requests += requests
            self.num_batches += batches
            self.max_batch_size = max(self.max_batch_size, largest)
            self.num_failed_batches += failed
            self.num_expired += expired
            self.num_rejected += rejected

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0


class MicroBatcher:
    """Coalesce single-window forecast requests into batched forwards.

    Parameters
    ----------
    predict_fn:
        Batched inference function mapping ``(B, h, N, C)`` histories to
        ``(B, f, N, 1)`` predictions — typically
        :meth:`repro.serve.ForecastService.predict`.
    max_batch:
        Largest batch one forward may serve.
    max_wait_ms:
        How long the worker waits for additional requests after the first
        one of a batch arrives.  ``0`` disables coalescing delay (batches
        only form from already-queued requests).
    expected_channels:
        Total per-window channel width ``predict_fn`` expects (observation-
        mask channel *included* for mask-aware models).  When set, every
        :meth:`submit` validates the window width after any ``mask``
        concatenation — a ``(h, N, C)`` window for a mask-aware model would
        otherwise silently misread its last data channel as the mask.
        ``None`` disables the check (the width cannot be known for a bare
        ``predict_fn``).
    mask_input:
        Whether ``predict_fn`` serves a mask-aware model, i.e. whether the
        trailing channel of each window is the observation mask.  Only
        meaningful together with ``expected_channels``; gates the ``mask``
        argument of :meth:`submit`.
    max_pending:
        Admission-control watermark: the largest number of requests that
        may be queued or forming a batch at once.  :meth:`submit` raises
        :class:`Overloaded` beyond it instead of queueing unboundedly.
        ``None`` (the default) keeps the queue unbounded.

    Use as a context manager, or call :meth:`close` to drain and stop::

        with MicroBatcher(service.predict, max_batch=32, max_wait_ms=2) as mb:
            futures = [mb.submit(w) for w in windows]
            results = [f.result() for f in futures]

    :meth:`for_service` wires ``expected_channels`` / ``mask_input``
    straight from a :class:`~repro.serve.service.ForecastService`.
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        expected_channels: int | None = None,
        mask_input: bool = False,
        max_pending: int | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if expected_channels is not None and expected_channels < 1:
            raise ValueError("expected_channels must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.expected_channels = expected_channels
        self.mask_input = bool(mask_input)
        self.max_pending = max_pending
        self.stats = BatchStats()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        # Admitted-but-unresolved request count for the watermark.  Guarded
        # by its own lock (not _lifecycle) so the worker thread can decrement
        # without contending with close().
        self._pending = 0
        self._pending_lock = threading.Lock()
        # Serialises submit() against close(): without it a thread could pass
        # the _closed check, lose the CPU while close() drains and joins the
        # worker, and then land its window on a dead queue — a Future that
        # never resolves.  Under the lock a submission either wins (its item
        # is enqueued *before* the shutdown sentinel, so the worker or the
        # drain loop is guaranteed to resolve it) or deterministically raises.
        self._lifecycle = threading.Lock()
        self._worker = threading.Thread(target=self._run, name="microbatcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    @classmethod
    def for_service(cls, service, **kwargs) -> "MicroBatcher":
        """A batcher over ``service.predict`` with the scenario contract wired.

        Reads the expected window width (mask channel included) and the
        mask-awareness flag off the
        :class:`~repro.serve.service.ForecastService`, so mis-shaped windows
        are rejected at submit time instead of being silently misread.
        """
        return cls(
            service.predict,
            expected_channels=getattr(service, "expected_channels", None),
            mask_input=getattr(service, "mask_input", False),
            **kwargs,
        )

    def _validate(self, window: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
        """Apply the mask contract and width check; returns the final window."""
        if window.ndim != 3:
            raise ValueError(
                f"window must be (steps, nodes, channels), got shape {window.shape}"
            )
        if mask is not None:
            if self.expected_channels is not None and not self.mask_input:
                raise ValueError(
                    "mask= was given but the served model was not trained "
                    "with mask_input; drop the mask"
                )
            mask = np.asarray(mask)
            if mask.shape != window.shape[:2]:
                raise ValueError(
                    f"mask must be (steps, nodes) = {window.shape[:2]}, "
                    f"got {mask.shape}"
                )
            window = np.concatenate(
                [window, mask[..., None].astype(window.dtype, copy=False)], axis=-1
            )
        if (self.expected_channels is not None
                and window.shape[-1] != self.expected_channels):
            hint = ""
            if self.mask_input and mask is None \
                    and window.shape[-1] == self.expected_channels - 1:
                hint = (
                    " — the served model is mask-aware: pass mask=(steps, nodes) "
                    "to submit(), or pre-concatenate the observation mask as "
                    "the trailing channel"
                )
            raise ValueError(
                f"window has {window.shape[-1]} channels, the served model "
                f"expects {self.expected_channels}{hint}"
            )
        return window

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved by the worker."""
        with self._pending_lock:
            return self._pending

    def submit(self, window: np.ndarray, mask: np.ndarray | None = None,
               deadline_s: float | None = None) -> Future:
        """Enqueue one history window ``(h, N, C)``; resolves to ``(f, N, ·)``.

        ``mask`` optionally supplies the observation mask ``(h, N)`` of a
        mask-aware model (1 = observed); it is appended as the trailing
        input channel before batching, exactly as
        :meth:`ForecastService.predict` does.  A mask-aware request may
        equally arrive with the mask already concatenated, in which case
        ``mask`` must be omitted.  When the batcher knows the served
        model's channel width (see ``expected_channels`` /
        :meth:`for_service`), mis-shaped windows raise ``ValueError`` here
        instead of being silently misread by the model.

        ``deadline_s`` bounds how long the request may queue: if its batch
        has not started ``deadline_s`` seconds from now, the future fails
        with :class:`DeadlineExceeded` *without* running the kernel.

        Raises :class:`Overloaded` when ``max_pending`` requests are
        already queued, and ``RuntimeError`` once :meth:`close` has begun —
        late submissions are rejected deterministically instead of being
        dropped.
        """
        window = self._validate(np.asarray(window), mask)
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        deadline = None if deadline_s is None else time.monotonic() + deadline_s
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            if self.max_pending is not None:
                with self._pending_lock:
                    if self._pending >= self.max_pending:
                        self.stats.record_rejected()
                        raise Overloaded(
                            f"{self._pending} request(s) already pending "
                            f"(watermark {self.max_pending}); shedding new work"
                        )
                    self._pending += 1
            else:
                with self._pending_lock:
                    self._pending += 1
            future: Future = Future()
            self._queue.put((window, future, deadline))
        return future

    def predict(self, window: np.ndarray, mask: np.ndarray | None = None,
                timeout: float | None = None,
                deadline_s: float | None = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(window, mask=mask,
                           deadline_s=deadline_s).result(timeout=timeout)

    def close(self) -> None:
        """Stop accepting requests, drain the queue and join the worker.

        Safe to call from several threads: every caller joins the worker, so
        no close() returns while the drain is still mutating stats.
        """
        with self._lifecycle:
            if not self._closed:
                self._closed = True
                self._queue.put(_SHUTDOWN)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _collect(self, first) -> tuple[list, bool]:
        """Grow a batch from ``first`` until full, timed out, or shut down."""
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _retire(self, count: int) -> None:
        with self._pending_lock:
            self._pending -= count

    def _run(self) -> None:
        shutdown = False
        while not shutdown:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch, shutdown = self._collect(item)
            self._retire(len(batch))
            # Claim every future before the forward: a client that cancelled
            # while queued must be skipped — set_result/set_exception on a
            # CANCELLED future raises InvalidStateError, which would kill
            # this worker thread and hang every later submission.  After a
            # successful claim the future is RUNNING and can no longer be
            # cancelled, so the resolution below is race-free.
            live = [
                (window, future, deadline) for window, future, deadline in batch
                if future.set_running_or_notify_cancel()
            ]
            # Shed expired requests before the forward: a deadline miss must
            # never cost a kernel inference on an answer nobody is waiting for.
            now = time.monotonic()
            expired = [
                (window, future) for window, future, deadline in live
                if deadline is not None and now > deadline
            ]
            for _, future in expired:
                future.set_exception(DeadlineExceeded(
                    "request deadline expired while queued; the batch was "
                    "shed before running the kernel"
                ))
            if expired:
                self.stats.record_expired(len(expired))
            live = [
                (window, future) for window, future, deadline in live
                if deadline is None or now <= deadline
            ]
            if not live:
                continue
            futures = [future for _, future in live]
            try:
                windows = np.stack([window for window, _ in live])
                predictions = self.predict_fn(windows)
            except Exception as error:  # propagate to every waiting client
                for future in futures:
                    future.set_exception(error)
                self.stats.record(len(live), failed=True)
                continue
            for i, future in enumerate(futures):
                future.set_result(predictions[i])
            self.stats.record(len(live))
        # Drain anything still queued after shutdown so no client hangs.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            window, future, deadline = item
            self._retire(1)
            if not future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            if deadline is not None and time.monotonic() > deadline:
                future.set_exception(DeadlineExceeded(
                    "request deadline expired while queued; the batch was "
                    "shed before running the kernel"
                ))
                self.stats.record_expired()
                continue
            try:
                future.set_result(self.predict_fn(window[None])[0])
                self.stats.record(1)
            except Exception as error:
                future.set_exception(error)
                self.stats.record(1, failed=True)
