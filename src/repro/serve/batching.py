"""Micro-batching request queue for the forecast service.

Concurrent clients each submit a single history window; a background worker
drains the queue, coalescing up to ``max_batch`` requests (waiting at most
``max_wait_ms`` for stragglers after the first request arrives) and runs
**one** batched forward for the whole group.  Batched inference amortises
the per-call graph-convolution overhead, so throughput grows with batch
size while each request pays at most ``max_wait_ms`` of queueing delay.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

import numpy as np

_SHUTDOWN = object()


@dataclass
class BatchStats:
    """Running counters of the batching worker (O(1) memory, server-lifetime safe).

    Batches whose forward raised are counted too (in ``num_batches`` /
    ``num_requests`` as well as ``num_failed_batches``), so the counters
    reflect every batch the worker actually formed, not just the lucky ones.
    """

    num_requests: int = 0
    num_batches: int = 0
    max_batch_size: int = 0
    num_failed_batches: int = 0

    def record(self, batch_size: int, failed: bool = False) -> None:
        self.num_requests += batch_size
        self.num_batches += 1
        if batch_size > self.max_batch_size:
            self.max_batch_size = batch_size
        if failed:
            self.num_failed_batches += 1

    @property
    def mean_batch_size(self) -> float:
        return self.num_requests / self.num_batches if self.num_batches else 0.0


class MicroBatcher:
    """Coalesce single-window forecast requests into batched forwards.

    Parameters
    ----------
    predict_fn:
        Batched inference function mapping ``(B, h, N, C)`` histories to
        ``(B, f, N, 1)`` predictions — typically
        :meth:`repro.serve.ForecastService.predict`.
    max_batch:
        Largest batch one forward may serve.
    max_wait_ms:
        How long the worker waits for additional requests after the first
        one of a batch arrives.  ``0`` disables coalescing delay (batches
        only form from already-queued requests).

    Use as a context manager, or call :meth:`close` to drain and stop::

        with MicroBatcher(service.predict, max_batch=32, max_wait_ms=2) as mb:
            futures = [mb.submit(w) for w in windows]
            results = [f.result() for f in futures]
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.predict_fn = predict_fn
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.stats = BatchStats()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        # Serialises submit() against close(): without it a thread could pass
        # the _closed check, lose the CPU while close() drains and joins the
        # worker, and then land its window on a dead queue — a Future that
        # never resolves.  Under the lock a submission either wins (its item
        # is enqueued *before* the shutdown sentinel, so the worker or the
        # drain loop is guaranteed to resolve it) or deterministically raises.
        self._lifecycle = threading.Lock()
        self._worker = threading.Thread(target=self._run, name="microbatcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray) -> Future:
        """Enqueue one history window ``(h, N, C)``; resolves to ``(f, N, 1)``.

        Raises ``RuntimeError`` once :meth:`close` has begun — late
        submissions are rejected deterministically instead of being dropped.
        """
        window = np.asarray(window)
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            future: Future = Future()
            self._queue.put((window, future))
        return future

    def predict(self, window: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(window).result(timeout=timeout)

    def close(self) -> None:
        """Stop accepting requests, drain the queue and join the worker.

        Safe to call from several threads: every caller joins the worker, so
        no close() returns while the drain is still mutating stats.
        """
        with self._lifecycle:
            if not self._closed:
                self._closed = True
                self._queue.put(_SHUTDOWN)
        self._worker.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _collect(self, first) -> tuple[list, bool]:
        """Grow a batch from ``first`` until full, timed out, or shut down."""
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            batch.append(item)
        return batch, False

    def _run(self) -> None:
        shutdown = False
        while not shutdown:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch, shutdown = self._collect(item)
            futures = [future for _, future in batch]
            try:
                windows = np.stack([window for window, _ in batch])
                predictions = self.predict_fn(windows)
            except Exception as error:  # propagate to every waiting client
                for future in futures:
                    future.set_exception(error)
                self.stats.record(len(batch), failed=True)
                continue
            for i, future in enumerate(futures):
                future.set_result(predictions[i])
            self.stats.record(len(batch))
        # Drain anything still queued after shutdown so no client hangs.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            window, future = item
            try:
                future.set_result(self.predict_fn(window[None])[0])
                self.stats.record(1)
            except Exception as error:
                future.set_exception(error)
                self.stats.record(1, failed=True)
