"""Multi-worker serving cluster: replicated kernels behind one front door.

One :class:`~repro.serve.service.ForecastService` is bounded by one core:
the frozen-recurrence kernel saturates a single process, so heavy traffic
needs *replicas*.  :class:`ServingCluster` runs a pool of worker processes,
each rehydrating its own :class:`~repro.core.serving_kernel.FrozenRecurrenceKernel`
from the **same** checkpoint bundle (every replica is bit-identically the
same forecaster — the bundle carries config, parameters, SNS candidates and
the frozen index set), and fans requests over them:

* **Shared-memory ring buffers** — each worker owns a request ring and a
  response ring backed by :mod:`multiprocessing.shared_memory`, sized
  ``slots × max_batch`` windows/predictions.  ``(B, h, N, C)`` batches cross
  the process boundary as raw buffer copies; only a tiny ``(seq, slot,
  batch)`` header travels over the control pipe, so nothing is ever pickled
  on the hot path.  Every response carries a CRC-32 of its ring slot, so a
  corrupted copy is a typed :class:`RingCorruptionError`, never a silently
  wrong forecast.
* **Per-worker micro-batching** — the front door routes each submitted
  window round-robin into one :class:`~repro.serve.MicroBatcher` per worker,
  so request coalescing (and its amortisation of per-forward overhead)
  happens exactly as in single-process serving, once per replica.
* **An asyncio front door** — :meth:`submit` returns a
  :class:`concurrent.futures.Future`; :meth:`predict_async` /
  :meth:`serve_async` wrap them for ``await``-style fan-out/gather.
* **Liveness and supervision** — workers heartbeat over the control pipe
  and exit when the parent disappears; the front door detects a dead
  worker mid-batch (pipe EOF, process exit, or request timeout),
  re-dispatches the batch at most once to a live peer (never when the
  batch may have executed — at-most-once), and otherwise fails the
  batch's futures with a descriptive :class:`WorkerDiedError` — pending
  futures never hang.  A supervisor thread respawns dead workers from the
  bundle with exponential backoff; a crash-looping worker (``max_crash_loop``
  rapid failures) is *parked* and the cluster degrades to the surviving
  pool.  :meth:`health` reports the whole picture as a structured
  :class:`ClusterHealth` snapshot.
* **Admission control** — ``submit(..., deadline_s=)`` sheds requests whose
  deadline expires while queued *before* they reach a kernel, and
  ``max_pending`` bounds each worker's queue, rejecting excess work with a
  typed :class:`~repro.serve.batching.Overloaded` error (after trying every
  live worker) instead of queueing unboundedly.
* **Deterministic fault injection** — a seeded
  :class:`~repro.serve.faults.FaultPlan` schedules worker kills, stalls,
  ring corruption and slow batches at exact job ordinals, so chaos
  scenarios replay identically run after run.  The default is a no-op.

Shared-memory transport is **same-host only**: workers must run on the
machine that created the rings.  The pool replicates the full graph for
throughput; sharding a huge graph across nodes is a separate axis.

Typical use::

    with ServingCluster("bundle.npz", workers=4, max_batch=32) as cluster:
        futures = [cluster.submit(w) for w in windows]
        results = [f.result() for f in futures]

or through asyncio::

    async with_cluster():
        predictions = await cluster.serve_async(windows)
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import threading
import time
import traceback
import zlib
from concurrent.futures import Future
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.serve.batching import BatchStats, MicroBatcher, Overloaded
from repro.serve.faults import FaultInjector, FaultPlan, corrupt_ring_slot
from repro.utils.checkpoint import load_bundle

# BLAS pools are capped per worker *before* the child imports numpy: a
# replica that grabs every core starves its peers and flattens the scaling
# curve the pool exists to bend.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


class ClusterError(RuntimeError):
    """A serving-cluster failure (configuration, startup, or no live workers)."""


class WorkerDiedError(ClusterError):
    """A worker process died (or stopped responding) with requests in flight.

    ``may_have_executed`` distinguishes the two failure classes the retry
    policy cares about: a worker whose *process is gone* (pipe EOF, exit)
    can never deliver its result, so the batch is safe to re-dispatch once;
    a worker that merely *timed out while still running* may complete the
    forward late, so at-most-once forbids retrying it.
    """

    def __init__(self, message: str, may_have_executed: bool = False):
        super().__init__(message)
        self.may_have_executed = may_have_executed


class RingCorruptionError(ClusterError):
    """A response failed its ring CRC check — the shared-memory copy is bad.

    The request *did* execute (the worker computed and checksummed a real
    prediction), so it is never re-dispatched; the caller sees the typed
    error instead of silently wrong numbers.
    """


@dataclass
class WorkerHealth:
    """Liveness snapshot of one worker slot."""

    worker_id: int
    state: str  # "live" | "down" | "parked"
    pid: int | None
    restarts: int
    consecutive_failures: int
    backoff_remaining_s: float
    heartbeat_age_s: float | None
    pending: int

    def to_dict(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "backoff_remaining_s": round(self.backoff_remaining_s, 3),
            "heartbeat_age_s": (
                None if self.heartbeat_age_s is None
                else round(self.heartbeat_age_s, 3)
            ),
            "pending": self.pending,
        }


@dataclass
class ClusterHealth:
    """Structured cluster-wide health: pool strength, restarts, backlog."""

    num_workers: int
    num_alive: int
    num_parked: int
    total_restarts: int
    redispatches: int
    generation: int
    pending: int
    workers: list

    @property
    def degraded(self) -> bool:
        """True when any worker slot is down or parked."""
        return self.num_alive < self.num_workers

    def to_dict(self) -> dict:
        return {
            "num_workers": self.num_workers,
            "num_alive": self.num_alive,
            "num_parked": self.num_parked,
            "degraded": self.degraded,
            "total_restarts": self.total_restarts,
            "redispatches": self.redispatches,
            "generation": self.generation,
            "pending": self.pending,
            "workers": [worker.to_dict() for worker in self.workers],
        }


def _geometry(config: dict, dtype: str) -> tuple[tuple, tuple, np.dtype]:
    """Window/prediction shapes and dtype of one request, from a bundle config.

    The parent sizes both shared-memory rings from the config alone —
    workers are spawned only after the rings exist, so their names can be
    handed over at start-up.
    """
    try:
        history = int(config["history"])
        num_nodes = int(config["num_nodes"])
        horizon = int(config["horizon"])
        input_dim = int(config["input_dim"])
    except (KeyError, TypeError) as error:
        raise ClusterError(
            "bundle config is missing the request-geometry fields "
            "(history/num_nodes/horizon/input_dim); cluster workers cannot "
            "size their shared-memory rings"
        ) from error
    output_dim = int(config.get("output_dim", 1) or 1)
    exog_dim = int(config.get("exog_dim", 0) or 0)
    mask_channel = int(bool(config.get("mask_input", False)))
    quantiles = config.get("quantiles")
    num_quantiles = len(quantiles) if quantiles else 1
    window_shape = (history, num_nodes, input_dim + exog_dim + mask_channel)
    prediction_shape = (horizon, num_nodes, output_dim * num_quantiles)
    return window_shape, prediction_shape, np.dtype(dtype)


def _worker_main(
    worker_id: int,
    bundle_path: str,
    conn,
    request_name: str,
    response_name: str,
    slots: int,
    max_batch: int,
    window_shape: tuple,
    prediction_shape: tuple,
    dtype_str: str,
    heartbeat_interval_s: float,
    service_kwargs: dict,
    fault_schedule: dict | None = None,
) -> None:
    """Worker process: rehydrate the bundle once, then serve ring batches.

    Exits on a ``stop`` message, on control-pipe EOF, or when the parent
    process disappears between heartbeats — an orphaned worker must never
    linger on a serving host.

    ``fault_schedule`` (``{job_ordinal: FaultEvent}``) drives deterministic
    chaos: a scheduled *kill* SIGKILLs the process before serving that job,
    *stall*/*slow* sleep before the forward, and *corrupt* overwrites the
    response ring slot after the CRC was computed, so the parent observes a
    checksum mismatch.  ``None`` (production) injects nothing.
    """
    request_shm = response_shm = None
    try:
        from repro.serve.service import ForecastService

        service = ForecastService.from_checkpoint(bundle_path, **service_kwargs)
        # Pin the steady-state workspace: the batcher's max_batch is the
        # size every saturated batch arrives at.
        service.pin_batch_size(max_batch)
        dtype = np.dtype(dtype_str)
        # Attach-only: ownership (and the unlink) stays with the parent.
        # The resource tracker is shared with the parent under spawn, so
        # the child must neither unlink nor unregister the rings.
        request_shm = shared_memory.SharedMemory(name=request_name)
        response_shm = shared_memory.SharedMemory(name=response_name)
        requests = np.ndarray(
            (slots, max_batch) + tuple(window_shape), dtype=dtype,
            buffer=request_shm.buf,
        )
        responses = np.ndarray(
            (slots, max_batch) + tuple(prediction_shape), dtype=dtype,
            buffer=response_shm.buf,
        )
        injector = FaultInjector(fault_schedule)
        conn.send(("ready", os.getpid()))
    except Exception:
        try:
            conn.send(("fatal", traceback.format_exc()))
        finally:
            for shm in (request_shm, response_shm):
                if shm is not None:
                    shm.close()
        return

    parent = multiprocessing.parent_process()
    try:
        while True:
            try:
                if not conn.poll(heartbeat_interval_s):
                    if parent is not None and not parent.is_alive():
                        break  # orphaned
                    conn.send(("hb", time.monotonic()))
                    continue
                message = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("hb", time.monotonic()))
                continue
            if kind == "swap":
                # Drift hot-swap.  The message loop is serial, so any batch
                # dispatched before this message has already completed on
                # the old generation — the old kernel drains, it is never
                # interrupted.  Control-plane pickling of the index set is
                # fine: swaps are rare and tiny compared to request batches.
                _, seq, index_set = message
                try:
                    generation = service.swap_index_set(
                        np.asarray(index_set, dtype=np.int64)
                    )
                    reply = ("swapped", seq, int(generation))
                except Exception:
                    reply = ("err", seq, traceback.format_exc(limit=8))
                try:
                    conn.send(reply)
                except (BrokenPipeError, OSError):
                    break
                continue
            _, seq, slot, batch = message
            event = injector.next_event()
            if event is not None and event.kind == "kill":
                # Scheduled chaos: die exactly as a crashed worker would —
                # no reply, no cleanup, SIGKILL semantics.
                os.kill(os.getpid(), signal.SIGKILL)
            if event is not None and event.kind in ("stall", "slow"):
                # A stall also starves the heartbeat: the worker is wedged
                # before the forward, exactly like a hung kernel.
                time.sleep(event.duration_s)
            try:
                predictions = service.predict(requests[slot, :batch])
                responses[slot, :batch] = predictions
                checksum = zlib.crc32(
                    np.ascontiguousarray(responses[slot, :batch]).tobytes()
                )
                if event is not None and event.kind == "corrupt":
                    corrupt_ring_slot(responses[slot, :batch])
                reply = ("ok", seq, slot, batch, checksum)
            except Exception:
                reply = ("err", seq, traceback.format_exc(limit=8))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        request_shm.close()
        response_shm.close()
        conn.close()


class _WorkerChannel:
    """Parent-side handle of one worker: rings, control pipe, liveness."""

    def __init__(self, worker_id: int, ctx, bundle_path: str, slots: int,
                 max_batch: int, window_shape: tuple, prediction_shape: tuple,
                 dtype: np.dtype, request_timeout_s: float,
                 heartbeat_interval_s: float, blas_threads: int | None,
                 service_kwargs: dict, fault_schedule: dict | None = None):
        self.worker_id = worker_id
        self.slots = slots
        self.max_batch = max_batch
        self.request_timeout_s = request_timeout_s
        self.alive = False
        self.last_heartbeat: float | None = None
        self._seq = 0
        self._dispatch_lock = threading.Lock()
        self.batcher: MicroBatcher | None = None  # wired by the cluster
        # Optional instrumentation: called as trace("dispatch"|"complete",
        # seq, slot, batch) around every ring round-trip.  Tests use it to
        # assert the no-slot-reuse-while-unread invariant under wraparound.
        self.trace = None
        # Spawn parameters kept for supervised respawn.
        self._ctx = ctx
        self._bundle_path = str(bundle_path)
        self._window_shape = tuple(window_shape)
        self._prediction_shape = tuple(prediction_shape)
        self._dtype = dtype
        self._heartbeat_interval_s = heartbeat_interval_s
        self._blas_threads = blas_threads
        self._service_kwargs = service_kwargs
        # Supervisor bookkeeping (owned by the cluster's supervisor thread).
        self.restarts = 0
        self.consecutive_failures = 0
        self.parked = False
        self.next_restart_at: float | None = None
        self.started_at: float | None = None

        # Partial-creation cleanup: if anything past the first allocation
        # fails (the second ring, the pipe, the spawn itself), release what
        # exists before re-raising — a failed worker slot must never leak
        # shared-memory segments or a half-started process.
        self.request_shm = self.response_shm = None
        self.conn = None
        self.process = None
        try:
            window_bytes = int(np.prod(window_shape)) * dtype.itemsize
            prediction_bytes = int(np.prod(prediction_shape)) * dtype.itemsize
            self.request_shm = shared_memory.SharedMemory(
                create=True, size=max(1, slots * max_batch * window_bytes)
            )
            self.response_shm = shared_memory.SharedMemory(
                create=True, size=max(1, slots * max_batch * prediction_bytes)
            )
            self.request_view = np.ndarray(
                (slots, max_batch) + tuple(window_shape), dtype=dtype,
                buffer=self.request_shm.buf,
            )
            self.response_view = np.ndarray(
                (slots, max_batch) + tuple(prediction_shape), dtype=dtype,
                buffer=self.response_shm.buf,
            )
            self._spawn(fault_schedule)
        except Exception:
            self._release_partial()
            raise

    def _release_partial(self) -> None:
        """Best-effort cleanup of whatever the constructor managed to create."""
        if self.process is not None and self.process.is_alive():
            try:
                self.process.kill()
                self.process.join(2.0)
            except Exception:
                pass
        if self.conn is not None:
            try:
                self.conn.close()
            except Exception:
                pass
        for shm in (self.request_shm, self.response_shm):
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass

    def _spawn(self, fault_schedule: dict | None = None) -> None:
        """Create the control pipe and start a fresh worker process."""
        self.conn, child_conn = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=_worker_main,
            name=f"repro-serve-worker-{self.worker_id}",
            args=(self.worker_id, self._bundle_path, child_conn,
                  self.request_shm.name, self.response_shm.name,
                  self.slots, self.max_batch, self._window_shape,
                  self._prediction_shape, self._dtype.str,
                  self._heartbeat_interval_s, self._service_kwargs,
                  fault_schedule),
            daemon=True,
        )
        # Cap the replica's BLAS pool before numpy is imported in the child
        # (the env is captured at spawn time).
        saved_env: dict[str, str | None] = {}
        if self._blas_threads is not None:
            for var in _BLAS_ENV_VARS:
                saved_env[var] = os.environ.get(var)
                os.environ[var] = str(self._blas_threads)
        try:
            self.process.start()
        finally:
            for var, value in saved_env.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
        child_conn.close()  # the child's end lives in the child now

    # ------------------------------------------------------------------ #
    def wait_ready(self, timeout_s: float) -> None:
        """Block until the worker reports ready (or fail descriptively)."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(
                    f"worker {self.worker_id} did not come up within "
                    f"{timeout_s:.0f} s"
                )
            if self.conn.poll(min(0.2, remaining)):
                try:
                    message = self.conn.recv()
                except (EOFError, OSError) as error:
                    raise ClusterError(
                        f"worker {self.worker_id} closed its control pipe "
                        "during startup"
                    ) from error
                if message[0] == "ready":
                    self.alive = True
                    self.last_heartbeat = time.monotonic()
                    self.started_at = time.monotonic()
                    return
                if message[0] == "fatal":
                    raise ClusterError(
                        f"worker {self.worker_id} failed to rehydrate the "
                        f"bundle:\n{message[1]}"
                    )
            elif not self.process.is_alive():
                raise ClusterError(
                    f"worker {self.worker_id} exited during startup "
                    f"(exitcode {self.process.exitcode})"
                )

    def _mark_dead(self) -> None:
        self.alive = False

    def poll_liveness(self, heartbeat_timeout_s: float) -> bool:
        """Idle-path death detection; returns whether the worker is alive.

        Non-blocking on the dispatch lock: a worker with a batch in flight
        is policed by :meth:`predict`'s own timeout, so a busy channel is
        simply reported as alive.  When idle, drains heartbeats (and any
        stale replies of abandoned round-trips), then checks pipe EOF,
        process exit, and heartbeat staleness.
        """
        if not self.alive:
            return False
        if not self._dispatch_lock.acquire(blocking=False):
            return True
        try:
            try:
                while self.conn.poll(0):
                    message = self.conn.recv()
                    if message[0] == "hb":
                        self.last_heartbeat = time.monotonic()
                    elif message[0] == "fatal":
                        self._mark_dead()
                        return False
                    # stale ok/err replies of a timed-out dispatch are
                    # dropped here so they never alias a later round-trip
            except (EOFError, BrokenPipeError, OSError):
                self._mark_dead()
                return False
            if not self.process.is_alive():
                self._mark_dead()
                return False
            if (self.last_heartbeat is not None
                    and time.monotonic() - self.last_heartbeat
                    > heartbeat_timeout_s):
                self._mark_dead()
                return False
            return True
        finally:
            self._dispatch_lock.release()

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """One batched round-trip through the rings (serialised per worker)."""
        batch = windows.shape[0]
        if batch > self.max_batch:
            raise ClusterError(
                f"batch of {batch} exceeds the ring slot capacity "
                f"{self.max_batch}"
            )
        with self._dispatch_lock:
            if not self.alive:
                raise WorkerDiedError(
                    f"worker {self.worker_id} is not alive"
                )
            self._seq += 1
            seq = self._seq
            slot = seq % self.slots
            if self.trace is not None:
                self.trace("dispatch", seq, slot, batch)
            self.request_view[slot, :batch] = windows  # dtype cast included
            try:
                self.conn.send(("job", seq, slot, batch))
            except (BrokenPipeError, OSError) as error:
                self._mark_dead()
                raise WorkerDiedError(
                    f"worker {self.worker_id} control pipe is closed"
                ) from error
            deadline = time.monotonic() + self.request_timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._mark_dead()
                    raise WorkerDiedError(
                        f"worker {self.worker_id} did not answer within "
                        f"{self.request_timeout_s:.0f} s (batch of {batch} "
                        "in flight)",
                        may_have_executed=True,
                    )
                if self.conn.poll(min(0.1, remaining)):
                    try:
                        message = self.conn.recv()
                    except (EOFError, OSError) as error:
                        self._mark_dead()
                        raise WorkerDiedError(
                            f"worker {self.worker_id} died mid-batch "
                            "(control pipe EOF)"
                        ) from error
                    kind = message[0]
                    if kind == "hb":
                        self.last_heartbeat = message[1]
                        continue
                    if kind == "ok":
                        _, r_seq, r_slot, r_batch, checksum = message
                        if r_seq != seq:
                            continue  # stale answer from a superseded dispatch
                        result = np.array(
                            self.response_view[r_slot, :r_batch], copy=True
                        )
                        actual = zlib.crc32(
                            np.ascontiguousarray(result).tobytes()
                        )
                        if actual != checksum:
                            raise RingCorruptionError(
                                f"worker {self.worker_id} response failed its "
                                f"ring CRC check (slot {r_slot}, batch "
                                f"{r_batch}): the shared-memory copy is "
                                "corrupt; the request executed and is not "
                                "retried"
                            )
                        if self.trace is not None:
                            self.trace("complete", seq, slot, batch)
                        return result
                    if kind == "err":
                        _, r_seq, detail = message
                        if r_seq != seq:
                            continue
                        raise RuntimeError(
                            f"worker {self.worker_id} prediction failed:\n"
                            f"{detail}"
                        )
                    if kind == "fatal":
                        self._mark_dead()
                        raise WorkerDiedError(
                            f"worker {self.worker_id} aborted:\n{message[1]}"
                        )
                elif not self.process.is_alive():
                    self._mark_dead()
                    raise WorkerDiedError(
                        f"worker {self.worker_id} died mid-batch "
                        f"(exitcode {self.process.exitcode})"
                    )

    def swap(self, index_set: np.ndarray) -> int:
        """Hot-swap this worker's frozen graph; returns its new generation.

        Serialised against :meth:`predict` by the dispatch lock, so the
        swap message is only sent between batch round-trips — the worker
        never sees it with one of *our* batches outstanding, and batches
        dispatched by the micro-batcher before the swap complete on the old
        generation (the worker processes its control pipe serially).
        """
        with self._dispatch_lock:
            if not self.alive:
                raise WorkerDiedError(f"worker {self.worker_id} is not alive")
            self._seq += 1
            seq = self._seq
            try:
                self.conn.send(("swap", seq, np.asarray(index_set, dtype=np.int64)))
            except (BrokenPipeError, OSError) as error:
                self._mark_dead()
                raise WorkerDiedError(
                    f"worker {self.worker_id} control pipe is closed"
                ) from error
            deadline = time.monotonic() + self.request_timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._mark_dead()
                    raise WorkerDiedError(
                        f"worker {self.worker_id} did not acknowledge the "
                        f"swap within {self.request_timeout_s:.0f} s",
                        may_have_executed=True,
                    )
                if self.conn.poll(min(0.1, remaining)):
                    try:
                        message = self.conn.recv()
                    except (EOFError, OSError) as error:
                        self._mark_dead()
                        raise WorkerDiedError(
                            f"worker {self.worker_id} died mid-swap "
                            "(control pipe EOF)"
                        ) from error
                    kind = message[0]
                    if kind == "hb":
                        self.last_heartbeat = message[1]
                        continue
                    if kind == "swapped":
                        _, r_seq, generation = message
                        if r_seq != seq:
                            continue
                        return int(generation)
                    if kind == "err":
                        _, r_seq, detail = message
                        if r_seq != seq:
                            continue
                        raise RuntimeError(
                            f"worker {self.worker_id} swap failed:\n{detail}"
                        )
                    if kind == "fatal":
                        self._mark_dead()
                        raise WorkerDiedError(
                            f"worker {self.worker_id} aborted:\n{message[1]}"
                        )
                elif not self.process.is_alive():
                    self._mark_dead()
                    raise WorkerDiedError(
                        f"worker {self.worker_id} died mid-swap "
                        f"(exitcode {self.process.exitcode})"
                    )

    def _close_process(self, join_timeout_s: float = 10.0) -> None:
        """Stop the worker process and close the pipe (never raises)."""
        try:
            self.conn.send(("stop",))
        except Exception:
            pass
        self.process.join(join_timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(2.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(2.0)
        try:
            self.conn.close()
        except Exception:
            pass

    def respawn(self, start_timeout_s: float,
                fault_schedule: dict | None = None) -> None:
        """Replace a dead worker with a fresh process on the same rings.

        The rings are parent-owned and intact across a worker death, so the
        replacement simply re-attaches to them.  Holding the dispatch lock
        for the whole dispose-spawn-ready sequence keeps any concurrent
        :meth:`predict` from observing a half-replaced channel.
        """
        with self._dispatch_lock:
            self.alive = False
            self._close_process(join_timeout_s=2.0)
            self._spawn(fault_schedule)
            self.wait_ready(start_timeout_s)

    def shutdown(self, join_timeout_s: float = 10.0) -> None:
        """Stop the worker and release the rings (idempotent, never raises)."""
        self.alive = False
        self._close_process(join_timeout_s)
        for shm in (self.request_shm, self.response_shm):
            if shm is None:
                continue
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass


class ServingCluster:
    """A pool of bundle-replica worker processes behind an async front door.

    Parameters
    ----------
    bundle_path:
        A serving bundle written by :func:`repro.utils.save_bundle`.  Every
        worker rehydrates its own :class:`ForecastService` from this file
        (see :func:`repro.utils.checkpoint.rehydrate_model`), so all
        replicas produce bit-identical predictions.
    workers:
        Number of worker processes.  Throughput scales with workers until
        the host runs out of cores.
    max_batch / max_wait_ms:
        Per-worker micro-batching knobs (see :class:`MicroBatcher`); also
        the ring-slot capacity, and the workspace size each worker pins.
    slots:
        Ring depth per worker.  Each worker has at most one batch in flight
        today, but the ring keeps slot reuse away from the response copy
        and leaves room for pipelined dispatch.
    request_timeout_s:
        Hard deadline for one batched round-trip; a worker that exceeds it
        is declared dead.  Its batch is *not* re-dispatched (the late
        worker may still complete the forward — at-most-once), unlike a
        batch lost to process death, which retries once on a live peer.
    heartbeat_interval_s:
        Idle-worker heartbeat period; also how often an orphaned worker
        checks that its parent still exists.
    start_timeout_s:
        How long to wait for each worker's rehydrate-and-ready handshake.
    blas_threads:
        BLAS thread cap exported to every worker before it imports numpy
        (default 1 — replicas must not fight over cores).  ``None`` leaves
        the host's BLAS configuration untouched.
    backend / chunk_size / memory_budget_mb:
        Forwarded to every worker's
        :meth:`ForecastService.from_checkpoint`.
    mp_context:
        :mod:`multiprocessing` start method.  The default ``"spawn"`` gives
        every worker a clean interpreter (fresh BLAS pools, no inherited
        locks); ``"fork"`` starts faster but is unsafe under threads.
    supervise:
        Run the supervisor thread (default).  ``False`` restores the
        PR-8 behaviour: a dead worker permanently shrinks the pool.
    supervise_interval_s:
        Supervisor polling period.
    restart_backoff_s / restart_backoff_ceiling_s:
        Exponential-backoff schedule for respawning a dead worker: the
        n-th consecutive failure waits ``restart_backoff_s * 2**(n-1)``
        seconds, capped at the ceiling.
    max_crash_loop:
        Circuit breaker: after this many *rapid* consecutive failures
        (each within ``rapid_fail_window_s`` of its spawn) the worker slot
        is parked — no further respawns — and the cluster degrades to the
        surviving pool.  A worker that stays up longer than the window
        resets its failure count.
    heartbeat_timeout_s:
        Idle heartbeat staleness beyond which the supervisor declares a
        worker dead (a wedged-but-running process).  Defaults to
        ``max(5 * heartbeat_interval_s, 5.0)``.
    max_pending:
        Per-worker admission watermark forwarded to each
        :class:`MicroBatcher`; :meth:`submit` tries every live worker and
        raises :class:`~repro.serve.batching.Overloaded` when all are at
        their watermark.  ``None`` keeps queues unbounded.
    fault_plan:
        A :class:`~repro.serve.faults.FaultPlan` scheduling deterministic
        worker kills/stalls/corruption/slow batches for chaos testing.
        ``None`` (production) injects nothing.

    Submitting returns :class:`concurrent.futures.Future`\\ s; asyncio
    callers use :meth:`predict_async` / :meth:`serve_async`.  Use as a
    context manager (or call :meth:`close`) — shutdown drains every
    worker's queue, so in-flight futures resolve or fail deterministically,
    then stops the processes and unlinks the shared memory.
    """

    def __init__(
        self,
        bundle_path: str | Path,
        workers: int = 2,
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        slots: int = 2,
        request_timeout_s: float = 120.0,
        heartbeat_interval_s: float = 1.0,
        start_timeout_s: float = 120.0,
        blas_threads: int | None = 1,
        backend: str | None = None,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
        mp_context: str = "spawn",
        supervise: bool = True,
        supervise_interval_s: float = 0.2,
        restart_backoff_s: float = 0.5,
        restart_backoff_ceiling_s: float = 8.0,
        max_crash_loop: int = 3,
        rapid_fail_window_s: float = 30.0,
        heartbeat_timeout_s: float | None = None,
        max_pending: int | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if supervise_interval_s <= 0:
            raise ValueError("supervise_interval_s must be > 0")
        if restart_backoff_s <= 0 or restart_backoff_ceiling_s < restart_backoff_s:
            raise ValueError(
                "restart_backoff_s must be > 0 and <= restart_backoff_ceiling_s"
            )
        if max_crash_loop < 1:
            raise ValueError("max_crash_loop must be >= 1")
        if rapid_fail_window_s <= 0:
            raise ValueError("rapid_fail_window_s must be > 0")
        if fault_plan is not None and fault_plan.workers < workers:
            raise ValueError(
                f"fault plan covers {fault_plan.workers} worker(s) but the "
                f"cluster has {workers}"
            )
        self.bundle_path = Path(bundle_path)
        bundle = load_bundle(self.bundle_path)
        window_shape, prediction_shape, dtype = _geometry(
            bundle.config, bundle.dtype
        )
        self.window_shape = window_shape
        self.prediction_shape = prediction_shape
        self.dtype = dtype
        self.mask_input = bool(bundle.config.get("mask_input", False))
        self.expected_channels = int(window_shape[-1])
        self.max_batch = max_batch
        self.index_set = (
            None
            if bundle.index_set is None
            else np.asarray(bundle.index_set, dtype=np.int64)
        )
        self._generation = 0
        self._swap_lock = threading.Lock()
        self.start_timeout_s = start_timeout_s
        self.supervise_interval_s = supervise_interval_s
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_ceiling_s = restart_backoff_ceiling_s
        self.max_crash_loop = max_crash_loop
        self.rapid_fail_window_s = rapid_fail_window_s
        self.heartbeat_timeout_s = (
            max(5.0 * heartbeat_interval_s, 5.0)
            if heartbeat_timeout_s is None else heartbeat_timeout_s
        )
        self.fault_plan = fault_plan

        service_kwargs = {
            "backend": backend,
            "chunk_size": chunk_size,
            "memory_budget_mb": memory_budget_mb,
            # The parent verified the bundle digest just above; workers
            # rehydrating the same file need not re-hash it.
            "verify_digest": False,
        }
        ctx = multiprocessing.get_context(mp_context)
        self._channels: list[_WorkerChannel] = []
        self._lifecycle = threading.Lock()
        self._closed = False
        self._rr = 0
        self._rr_lock = threading.Lock()
        self._redispatches = 0
        self._stop_supervisor = threading.Event()
        self._supervisor: threading.Thread | None = None
        try:
            for worker_id in range(workers):
                schedule = (
                    fault_plan.schedule_for(worker_id)
                    if fault_plan is not None else None
                )
                self._channels.append(
                    _WorkerChannel(
                        worker_id, ctx, str(self.bundle_path), slots,
                        max_batch, window_shape, prediction_shape, dtype,
                        request_timeout_s, heartbeat_interval_s,
                        blas_threads, service_kwargs, schedule,
                    )
                )
            for channel in self._channels:
                channel.wait_ready(start_timeout_s)
            for channel in self._channels:
                channel.batcher = MicroBatcher(
                    self._make_predict_fn(channel),
                    max_batch=max_batch,
                    max_wait_ms=max_wait_ms,
                    expected_channels=self.expected_channels,
                    mask_input=self.mask_input,
                    max_pending=max_pending,
                )
        except Exception:
            self._teardown()
            raise
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="cluster-supervisor", daemon=True
            )
            self._supervisor.start()

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _register_failure(self, channel: _WorkerChannel, now: float) -> None:
        """Schedule a backoff restart, or park a crash-looping worker."""
        if (channel.started_at is not None
                and now - channel.started_at > self.rapid_fail_window_s):
            # The worker served fine for a while before dying: not a crash
            # loop, start the backoff ladder from the bottom again.
            channel.consecutive_failures = 0
        channel.consecutive_failures += 1
        if channel.consecutive_failures >= self.max_crash_loop:
            channel.parked = True
            channel.next_restart_at = None
            return
        delay = min(
            self.restart_backoff_s * 2 ** (channel.consecutive_failures - 1),
            self.restart_backoff_ceiling_s,
        )
        channel.next_restart_at = now + delay

    def _respawn_channel(self, channel: _WorkerChannel) -> None:
        """One supervised respawn attempt, including generation catch-up."""
        schedule = None
        if self.fault_plan is not None and self.fault_plan.repeat_on_respawn:
            schedule = self.fault_plan.schedule_for(channel.worker_id)
        channel.respawn(self.start_timeout_s, schedule)
        channel.restarts += 1
        channel.next_restart_at = None
        # A replacement spawned after a hot-swap must serve the *current*
        # graph, not the bundle's frozen one.
        if self._generation > 0 and self.index_set is not None:
            with self._swap_lock:
                channel.swap(self.index_set)

    def _supervise(self) -> None:
        """Detect dead workers and respawn them with backoff + circuit breaker."""
        while not self._stop_supervisor.wait(self.supervise_interval_s):
            for channel in self._channels:
                if self._closed or self._stop_supervisor.is_set():
                    return
                if channel.parked:
                    continue
                try:
                    if channel.alive and channel.poll_liveness(
                            self.heartbeat_timeout_s):
                        continue
                    now = time.monotonic()
                    if channel.next_restart_at is None:
                        self._register_failure(channel, now)
                        continue
                    if now < channel.next_restart_at:
                        continue
                    try:
                        self._respawn_channel(channel)
                    except Exception:
                        self._register_failure(channel, time.monotonic())
                except Exception:
                    # The supervisor must survive anything (a channel torn
                    # down under it during close(), a poll on a dead pipe).
                    continue

    def health(self) -> ClusterHealth:
        """Structured liveness snapshot of the pool (JSON-safe via to_dict)."""
        now = time.monotonic()
        workers = []
        for channel in self._channels:
            if channel.parked:
                state = "parked"
            elif channel.alive:
                state = "live"
            else:
                state = "down"
            backoff_remaining = 0.0
            if not channel.alive and channel.next_restart_at is not None:
                backoff_remaining = max(0.0, channel.next_restart_at - now)
            heartbeat_age = None
            if channel.alive and channel.last_heartbeat is not None:
                heartbeat_age = max(0.0, now - channel.last_heartbeat)
            pid = channel.process.pid if channel.process is not None else None
            pending = channel.batcher.pending if channel.batcher else 0
            workers.append(WorkerHealth(
                worker_id=channel.worker_id,
                state=state,
                pid=pid,
                restarts=channel.restarts,
                consecutive_failures=channel.consecutive_failures,
                backoff_remaining_s=backoff_remaining,
                heartbeat_age_s=heartbeat_age,
                pending=pending,
            ))
        with self._rr_lock:
            redispatches = self._redispatches
        return ClusterHealth(
            num_workers=len(self._channels),
            num_alive=sum(1 for w in workers if w.state == "live"),
            num_parked=sum(1 for w in workers if w.state == "parked"),
            total_restarts=sum(w.restarts for w in workers),
            redispatches=redispatches,
            generation=self._generation,
            pending=sum(w.pending for w in workers),
            workers=workers,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _pick_channel(self, exclude=None) -> _WorkerChannel | None:
        """Next live worker, round-robin; ``None`` when none remain."""
        with self._rr_lock:
            start = self._rr
            self._rr += 1
        n = len(self._channels)
        for offset in range(n):
            channel = self._channels[(start + offset) % n]
            if channel.alive and channel is not exclude:
                return channel
        return None

    def _make_predict_fn(self, channel: _WorkerChannel):
        """The per-worker batched dispatch, with one re-dispatch on death.

        A worker whose process died mid-batch loses nothing but time: the
        batch is retried once on a live peer (direct dispatch — the peer's
        own lock serialises it against its micro-batcher).  A worker that
        merely *timed out* may still complete the forward, so at-most-once
        forbids the retry and the batch fails with a descriptive error.
        With no live peer left the batch's futures fail instead of hanging.
        """

        def predict(windows: np.ndarray) -> np.ndarray:
            try:
                return channel.predict(windows)
            except WorkerDiedError as error:
                if error.may_have_executed:
                    raise ClusterError(
                        f"batch of {windows.shape[0]} timed out on worker "
                        f"{channel.worker_id} and may still execute; "
                        "not re-dispatching (at-most-once)"
                    ) from error
                peer = self._pick_channel(exclude=channel)
                if peer is None:
                    raise ClusterError(
                        f"batch of {windows.shape[0]} failed: {error}; "
                        "no live worker left to re-dispatch to"
                    ) from error
                with self._rr_lock:
                    self._redispatches += 1
                return peer.predict(windows)

        return predict

    # ------------------------------------------------------------------ #
    # Front door
    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray, mask: np.ndarray | None = None,
               deadline_s: float | None = None) -> Future:
        """Enqueue one ``(h, N, C)`` window; resolves to ``(f, N, ·)``.

        Routed round-robin into one worker's micro-batcher.  ``mask`` and
        ``deadline_s`` follow the :meth:`MicroBatcher.submit` contract.
        Under ``max_pending`` pressure, a worker at its watermark is
        skipped for the next live one; when *every* live worker is
        saturated the submission is rejected with a typed
        :class:`~repro.serve.batching.Overloaded` error.  Raises
        ``RuntimeError`` after :meth:`close` and :class:`ClusterError`
        when every worker is dead.
        """
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ServingCluster")
        last_error: Overloaded | None = None
        for _ in range(len(self._channels)):
            channel = self._pick_channel()
            if channel is None:
                raise ClusterError("no live workers in the cluster")
            try:
                return channel.batcher.submit(window, mask=mask,
                                              deadline_s=deadline_s)
            except Overloaded as error:
                last_error = error
        raise Overloaded(
            "every live worker is at its pending watermark; shedding new work"
        ) from last_error

    def predict(self, window: np.ndarray, mask: np.ndarray | None = None,
                timeout: float | None = None,
                deadline_s: float | None = None) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(window, mask=mask,
                           deadline_s=deadline_s).result(timeout=timeout)

    async def predict_async(self, window: np.ndarray,
                            mask: np.ndarray | None = None,
                            deadline_s: float | None = None) -> np.ndarray:
        """Awaitable single-window forecast (asyncio front door)."""
        return await asyncio.wrap_future(
            self.submit(window, mask=mask, deadline_s=deadline_s)
        )

    async def serve_async(self, windows: np.ndarray,
                          masks: np.ndarray | None = None,
                          deadline_s: float | None = None) -> np.ndarray:
        """Fan ``(R, h, N, C)`` requests across the pool and gather ``(R, f, N, ·)``.

        Submission happens up front (so micro-batches can coalesce across
        the whole burst); the gather preserves request order.
        """
        futures = [
            self.submit(window, mask=None if masks is None else masks[i],
                        deadline_s=deadline_s)
            for i, window in enumerate(windows)
        ]
        results = await asyncio.gather(
            *(asyncio.wrap_future(future) for future in futures)
        )
        return np.stack(results)

    # ------------------------------------------------------------------ #
    # Drift hot-swap
    # ------------------------------------------------------------------ #
    def swap_index_set(self, index_set: np.ndarray) -> int:
        """Broadcast a frozen-graph hot-swap to every live worker.

        Implements the same protocol as
        :meth:`ForecastService.swap_index_set`, so a
        :class:`~repro.serve.online.DriftMonitor` drives both targets
        identically.  Workers process their control pipe serially, so every
        batch dispatched before the broadcast completes on the old
        generation; batches submitted after it serve from the new one.  A
        worker that dies mid-swap is marked dead (its batches re-dispatch
        as usual) — the swap succeeds as long as one worker remains, and
        raises :class:`ClusterError` otherwise.  A supervised respawn
        re-applies the newest generation before the replacement rejoins the
        pool, so a swap is never silently undone by a restart.  Returns the
        cluster's new generation.
        """
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("cannot swap a closed ServingCluster")
        index_set = np.asarray(index_set, dtype=np.int64).ravel()
        with self._swap_lock:
            generations = []
            for channel in self._channels:
                if not channel.alive:
                    continue
                try:
                    generations.append(channel.swap(index_set))
                except WorkerDiedError:
                    continue
            if not generations:
                raise ClusterError("no live worker survived the swap broadcast")
            self._generation = max(generations)
            self.index_set = index_set.copy()
            return self._generation

    @property
    def generation(self) -> int:
        """Serving-graph generation of the newest completed swap."""
        return self._generation

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def workers(self) -> int:
        return len(self._channels)

    @property
    def alive_workers(self) -> int:
        return sum(1 for channel in self._channels if channel.alive)

    @property
    def parked_workers(self) -> int:
        return sum(1 for channel in self._channels if channel.parked)

    @property
    def stats(self) -> BatchStats:
        """Cluster-wide batching counters (sum over every worker's batcher)."""
        total = BatchStats()
        for channel in self._channels:
            if channel.batcher is not None:
                total.merge(channel.batcher.stats)
        return total

    @property
    def worker_stats(self) -> list[BatchStats]:
        return [
            channel.batcher.stats
            for channel in self._channels
            if channel.batcher is not None
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _teardown(self) -> None:
        for channel in self._channels:
            if channel.batcher is not None:
                channel.batcher.close()
        for channel in self._channels:
            channel.shutdown()

    def close(self) -> None:
        """Drain in-flight requests, stop the workers, release the rings.

        Safe to call repeatedly and from several threads.  Every future
        already submitted resolves (or fails with a descriptive error —
        dead workers included) before the processes are stopped; late
        :meth:`submit` calls raise deterministically.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
        self._teardown()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort: never leak processes or shm
        try:
            self.close()
        except Exception:
            pass
