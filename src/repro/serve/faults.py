"""Deterministic fault injection for the serving cluster.

Chaos scenarios — worker kills, heartbeat stalls, ring-slot corruption,
slow batches — are reproducible schedules, not flaky sleeps.  A
:class:`FaultPlan` turns a seed into a fixed per-worker schedule keyed by
the ordinal of each job the worker serves; the worker consumes the
schedule through a :class:`FaultInjector` at well-defined seams in its
message loop.  The default (no plan) is a no-op, so production paths pay
nothing.

The schedule is computed once in the parent from ``numpy``'s seeded
generator and shipped to workers as plain picklable data, so two runs
with the same seed inject byte-identical failure sequences regardless of
scheduling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultInjector"]

#: Supported fault kinds, in the order ordinals are assigned to them.
FAULT_KINDS = ("kill", "stall", "corrupt", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *worker_id* fails on its *request_index*-th job.

    ``request_index`` counts the jobs a worker serves (0-based), not the
    cluster-wide sequence number — the schedule stays deterministic no
    matter how the round-robin interleaves with other workers.
    """

    worker_id: int
    request_index: int
    kind: str
    duration_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.worker_id < 0 or self.request_index < 0:
            raise ValueError("worker_id and request_index must be >= 0")
        if self.duration_s < 0:
            raise ValueError("duration_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of faults across cluster workers.

    For each worker, ``kills + stalls + corruptions + slow`` distinct job
    ordinals are drawn without replacement from ``range(horizon)`` and
    assigned to kinds in the fixed order of :data:`FAULT_KINDS`.  The same
    ``(workers, seed, horizon, counts)`` always yields the same schedule.
    """

    workers: int
    seed: int = 0
    horizon: int = 32
    kills_per_worker: int = 1
    stalls_per_worker: int = 0
    corruptions_per_worker: int = 0
    slow_batches_per_worker: int = 0
    stall_s: float = 0.25
    slow_s: float = 0.05
    #: When True a respawned worker replays the same schedule; the default
    #: injects each worker's faults once so the pool can recover.
    repeat_on_respawn: bool = False
    events: tuple = field(init=False, default=())

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1")
        counts = (self.kills_per_worker, self.stalls_per_worker,
                  self.corruptions_per_worker, self.slow_batches_per_worker)
        if any(c < 0 for c in counts):
            raise ValueError("per-worker fault counts must be >= 0")
        total = sum(counts)
        if total > self.horizon:
            raise ValueError(
                f"cannot place {total} faults in a horizon of {self.horizon} jobs"
            )
        rng = np.random.default_rng(self.seed)
        durations = {"kill": 0.0, "stall": self.stall_s,
                     "corrupt": 0.0, "slow": self.slow_s}
        events = []
        for worker_id in range(self.workers):
            ordinals = rng.choice(self.horizon, size=total, replace=False)
            cursor = 0
            for kind, count in zip(FAULT_KINDS, counts):
                for _ in range(count):
                    events.append(FaultEvent(
                        worker_id=worker_id,
                        request_index=int(ordinals[cursor]),
                        kind=kind,
                        duration_s=durations[kind],
                    ))
                    cursor += 1
        events.sort(key=lambda e: (e.worker_id, e.request_index))
        object.__setattr__(self, "events", tuple(events))

    def schedule_for(self, worker_id: int) -> dict:
        """Return ``{request_index: FaultEvent}`` for one worker.

        The mapping is plain picklable data, safe to ship through a spawn
        context into the worker process.
        """
        return {e.request_index: e for e in self.events
                if e.worker_id == worker_id}

    def summary(self) -> dict:
        """JSON-safe description of the plan for bench reports."""
        by_kind = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            by_kind[event.kind] += 1
        return {
            "workers": self.workers,
            "seed": self.seed,
            "horizon": self.horizon,
            "events": len(self.events),
            "by_kind": by_kind,
            "repeat_on_respawn": self.repeat_on_respawn,
        }


class FaultInjector:
    """Consumes a per-worker schedule as the worker serves jobs.

    Lives inside the worker process.  ``next_event()`` is called once per
    served job and returns the :class:`FaultEvent` scheduled for that
    ordinal, or ``None``.  With an empty schedule every call is a cheap
    dict miss — the production fast path.
    """

    def __init__(self, schedule: dict | None = None):
        self._schedule = dict(schedule) if schedule else {}
        self._served = 0

    def next_event(self):
        event = self._schedule.get(self._served)
        self._served += 1
        return event

    @property
    def served(self) -> int:
        return self._served

    @property
    def pending(self) -> int:
        """Faults still scheduled at or after the current ordinal."""
        return sum(1 for index in self._schedule if index >= self._served)


def corrupt_ring_slot(view: np.ndarray) -> None:
    """Overwrite a response-ring slot in place to simulate shm corruption.

    Called *after* the worker computed the reply checksum, so the parent's
    CRC verification observes a payload/checksum mismatch end to end.
    """
    view.fill(np.nan)
