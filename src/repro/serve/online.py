"""Stateful online serving: sessions, incremental scalers, drift hot-swap.

The one-shot :class:`~repro.serve.ForecastService` answers requests from a
graph frozen at load time.  Real deployments see an unbounded observation
feed instead: scalers go stale and the frozen significant-neighbour index
set drifts away from the live correlation structure.  This module adds the
stateful half of the serving stack:

* :class:`StreamingSession` — a rolling per-client history ring.  Clients
  ``push`` observations in **original units**; the session normalises the
  target channel with the shared scaler, zero-imputes missing entries in
  normalised space (mean-imputation in original units — exactly what the
  training data layer does) and forecasts on demand once the window fills.
  Forecasts are scored against the observations that subsequently arrive,
  into a per-session :class:`~repro.evaluation.streaming.StreamingMetrics`.
* :class:`DriftMonitor` — re-runs
  :class:`~repro.core.sampling.SignificantNeighborsSampling` over the
  pooled recent history (each node's recent normalised trace is its
  "embedding", through the same chunked ``memory_budget_mb`` ranking path
  training uses), compares the fresh index set to the frozen one with
  :func:`~repro.core.sampling.index_set_overlap`, and hot-swaps the serving
  target (``swap_index_set``) when overlap drops below the configured
  threshold.
* :class:`SessionManager` — owns the shared scaler, the session registry
  and the drift monitor; every push feeds all three.

Both swap targets implement the same two-member protocol —
``swap_index_set(index_set) -> generation`` and ``generation`` — so a
manager drives a single-process :class:`~repro.serve.ForecastService` and a
multi-worker :class:`~repro.serve.ServingCluster` identically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.core.sampling import SignificantNeighborsSampling, index_set_overlap
from repro.evaluation.streaming import StreamingMetrics


@dataclass
class DriftConfig:
    """Knobs of the online drift monitor (persisted in v3 bundles).

    Attributes
    ----------
    overlap_threshold:
        Swap when ``index_set_overlap(frozen, fresh) < threshold``.  ``0``
        never swaps; a value ``> 1`` swaps on every eligible check (the
        forced-drift setting used by smoke tests).
    min_history:
        Pooled timesteps required before a drift check may run at all —
        re-sampling over a few rows would compare noise to the frozen set.
    check_every:
        Observed timesteps between automatic checks
        (:meth:`DriftMonitor.maybe_check`).
    cooldown:
        Observed timesteps after a swap during which further checks may
        measure but not swap — lets the history window refill with
        post-swap data before the next decision.
    history_window:
        Length of the pooled recent-history ring the re-sampling runs over.
    memory_budget_mb:
        Scratch budget handed to the re-sampling SNS ranking (the chunked
        large-``N`` path); ``None`` uses the single full-``N`` block.
    """

    overlap_threshold: float = 0.5
    min_history: int = 64
    check_every: int = 32
    cooldown: int = 64
    history_window: int = 256
    memory_budget_mb: float | None = None

    def __post_init__(self) -> None:
        if self.overlap_threshold < 0.0:
            raise ValueError("overlap_threshold must be >= 0")
        for name in ("min_history", "check_every", "history_window"):
            if int(getattr(self, name)) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.history_window < self.min_history:
            raise ValueError("history_window must be >= min_history")


@dataclass
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.check_now` call."""

    checked: bool
    overlap: float | None
    swapped: bool
    generation: int
    timesteps: int
    threshold: float


class DriftMonitor:
    """Background re-sampling job that hot-swaps the serving graph on drift.

    Feeds each node's pooled recent normalised trace — an ``(N, T)`` matrix
    — into a dedicated :class:`SignificantNeighborsSampling` as the node
    "embeddings" (``explore=False``, so the fresh index set is
    deterministic for a given history), measures the overlap against the
    currently frozen set, and calls ``target.swap_index_set(fresh)`` when
    the overlap falls below ``config.overlap_threshold``.

    ``target`` is anything with ``swap_index_set`` / ``generation`` — a
    :class:`~repro.serve.ForecastService` or a
    :class:`~repro.serve.ServingCluster`.  Checks run synchronously from
    :meth:`maybe_check` / :meth:`check_now`, or from the optional
    :meth:`start` background thread.
    """

    def __init__(
        self,
        target,
        sampler: SignificantNeighborsSampling,
        frozen_index_set: np.ndarray,
        config: DriftConfig | None = None,
    ):
        self.target = target
        self.sampler = sampler
        self.frozen_index_set = np.asarray(frozen_index_set, dtype=np.int64).copy()
        self.config = config or DriftConfig()
        self.num_checks = 0
        self.num_swaps = 0
        self.last_report: DriftReport | None = None
        num_nodes = sampler.num_nodes
        self._history = np.zeros((self.config.history_window, num_nodes), dtype=np.float64)
        self._rows_seen = 0
        self._since_check = 0
        # A fresh monitor may swap on its very first eligible check.
        self._since_swap = self.config.cooldown
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @classmethod
    def from_model_config(
        cls, target, model_config: dict, frozen_index_set: np.ndarray,
        config: DriftConfig | None = None,
    ) -> "DriftMonitor":
        """Build the re-sampling SNS from a bundle/model config dict."""
        config = config or DriftConfig()
        sampler = SignificantNeighborsSampling(
            num_nodes=int(model_config["num_nodes"]),
            num_significant=int(model_config["num_significant"]),
            top_k=int(model_config["top_k"]),
            seed=int(model_config.get("seed", 0) or 0),
            memory_budget_mb=config.memory_budget_mb,
        )
        return cls(target, sampler, frozen_index_set, config=config)

    # ------------------------------------------------------------------ #
    # Feed + checks
    # ------------------------------------------------------------------ #
    def observe(self, values: np.ndarray) -> None:
        """Append ``(T, N)`` normalised (and imputed) rows to the pooled ring."""
        values = np.atleast_2d(np.asarray(values, dtype=np.float64))
        if values.shape[1] != self._history.shape[1]:
            raise ValueError(
                f"expected rows of {self._history.shape[1]} nodes, got {values.shape[1]}"
            )
        window = self._history.shape[0]
        with self._lock:
            for row in values[-window:]:
                self._history[self._rows_seen % window] = row
                self._rows_seen += 1
            steps = values.shape[0]
            self._since_check += steps
            self._since_swap += steps

    def maybe_check(self) -> DriftReport | None:
        """Run :meth:`check_now` when ``check_every`` timesteps have passed."""
        with self._lock:
            due = self._since_check >= self.config.check_every
        return self.check_now() if due else None

    def _snapshot(self) -> np.ndarray:
        window = self._history.shape[0]
        if self._rows_seen < window:
            return self._history[: self._rows_seen].copy()
        pos = self._rows_seen % window
        return np.concatenate([self._history[pos:], self._history[:pos]])

    def check_now(self) -> DriftReport:
        """Re-sample over recent history; swap the target if drift crossed.

        Measuring is always allowed once ``min_history`` rows pooled; the
        swap itself additionally honours the post-swap ``cooldown``.
        """
        config = self.config
        with self._lock:
            timesteps = min(self._rows_seen, self._history.shape[0])
            if timesteps < config.min_history:
                report = DriftReport(
                    checked=False, overlap=None, swapped=False,
                    generation=int(self.target.generation),
                    timesteps=timesteps, threshold=config.overlap_threshold,
                )
                self.last_report = report
                return report
            features = self._snapshot().T  # (N, T): one recent trace per node
            self._since_check = 0
            may_swap = self._since_swap >= config.cooldown
        fresh = np.asarray(self.sampler.sample(features, explore=False), dtype=np.int64)
        overlap = index_set_overlap(self.frozen_index_set, fresh)
        swapped = False
        if overlap < config.overlap_threshold and may_swap:
            generation = int(self.target.swap_index_set(fresh))
            swapped = True
            with self._lock:
                self.frozen_index_set = fresh.copy()
                self._since_swap = 0
        else:
            generation = int(self.target.generation)
        report = DriftReport(
            checked=True, overlap=overlap, swapped=swapped,
            generation=generation, timesteps=timesteps,
            threshold=config.overlap_threshold,
        )
        with self._lock:
            self.num_checks += 1
            self.num_swaps += int(swapped)
            self.last_report = report
        return report

    # ------------------------------------------------------------------ #
    # Optional background job
    # ------------------------------------------------------------------ #
    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`check_now` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("drift monitor already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.check_now()

        self._thread = threading.Thread(target=loop, name="drift-monitor", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (no-op when not started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None


class StreamingSession:
    """A rolling per-client observation window over one serving target.

    Clients push observations in original units; :meth:`forecast` assembles
    the normalised ``(history, N, C)`` window the model expects.  Every
    forecast is held as *pending* and scored against the next ``horizon``
    pushed observations into :attr:`metrics`, so live accuracy is available
    without a separate evaluation pass.
    """

    def __init__(
        self,
        predict_fn,
        history: int,
        horizon: int,
        num_nodes: int,
        width: int,
        scaler=None,
        mask_input: bool = False,
        quantiles: tuple[float, ...] | None = None,
        null_value: float | None = 0.0,
    ):
        if width < 1:
            raise ValueError("width must cover at least the target channel")
        self._predict = predict_fn
        self.history = int(history)
        self.horizon = int(horizon)
        self.num_nodes = int(num_nodes)
        self.width = int(width)  # channels excluding the appended mask
        self.scaler = scaler
        self.mask_input = bool(mask_input)
        self.null_value = null_value
        self._values = np.zeros((self.history, self.num_nodes, self.width), dtype=np.float64)
        self._mask = (
            np.ones((self.history, self.num_nodes), dtype=np.float64)
            if self.mask_input
            else None
        )
        self._rows_seen = 0
        self._pending: list[list] = []  # [forecast (f, N, ·), [actual rows (N,)]]
        self.metrics = StreamingMetrics(null_value=null_value, quantiles=quantiles)
        self.num_forecasts = 0
        self._lock = threading.Lock()

    @property
    def ready(self) -> bool:
        """Whether the history ring has filled once."""
        return self._rows_seen >= self.history

    @property
    def rows_seen(self) -> int:
        return self._rows_seen

    def push(
        self,
        values: np.ndarray,
        covariates: np.ndarray | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fold ``(T, N)`` raw observations into the ring.

        ``covariates`` supplies the ``width - 1`` non-target channels
        (time-of-day encodings, declared exogenous inputs) as
        ``(T, N, width - 1)``; required when the model consumes them.
        ``mask`` (``(T, N)``, nonzero = observed) is only accepted for
        mask-aware models; unobserved entries are zero-imputed in
        normalised space, exactly like the training data layer.  Returns
        the normalised (imputed) target rows — the drift monitor's feed.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[None]
        if values.ndim != 2 or values.shape[1] != self.num_nodes:
            raise ValueError(
                f"values must be (steps, {self.num_nodes}), got shape {values.shape}"
            )
        steps = values.shape[0]
        if self.width > 1:
            if covariates is None:
                raise ValueError(
                    f"model consumes {self.width - 1} covariate channels; "
                    "pass covariates=(steps, nodes, channels)"
                )
            covariates = np.asarray(covariates, dtype=np.float64)
            if covariates.shape != (steps, self.num_nodes, self.width - 1):
                raise ValueError(
                    f"covariates must be {(steps, self.num_nodes, self.width - 1)}, "
                    f"got {covariates.shape}"
                )
        elif covariates is not None:
            raise ValueError("model consumes no covariate channels; drop covariates")
        if mask is not None:
            if not self.mask_input:
                raise ValueError("model was not trained with mask_input; drop the mask")
            mask = np.asarray(mask)
            if mask.shape != (steps, self.num_nodes):
                raise ValueError(
                    f"mask must be (steps, nodes) = {(steps, self.num_nodes)}, "
                    f"got {mask.shape}"
                )
        elif self.mask_input:
            mask = np.ones((steps, self.num_nodes))

        normalised = (
            np.asarray(self.scaler.transform(values), dtype=np.float64)
            if self.scaler is not None
            else values
        )
        if mask is not None:
            # Zero in normalised space is the training mean — the imputation
            # convention of the training loader for masked entries.
            normalised = np.where(mask != 0, normalised, 0.0)

        with self._lock:
            for step in range(steps):
                row = self._rows_seen % self.history
                self._values[row, :, 0] = normalised[step]
                if self.width > 1:
                    self._values[row, :, 1:] = covariates[step]
                if self._mask is not None:
                    self._mask[row] = mask[step] != 0
                self._rows_seen += 1
            self._score_pending(values, mask)
        return normalised

    def _score_pending(self, values: np.ndarray, mask: np.ndarray | None) -> None:
        """Feed raw rows to pending forecasts; score the ones that complete."""
        if self.null_value is not None and mask is not None:
            values = np.where(mask != 0, values, self.null_value)
        done = []
        for entry in self._pending:
            forecast, actual_rows = entry
            for row in values:
                if len(actual_rows) < self.horizon:
                    actual_rows.append(row)
            if len(actual_rows) >= self.horizon:
                done.append(entry)
        for entry in done:
            forecast, actual_rows = entry
            actual = np.stack(actual_rows)[..., None]  # (f, N, 1)
            self.metrics.update(forecast[None], actual[None])
            self._pending.remove(entry)

    def window(self) -> np.ndarray:
        """The assembled ``(history, N, width)`` normalised window, oldest first."""
        with self._lock:
            if not self.ready:
                raise RuntimeError(
                    f"session history not yet full ({self._rows_seen} of "
                    f"{self.history} rows pushed)"
                )
            pos = self._rows_seen % self.history
            return np.concatenate([self._values[pos:], self._values[:pos]])

    def mask_window(self) -> np.ndarray | None:
        """The ``(history, N)`` observation mask aligned with :meth:`window`."""
        if self._mask is None:
            return None
        with self._lock:
            pos = self._rows_seen % self.history
            return np.concatenate([self._mask[pos:], self._mask[:pos]])

    def forecast(self) -> np.ndarray:
        """Forecast ``(horizon, N, ·)`` in original units from the current ring.

        Raises ``RuntimeError`` until ``history`` rows have been pushed.
        The forecast is also queued for scoring against the observations
        that arrive next (see :attr:`metrics`).

        Fault tolerance: the session mutates nothing until the predict
        succeeds, so a failed forward (a cluster worker dying mid-stream, a
        typed overload/deadline error) raises to the caller and leaves the
        history ring, pending-score queue and counters exactly as they
        were — the next :meth:`forecast` on the recovered pool serves the
        same window.
        """
        window = self.window()
        mask = self.mask_window()
        output = np.asarray(self._predict(window, mask))
        with self._lock:
            self._pending.append([output, []])
            self.num_forecasts += 1
        return output


class SessionManager:
    """Session registry + shared scaler + drift monitor over one target.

    Parameters
    ----------
    target:
        A :class:`~repro.serve.ForecastService` or
        :class:`~repro.serve.ServingCluster` (anything exposing the
        single-window predict contract and, for drift, ``swap_index_set`` /
        ``generation``).
    config:
        The model/bundle config dict (``history``, ``horizon``,
        ``num_nodes``, channel fields, SNS fields).
    scaler:
        The shared target scaler sessions normalise through.  With a
        single-process service this should be *the service's own scaler*
        so incremental updates propagate to the inverse transform.
    drift:
        A :class:`DriftConfig` (or its dict form, e.g. from a v3 bundle's
        ``drift`` record) enabling the drift monitor; ``None`` disables it.
    update_scaler:
        When ``True``, every push also ``partial_fit``\\ s the shared scaler
        (mask-aware), so normalisation tracks the live feed.  Off by
        default: a moving scaler trades bit-reproducibility for freshness,
        and pre-v3 scaler statistics cannot be extended at all.
    null_value:
        Missing-value convention of the live accuracy metrics.
    max_sessions:
        Session-registry capacity.  Beyond it the least-recently-used
        session is evicted (its metrics are merged into the manager's
        evicted accumulator first, so :meth:`metrics` never loses scored
        forecasts).  ``None`` keeps the registry unbounded — an endless
        stream of one-shot clients will then grow RSS forever.
    session_ttl_s:
        Idle time after which a session is evicted on the next registry
        access (same metrics-preserving drop).  ``None`` disables the TTL.
    clock:
        Monotonic time source for TTL/LRU bookkeeping (injectable for
        deterministic tests).
    """

    def __init__(
        self,
        target,
        config: dict,
        scaler=None,
        drift: DriftConfig | dict | None = None,
        update_scaler: bool = False,
        null_value: float | None = 0.0,
        max_sessions: int | None = None,
        session_ttl_s: float | None = None,
        clock=time.monotonic,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be > 0")
        self.target = target
        self.config = dict(config)
        self.scaler = scaler
        self.update_scaler = bool(update_scaler)
        self.null_value = null_value
        self.history = int(self.config["history"])
        self.horizon = int(self.config["horizon"])
        self.num_nodes = int(self.config["num_nodes"])
        self.mask_input = bool(self.config.get("mask_input", False))
        self.exog_dim = int(self.config.get("exog_dim", 0) or 0)
        self.width = int(self.config.get("input_dim", 1)) + self.exog_dim
        quantiles = self.config.get("quantiles")
        self.quantiles = None if quantiles is None else tuple(float(q) for q in quantiles)
        if self.update_scaler and scaler is not None and getattr(scaler, "count_", None) is None:
            raise ValueError(
                "update_scaler requires scaler statistics with sample-count "
                "provenance (a v3 bundle); re-save the bundle or pass "
                "update_scaler=False"
            )
        if isinstance(drift, dict):
            drift = DriftConfig(**drift)
        self.monitor: DriftMonitor | None = None
        if drift is not None:
            frozen = self._target_index_set(target)
            if frozen is None:
                raise ValueError(
                    "drift monitoring requires a frozen-graph target with an "
                    "index set to compare against"
                )
            self.monitor = DriftMonitor.from_model_config(
                target, self.config, frozen, config=drift
            )
        # Insertion order doubles as the LRU order: a touched session is
        # re-inserted at the end, so the first key is always the coldest.
        self._sessions: dict[str, StreamingSession] = {}
        self._last_used: dict[str, float] = {}
        self._lock = threading.Lock()
        self.max_sessions = max_sessions
        self.session_ttl_s = session_ttl_s
        self._clock = clock
        self.num_evicted = 0
        self._evicted_metrics = StreamingMetrics(
            null_value=null_value, quantiles=self.quantiles
        )

    @staticmethod
    def _target_index_set(target) -> np.ndarray | None:
        frozen = getattr(target, "frozen", None)
        if frozen is not None and getattr(frozen, "index_set", None) is not None:
            return np.asarray(frozen.index_set, dtype=np.int64)
        index_set = getattr(target, "index_set", None)
        if index_set is not None:
            return np.asarray(index_set, dtype=np.int64)
        return None

    @classmethod
    def from_checkpoint(
        cls,
        path,
        workers: int = 0,
        drift: DriftConfig | dict | None = None,
        update_scaler: bool = False,
        null_value: float | None = 0.0,
        max_sessions: int | None = None,
        session_ttl_s: float | None = None,
        **target_kwargs,
    ) -> "SessionManager":
        """Build a manager (and its target) straight from a serving bundle.

        ``workers == 0`` serves through a single-process
        :class:`~repro.serve.ForecastService`; ``workers >= 1`` through a
        :class:`~repro.serve.ServingCluster`.  ``drift`` defaults to the
        bundle's recorded v3 ``drift`` record (``None`` in older bundles
        disables monitoring).
        """
        from repro.utils.checkpoint import load_bundle, rehydrate_scaler

        bundle = load_bundle(path)
        if drift is None and bundle.drift is not None:
            drift = dict(bundle.drift)
        if workers:
            from repro.serve.cluster import ServingCluster

            target = ServingCluster(path, workers=workers, **target_kwargs)
            scaler = rehydrate_scaler(bundle)
        else:
            from repro.serve.service import ForecastService

            target = ForecastService.from_checkpoint(path, **target_kwargs)
            scaler = target.scaler
        return cls(
            target,
            bundle.config,
            scaler=scaler,
            drift=drift,
            update_scaler=update_scaler,
            null_value=null_value,
            max_sessions=max_sessions,
            session_ttl_s=session_ttl_s,
        )

    # ------------------------------------------------------------------ #
    # Session plumbing
    # ------------------------------------------------------------------ #
    def _predict_window(self, window: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
        target = self.target
        if hasattr(target, "predict_one"):
            return target.predict_one(window, mask=mask)
        return target.predict(window, mask=mask)

    def _evict_locked(self, client_id: str) -> None:
        """Drop one session, merging its scored metrics first (lock held)."""
        session = self._sessions.pop(client_id)
        self._last_used.pop(client_id, None)
        self._evicted_metrics.merge(session.metrics)
        self.num_evicted += 1

    def _sweep_locked(self, protect: str | None = None) -> None:
        """Apply TTL then LRU-capacity eviction (lock held).

        ``protect`` exempts the session being touched right now — the
        client asking for it must never have it evicted out from under
        them, even at capacity.
        """
        now = self._clock()
        if self.session_ttl_s is not None:
            expired = [
                client_id for client_id, last in self._last_used.items()
                if client_id != protect and now - last > self.session_ttl_s
            ]
            for client_id in expired:
                self._evict_locked(client_id)
        if self.max_sessions is not None:
            while len(self._sessions) > self.max_sessions:
                coldest = next(
                    (cid for cid in self._sessions if cid != protect), None
                )
                if coldest is None:
                    break
                self._evict_locked(coldest)

    def _touch_locked(self, client_id: str) -> None:
        """Mark ``client_id`` most-recently-used (lock held)."""
        session = self._sessions.pop(client_id)
        self._sessions[client_id] = session  # re-insert at the LRU tail
        self._last_used[client_id] = self._clock()

    def session(self, client_id: str) -> StreamingSession:
        """Get or lazily create the session of ``client_id``.

        Registry bounds apply here: idle sessions past ``session_ttl_s``
        are dropped, and with ``max_sessions`` reached the least-recently-
        used session makes room — both merge the evicted session's metrics
        into the manager before the drop.
        """
        with self._lock:
            session = self._sessions.get(client_id)
            if session is None:
                session = StreamingSession(
                    self._predict_window,
                    history=self.history,
                    horizon=self.horizon,
                    num_nodes=self.num_nodes,
                    width=self.width,
                    scaler=self.scaler,
                    mask_input=self.mask_input,
                    quantiles=self.quantiles,
                    null_value=self.null_value,
                )
                self._sessions[client_id] = session
            self._touch_locked(client_id)
            self._sweep_locked(protect=client_id)
            return session

    def __len__(self) -> int:
        return len(self._sessions)

    def push_observations(
        self,
        client_id: str,
        values: np.ndarray,
        covariates: np.ndarray | None = None,
        mask: np.ndarray | None = None,
    ) -> DriftReport | None:
        """Feed observations to one session, the scaler and the drift monitor.

        Returns the :class:`DriftReport` when this push triggered a due
        drift check, else ``None``.
        """
        session = self.session(client_id)
        if self.update_scaler and self.scaler is not None:
            sample_mask = None
            if mask is not None:
                sample_mask = np.asarray(mask)
                values_arr = np.atleast_2d(np.asarray(values, dtype=np.float64))
                sample_mask = sample_mask.reshape(values_arr.shape)
            self.scaler.partial_fit(np.atleast_2d(values), sample_mask=sample_mask)
        normalised = session.push(values, covariates=covariates, mask=mask)
        if self.monitor is not None:
            self.monitor.observe(normalised)
            return self.monitor.maybe_check()
        return None

    def forecast(self, client_id: str) -> np.ndarray:
        """Forecast from ``client_id``'s current window (original units)."""
        with self._lock:
            session = self._sessions.get(client_id)
            if session is not None:
                self._touch_locked(client_id)
        if session is None:
            raise KeyError(f"unknown session {client_id!r}; push observations first")
        return session.forecast()

    @property
    def generation(self) -> int:
        """The target's current serving-graph generation."""
        return int(getattr(self.target, "generation", 0))

    def metrics(self) -> dict[str, float]:
        """Live accuracy over every session, evicted sessions included.

        Eviction merges a dropped session's accumulator into the manager
        before the drop, so the aggregate never loses scored forecasts.
        """
        merged = StreamingMetrics(null_value=self.null_value, quantiles=self.quantiles)
        with self._lock:
            sessions = list(self._sessions.values())
            merged.merge(self._evicted_metrics)
        for session in sessions:
            merged.merge(session.metrics)
        return merged.compute()
