"""The :class:`ForecastService`: checkpoint-to-prediction serving runtime."""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.backend import BackendUnavailableError, OpsBackend, get_backend
from repro.data.scalers import StandardScaler
from repro.nn.module import Module
from repro.tensor import Tensor, no_grad
from repro.utils.checkpoint import load_bundle, rehydrate_model, rehydrate_scaler


@dataclass
class FrozenGraph:
    """Graph artefacts cached once at service start-up.

    Attributes
    ----------
    adjacency:
        The slim ``(N, M)`` adjacency ``A_s`` (or a dense ``(N, N)`` support
        for predefined-graph models), as produced by SNS + sparse attention.
    index_set:
        The frozen significant-neighbour indices ``I`` (``None`` for dense
        supports).
    degree_scale:
        The ``(N, 1)`` degree normalisation ``(D + I)^{-1}`` of Eq. 9.
    """

    adjacency: np.ndarray
    index_set: np.ndarray | None
    degree_scale: np.ndarray

    @classmethod
    def from_model(cls, model: Module) -> "FrozenGraph":
        """Run SNS + attention once on ``model`` and capture the artefacts."""
        with no_grad():
            adjacency = model.slim_adjacency().data
        index_set = None
        if not getattr(getattr(model, "config", None), "use_predefined_graph", False):
            index_set = np.asarray(model.index_set, dtype=np.int64)
        degree_scale = 1.0 / (adjacency.sum(axis=-1, keepdims=True) + 1.0)
        return cls(
            adjacency=adjacency,
            index_set=index_set,
            degree_scale=degree_scale.astype(adjacency.dtype, copy=False),
        )


@dataclass
class _ServingState:
    """One generation of frozen serving artefacts, swapped as a unit.

    Everything :meth:`ForecastService._forward` needs lives in this holder
    so a drift-triggered hot swap is a single attribute store (atomic under
    the GIL): in-flight requests that already read the holder finish on the
    old kernel — drained, never interrupted — while new requests pick up the
    fresh generation.
    """

    frozen: FrozenGraph | None = None
    adjacency: Tensor | None = None
    degree_scale: Tensor | None = None
    kernel: object | None = None
    generation: int = 0


class ForecastService:
    """Serve forecast requests from a trained model at high throughput.

    In **frozen-graph mode** (the default, and the regime a converged SAGDFN
    is in anyway) the slim adjacency, index set and degree scales are
    computed once in ``__init__`` and every :meth:`predict` call runs only
    the encoder–decoder forward under ``no_grad`` — no re-sampling, no
    attention, no gradient tape.

    Parameters
    ----------
    model:
        A trained forecaster.  Models exposing ``slim_adjacency()`` /
        ``index_set`` / ``forecaster`` (SAGDFN) get the frozen fast path;
        any other :class:`Module` is served through its plain ``forward``.
    scaler:
        The fitted target scaler; predictions are returned in original
        units (``prediction * std + mean``), matching ``Trainer.evaluate``.
    freeze_graph:
        Set ``False`` to re-derive the graph on every request (slower;
        only useful for debugging parity with the training-time forward).
    chunk_size / memory_budget_mb:
        Large-``N`` memory knobs applied to the model's SNS sampler and
        attention *before* the graph is frozen, overriding whatever the
        checkpoint was trained with — serving hardware rarely matches
        training hardware.  The chunked SNS/attention paths are
        bit-identical to the unchunked ones, so the frozen graph never
        changes.  An explicit ``chunk_size`` additionally blocks the
        per-request encoder-decoder aggregation of the *module* forward,
        which matches the unblocked forward to ~1 ulp (not bitwise).  The
        default serving kernel (see ``use_kernel``) ignores the block size:
        its preallocated workspace is already bounded by
        ``O(B·N·J·hidden)``, with no wider transient.  ``None`` leaves the
        model's own setting untouched.  Like ``model.eval()`` and the graph
        freeze, the override mutates the passed model **in place** — the
        service takes ownership; do not keep training (or build
        differently-tuned services) over the same instance.
    backend:
        Execution backend override for this serving host: a registry name
        (``"numpy"``, ``"numba"``, …) or an
        :class:`~repro.backend.OpsBackend` instance.  ``None`` keeps the
        backend the model resolved at construction (its config, the
        ``REPRO_BACKEND`` environment variable, or the ``numpy`` default).
        Unknown names raise :class:`ValueError`; known-but-uninstalled ones
        raise :class:`~repro.backend.BackendUnavailableError`.
    use_kernel:
        Deprecated alias for the ``use_kernel`` field of the model's
        :class:`~repro.backend.ExecutionPlan`.  When the graph is frozen
        and the model exposes a
        :class:`~repro.core.encoder_decoder.SAGDFNEncoderDecoder`
        forecaster, ``plan.use_kernel`` (default ``True``) routes requests
        through the no-grad
        :class:`~repro.core.serving_kernel.FrozenRecurrenceKernel` — a
        raw-ndarray fused recurrence with a preallocated workspace that
        matches the module forward to ≤ 1e-10 relative (float64).  Set the
        plan field (or this kwarg) to ``False`` to serve through the
        autograd module forward instead, which is bit-identical to the
        ``Trainer.evaluate`` path.
    """

    def __init__(
        self,
        model: Module,
        scaler: StandardScaler | None = None,
        freeze_graph: bool = True,
        config: dict | None = None,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
        use_kernel: bool | None = None,
        backend: str | OpsBackend | None = None,
    ):
        self.model = model
        self.scaler = scaler
        self.backend = self._resolve_backend(model, backend)
        self.plan = getattr(model, "plan", None) or self.backend.make_plan()
        if use_kernel is not None:
            warnings.warn(
                "ForecastService(use_kernel=...) is deprecated; the switch "
                "now lives on the model's ExecutionPlan — set "
                "ExecutionPlan.use_kernel (model.plan.use_kernel, or "
                "backend.make_plan(use_kernel=...)) instead; see "
                "README.md#execution-backends",
                DeprecationWarning,
                stacklevel=2,
            )
            self.plan.use_kernel = bool(use_kernel)
        self._apply_memory_knobs(model, chunk_size, memory_budget_mb)
        self.config = config if config is not None else self._config_dict(model)
        if self.config:
            # Record the backend actually serving (bundle configs may carry
            # a different, overridden or unavailable, name).
            self.config = dict(self.config)
            self.config["backend"] = self.backend.name
        # Scenario fields (absent in pre-scenario configs → point/dense).
        quantiles = self.config.get("quantiles") if self.config else None
        self.quantiles = None if quantiles is None else tuple(float(q) for q in quantiles)
        self.mask_input = bool(self.config.get("mask_input", False)) if self.config else False
        self.exog_dim = int(self.config.get("exog_dim", 0) or 0) if self.config else 0
        model.eval()
        parameters = model.parameters()
        self._dtype = parameters[0].dtype if parameters else np.dtype(np.float64)

        self._pinned_batches: set[int] = set()
        state = _ServingState()
        if freeze_graph and self._supports_frozen_graph(model):
            if getattr(model, "index_set", None) is None and hasattr(model, "refresh_graph"):
                # No converged index set came with the model/bundle.  Sample
                # one as if training had converged (explore=False) so the
                # frozen graph is at least deterministic, and say so loudly.
                from repro.utils.logging import get_logger

                get_logger("repro.serve").warning(
                    "model has no frozen significant-neighbour index set; "
                    "sampling one at load time — serve a converged checkpoint "
                    "for the paper's frozen-graph regime"
                )
                convergence = getattr(
                    getattr(model, "config", None), "convergence_iteration", 0
                )
                model.refresh_graph(iteration=convergence)
            state = self._freeze_state(generation=0)
        self._state = state
        self.num_requests = 0
        # predict() runs concurrently under the multi-threaded/async front
        # door; the read-modify-write counter increment must not race.
        self._counter_lock = threading.Lock()
        # Serialises swap_index_set callers; predict() never takes it — the
        # hot path only ever reads the (atomically replaced) state holder.
        self._swap_lock = threading.Lock()

    def _freeze_state(self, generation: int) -> _ServingState:
        """Run the cold-load freeze path and package it as one generation.

        Both ``__init__`` and :meth:`swap_index_set` come through here, so a
        hot-swapped generation is built by *exactly* the code a cold start
        runs — the bit-parity guarantee between the two is structural, not
        coincidental.
        """
        frozen = FrozenGraph.from_model(self.model)
        adjacency = Tensor(frozen.adjacency, dtype=self._dtype)
        degree_scale = Tensor(frozen.degree_scale, dtype=self._dtype)
        kernel = None
        if self.plan.use_kernel and hasattr(self.model.forecaster, "encoder_cells"):
            from repro.core.serving_kernel import FrozenRecurrenceKernel

            kernel = FrozenRecurrenceKernel(
                self.model.forecaster,
                frozen.adjacency,
                frozen.index_set,
                frozen.degree_scale,
                backend=self.backend,
            )
            for batch in sorted(self._pinned_batches):
                kernel.pin_workspace(batch)
        return _ServingState(
            frozen=frozen,
            adjacency=adjacency,
            degree_scale=degree_scale,
            kernel=kernel,
            generation=generation,
        )

    # ------------------------------------------------------------------ #
    # Generation state (read-only views of the current holder)
    # ------------------------------------------------------------------ #
    @property
    def frozen(self) -> FrozenGraph | None:
        """The current generation's frozen graph (``None`` in unfrozen mode)."""
        return self._state.frozen

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every :meth:`swap_index_set`."""
        return self._state.generation

    @property
    def _kernel(self):
        return self._state.kernel

    @property
    def _adjacency_tensor(self) -> Tensor | None:
        return self._state.adjacency

    @property
    def _degree_scale_tensor(self) -> Tensor | None:
        return self._state.degree_scale

    def swap_index_set(self, index_set: np.ndarray) -> int:
        """Hot-swap the frozen graph to ``index_set``; returns the new generation.

        Re-runs the cold-load freeze path (slim adjacency over the model's
        node embeddings restricted to ``index_set``, degree scales,
        ``prepare_weights()`` into a fresh
        :class:`~repro.core.serving_kernel.FrozenRecurrenceKernel`) and
        publishes the result as one atomic state swap.  The output of the
        new generation is bit-identical to a cold-started service loaded
        with the same index set.  In-flight :meth:`predict` calls that
        already picked up the old generation complete on it undisturbed;
        the old kernel is garbage-collected once they drain.
        """
        if self._state.frozen is None:
            raise RuntimeError(
                "swap_index_set requires a frozen-graph service "
                "(constructed with freeze_graph=True)"
            )
        index_set = np.asarray(index_set, dtype=np.int64).ravel()
        num_nodes = int(self.config.get("num_nodes", 0)) if self.config else 0
        if num_nodes and (index_set.min() < 0 or index_set.max() >= num_nodes):
            raise ValueError(
                f"index_set entries must lie in [0, {num_nodes}), "
                f"got range [{index_set.min()}, {index_set.max()}]"
            )
        if np.unique(index_set).size != index_set.size:
            raise ValueError("index_set must not contain duplicate node ids")
        with self._swap_lock:
            self.model._index_set = index_set
            self._state = self._freeze_state(generation=self._state.generation + 1)
            return self._state.generation

    @property
    def backend_name(self) -> str:
        """Registry name of the backend serving this model."""
        return self.backend.name

    @property
    def expected_channels(self) -> int | None:
        """Total per-window channel width :meth:`predict` expects.

        Endogenous channels plus declared exogenous covariates plus the
        observation-mask channel of mask-aware models — the width the data
        layer produces and the width :class:`~repro.serve.MicroBatcher`
        validates at submit time.  ``None`` when the service has no config
        to derive it from (e.g. a bare baseline module).
        """
        if not self.config or "input_dim" not in self.config:
            return None
        return int(self.config["input_dim"]) + self.exog_dim + int(self.mask_input)

    def pin_batch_size(self, batch: int) -> None:
        """Preallocate and pin the serving-kernel workspace for ``batch``.

        Cluster workers call this once at start-up with their micro-batcher's
        ``max_batch`` so the steady-state batch size neither pays first-
        request allocation nor is ever evicted by the workspace LRU.  A
        no-op when the service runs without the frozen-recurrence kernel.
        Pins are remembered across drift hot-swaps: every generation's fresh
        kernel re-pins the same batch sizes.
        """
        self._pinned_batches.add(int(batch))
        kernel = self._state.kernel
        if kernel is not None:
            kernel.pin_workspace(batch)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_backend(
        model: Module, backend: str | OpsBackend | None
    ) -> OpsBackend:
        """One resolver for every path: override > model's backend > default.

        An explicit ``backend`` re-points the whole model at it (via
        ``model.set_backend`` when available) so the module forward, the
        serving kernel and the recorded config all agree.
        """
        if backend is not None:
            if hasattr(model, "set_backend"):
                return model.set_backend(backend)
            return get_backend(backend)
        model_backend = getattr(model, "backend", None)
        if model_backend is not None:
            return model_backend
        return get_backend(None)

    @staticmethod
    def _apply_memory_knobs(
        model: Module, chunk_size: int | None, memory_budget_mb: float | None
    ) -> None:
        """Override the model's large-N chunking knobs for this serving host.

        A budget-only override clears any ``chunk_size`` the checkpoint was
        trained with — ``chunk_size`` takes precedence inside the modules, so
        leaving it set would silently ignore the requested budget.  An
        explicit ``chunk_size`` is also pushed into every
        :class:`~repro.core.gconv.FastGraphConv` of the forecaster, so the
        per-request encoder-decoder hot path is blocked too (a budget alone
        cannot size the gconv blocks — their per-row cost depends on the
        request batch size).
        """
        if chunk_size is None and memory_budget_mb is None:
            return
        for target in (getattr(model, "sampler", None), getattr(model, "attention", None)):
            if target is None:
                continue
            if chunk_size is not None:
                target.chunk_size = chunk_size
                if memory_budget_mb is not None:
                    target.memory_budget_mb = memory_budget_mb
            else:
                target.chunk_size = None
                target.memory_budget_mb = memory_budget_mb
        if chunk_size is not None and hasattr(model, "modules"):
            from repro.core.gconv import FastGraphConv

            for module in model.modules():
                if isinstance(module, FastGraphConv):
                    module.node_chunk_size = chunk_size

    @staticmethod
    def _supports_frozen_graph(model: Module) -> bool:
        return hasattr(model, "slim_adjacency") and hasattr(model, "forecaster")

    @staticmethod
    def _config_dict(model: Module) -> dict:
        config = getattr(model, "config", None)
        if config is None:
            return {}
        from dataclasses import asdict, is_dataclass

        return asdict(config) if is_dataclass(config) else dict(vars(config))

    @classmethod
    def from_checkpoint(
        cls,
        path: str | Path,
        freeze_graph: bool = True,
        chunk_size: int | None = None,
        memory_budget_mb: float | None = None,
        use_kernel: bool | None = None,
        backend: str | None = None,
        verify_digest: bool = True,
    ) -> "ForecastService":
        """Rehydrate a service from a serving bundle written by ``save_bundle``.

        The bundle alone is enough: model config, parameters, scaler
        statistics and the SNS sampler state all come out of the archive.
        ``chunk_size`` / ``memory_budget_mb`` override the bundled model's
        large-N memory knobs for this host (see :class:`ForecastService`).
        ``backend`` overrides the backend name the bundle recorded; without
        an override, a recorded backend that is registered here but not
        installed (e.g. a numba-trained bundle on a numba-less host) falls
        back to ``numpy`` with a warning — an unknown name still raises
        :class:`ValueError`.  ``verify_digest=False`` skips the bundle's
        SHA-256 payload check (see :func:`repro.utils.load_bundle`) — the
        serving cluster uses it for workers whose parent already verified
        the same file.
        """
        bundle = load_bundle(path, verify_digest=verify_digest)
        recorded = bundle.config.get("backend") if bundle.config else None
        if backend is not None:
            get_backend(backend)  # surface unknown/unavailable now
            bundle.config["backend"] = backend
        elif recorded is not None:
            try:
                get_backend(recorded)
            except BackendUnavailableError:
                from repro.utils.logging import get_logger

                get_logger("repro.serve").warning(
                    "bundle was saved with backend %r, which is not available "
                    "on this host; serving on the numpy reference backend",
                    recorded,
                )
                bundle.config["backend"] = "numpy"
        model = cls._build_model(bundle)
        scaler = cls._build_scaler(bundle)
        return cls(
            model,
            scaler=scaler,
            freeze_graph=freeze_graph,
            config=bundle.config,
            chunk_size=chunk_size,
            memory_budget_mb=memory_budget_mb,
            use_kernel=use_kernel,
        )

    # Thin aliases kept for callers of the historical private names; the
    # rehydration itself lives in repro.utils.checkpoint so cluster workers
    # can rebuild a forecaster without importing the service first.
    _build_model = staticmethod(rehydrate_model)
    _build_scaler = staticmethod(rehydrate_scaler)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _forward(self, history: Tensor) -> Tensor:
        # One holder read: a concurrent swap_index_set publishes a complete
        # new generation, so this forward runs entirely on one generation —
        # never a mix of old adjacency and new kernel.
        state = self._state
        if state.frozen is not None:
            if state.kernel is not None:
                return Tensor(state.kernel(history.data), dtype=self._dtype)
            return self.model.forecaster(
                history,
                state.adjacency,
                state.frozen.index_set,
                degree_scale=state.degree_scale,
            )
        return self.model(history)

    def predict(self, history: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Forecast a batch of normalised histories ``(B, h, N, C)``.

        Returns predictions of shape ``(B, f, N, 1)`` in original units
        (inverse-transformed with the bundled scaler) — or ``(B, f, N, Q)``
        for a quantile-head model, one column per level of
        ``self.quantiles``.  ``mask`` optionally supplies the observation
        mask ``(B, h, N)`` of a mask-aware model (1 = observed); it is
        appended as the trailing input channel, exactly as the training data
        layer does.  A mask-aware request may equally arrive with the mask
        already in ``history``'s last channel, in which case ``mask`` must
        be omitted.  Through the default serving kernel the output matches
        the ``Trainer.evaluate`` forward path to ≤ 1e-10 relative in float64
        (BLAS summation-order noise; ~1e-7 in float32); construct the
        service with ``use_kernel=False`` when bit-identical parity with the
        trainer forward is required.
        """
        history = np.asarray(history)
        if history.ndim != 4:
            raise ValueError(
                f"history must be (batch, steps, nodes, channels), got shape {history.shape}"
            )
        if mask is not None:
            if not self.mask_input:
                raise ValueError("model was not trained with mask_input; drop the mask")
            mask = np.asarray(mask)
            if mask.shape != history.shape[:3]:
                raise ValueError(
                    f"mask must be (batch, steps, nodes) = {history.shape[:3]}, "
                    f"got {mask.shape}"
                )
            history = np.concatenate(
                [history, mask[..., None].astype(history.dtype, copy=False)], axis=-1
            )
        with no_grad():
            output = self._forward(Tensor(history, dtype=self._dtype))
            if self.scaler is not None:
                output = output * self.scaler.std_ + self.scaler.mean_
        with self._counter_lock:
            self.num_requests += history.shape[0]
        return output.data

    def predict_one(self, window: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Forecast a single history window ``(h, N, C)`` → ``(f, N, ·)``."""
        window = np.asarray(window)
        if window.ndim != 3:
            raise ValueError(f"window must be (steps, nodes, channels), got {window.shape}")
        if mask is not None:
            mask = np.asarray(mask)[None]
        return self.predict(window[None], mask=mask)[0]

    def evaluate(self, loader, null_value: float | None = 0.0) -> dict[str, float]:
        """Streaming masked metrics of the served model over ``loader``.

        Uses the same :class:`~repro.evaluation.streaming.StreamingMetrics`
        accumulator as ``Trainer.evaluate`` — quantile heads included —
        but through the frozen-graph forward; memory stays bounded by one
        batch.
        """
        from repro.evaluation.streaming import StreamingMetrics

        stream = StreamingMetrics(null_value=null_value, quantiles=self.quantiles)
        for batch_x, batch_y in loader:
            stream.update(self.predict(batch_x), batch_y)
        return stream.compute()
