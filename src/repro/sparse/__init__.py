"""Sparse probability normalisers: softmax, sparsemax and the α-entmax family.

The paper's Sparse Spatial Multi-Head Attention module replaces the usual
Softmax with α-entmax (Eq. 7–8) to *zero out* the attention weights of
uncorrelated neighbours.  This subpackage implements the whole family with
exact forward solutions (sort-based for sparsemax/entmax-1.5, bisection for
general α) and the analytic backward pass, both as plain-NumPy functions and
as autodiff-aware operations on :class:`repro.tensor.Tensor`.
"""

from repro.sparse.entmax import (
    alpha_entmax,
    alpha_entmax_np,
    entmax15_np,
    softmax,
    softmax_np,
    sparsemax,
    sparsemax_np,
    entmax_support_size,
)

__all__ = [
    "softmax",
    "softmax_np",
    "sparsemax",
    "sparsemax_np",
    "entmax15_np",
    "alpha_entmax",
    "alpha_entmax_np",
    "entmax_support_size",
]
