"""α-entmax, sparsemax and softmax with exact forward and backward passes.

Definitions follow Peters et al. (2019) and the SAGDFN paper (Eq. 7–8):

.. math::

    \\alpha\\text{-entmax}(z) = [(\\alpha - 1) z - \\tau \\mathbf{1}]_+^{1/(\\alpha-1)}

where the threshold :math:`\\tau(z)` is the unique value making the output sum
to one.  α = 1 recovers softmax, α = 2 recovers sparsemax; intermediate
values interpolate, producing sparse probability vectors for α > 1.

Two interfaces are offered:

* ``*_np`` functions operating on plain NumPy arrays (used inside tests and
  wherever no gradient is needed);
* :func:`alpha_entmax`, :func:`sparsemax`, :func:`softmax` operating on
  :class:`repro.tensor.Tensor` with autodiff support.  The backward pass uses
  the analytic Jacobian-vector product
  ``dz = s * (dp - (s . dp) / (s . 1))`` with ``s_i = p_i^{2-α}`` on the
  support, which holds for every α ≥ 1.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, get_default_dtype

_EPS = 1e-12


def _as_float(z: np.ndarray) -> np.ndarray:
    """Coerce to a floating array, preserving float32/float64 inputs.

    Non-floating inputs (ints, lists) follow the engine's precision policy;
    floating inputs keep their dtype so a float32 model never silently pays
    for float64 intermediates inside the normalisers.
    """
    z = np.asarray(z)
    if not np.issubdtype(z.dtype, np.floating):
        z = z.astype(get_default_dtype())
    return z


# --------------------------------------------------------------------------- #
# Plain NumPy forward implementations
# --------------------------------------------------------------------------- #
def softmax_np(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on a plain array."""
    z = _as_float(z)
    shifted = z - z.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def sparsemax_np(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exact sparsemax (Martins & Astudillo, 2016) via the sort-based solver."""
    z = _as_float(z)
    z = np.moveaxis(z, axis, -1)
    shape = z.shape
    flat = z.reshape(-1, shape[-1])
    sorted_z = -np.sort(-flat, axis=-1)
    cumsum = np.cumsum(sorted_z, axis=-1)
    k_range = np.arange(1, shape[-1] + 1, dtype=z.dtype)
    support = sorted_z * k_range > (cumsum - 1.0)
    k = support.sum(axis=-1)
    tau = (np.take_along_axis(cumsum, k[:, None] - 1, axis=-1).squeeze(-1) - 1.0) / k.astype(z.dtype)
    out = np.maximum(flat - tau[:, None], 0.0)
    return np.moveaxis(out.reshape(shape), -1, axis)


def entmax15_np(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Exact 1.5-entmax via the sort-based solver of Peters et al. (2019)."""
    z = _as_float(z) / 2.0
    z = np.moveaxis(z, axis, -1)
    shape = z.shape
    flat = z.reshape(-1, shape[-1])
    flat = flat - flat.max(axis=-1, keepdims=True)
    sorted_z = -np.sort(-flat, axis=-1)
    k_range = np.arange(1, shape[-1] + 1, dtype=z.dtype)
    mean = np.cumsum(sorted_z, axis=-1) / k_range
    mean_sq = np.cumsum(sorted_z**2, axis=-1) / k_range
    ss = k_range * (mean_sq - mean**2)
    delta = (1.0 - ss) / k_range
    delta = np.maximum(delta, 0.0)
    tau = mean - np.sqrt(delta)
    support = tau <= sorted_z
    k = support.sum(axis=-1)
    tau_star = np.take_along_axis(tau, k[:, None] - 1, axis=-1)
    out = np.maximum(flat - tau_star, 0.0) ** 2
    out = out / np.maximum(out.sum(axis=-1, keepdims=True), _EPS)
    return np.moveaxis(out.reshape(shape), -1, axis)


def _entmax_bisect_np(z: np.ndarray, alpha: float, n_iter: int = 60) -> np.ndarray:
    """General α-entmax (α > 1) along the last axis via bisection on τ."""
    z = _as_float(z)
    scaled = (alpha - 1.0) * z
    max_val = scaled.max(axis=-1, keepdims=True)
    # τ lies in [max - 1, max): at τ = max - 1 the sum is ≥ 1, at τ = max it is 0.
    tau_lo = max_val - 1.0
    tau_hi = max_val
    exponent = 1.0 / (alpha - 1.0)
    for _ in range(n_iter):
        tau = 0.5 * (tau_lo + tau_hi)
        p = np.maximum(scaled - tau, 0.0) ** exponent
        mass = p.sum(axis=-1, keepdims=True)
        too_heavy = mass >= 1.0
        tau_lo = np.where(too_heavy, tau, tau_lo)
        tau_hi = np.where(too_heavy, tau_hi, tau)
    tau = 0.5 * (tau_lo + tau_hi)
    p = np.maximum(scaled - tau, 0.0) ** exponent
    p = p / np.maximum(p.sum(axis=-1, keepdims=True), _EPS)
    return p


def alpha_entmax_np(z: np.ndarray, alpha: float = 1.5, axis: int = -1) -> np.ndarray:
    """General α-entmax on a plain array (α ≥ 1).

    α = 1 dispatches to softmax, α = 2 to the exact sparsemax solver,
    α = 1.5 to the exact entmax-1.5 solver, anything else to bisection.
    """
    if alpha < 1.0:
        raise ValueError(f"alpha must be >= 1.0, got {alpha}")
    if abs(alpha - 1.0) < 1e-8:
        return softmax_np(z, axis=axis)
    if abs(alpha - 2.0) < 1e-8:
        return sparsemax_np(z, axis=axis)
    if abs(alpha - 1.5) < 1e-8:
        return entmax15_np(z, axis=axis)
    z = np.moveaxis(_as_float(z), axis, -1)
    out = _entmax_bisect_np(z, alpha)
    return np.moveaxis(out, -1, axis)


def entmax_support_size(p: np.ndarray, axis: int = -1, tol: float = 1e-9) -> np.ndarray:
    """Number of strictly positive entries of a probability array along ``axis``."""
    return (np.asarray(p) > tol).sum(axis=axis)


# --------------------------------------------------------------------------- #
# Autodiff-aware wrappers
# --------------------------------------------------------------------------- #
def _entmax_jvp(p: np.ndarray, grad: np.ndarray, alpha: float, axis: int) -> np.ndarray:
    """Jacobian-vector product of α-entmax evaluated at output ``p``."""
    support = p > 0.0
    if abs(alpha - 1.0) < 1e-8:
        s = p
    else:
        s = np.where(support, np.power(np.maximum(p, _EPS), 2.0 - alpha), 0.0)
    weighted = grad * s
    denominator = np.maximum(s.sum(axis=axis, keepdims=True), _EPS)
    correction = weighted.sum(axis=axis, keepdims=True) / denominator
    return s * (grad - correction)


def alpha_entmax(z: Tensor, alpha: float = 1.5, axis: int = -1) -> Tensor:
    """Differentiable α-entmax over a :class:`~repro.tensor.Tensor`."""
    if not isinstance(z, Tensor):
        z = Tensor(z)
    p = alpha_entmax_np(z.data, alpha=alpha, axis=axis)

    def backward(grad):
        return (_entmax_jvp(p, grad, alpha, axis),)

    return Tensor._make(p, (z,), backward)


def softmax(z: Tensor, axis: int = -1) -> Tensor:
    """Differentiable softmax (α-entmax with α = 1)."""
    return alpha_entmax(z, alpha=1.0, axis=axis)


def sparsemax(z: Tensor, axis: int = -1) -> Tensor:
    """Differentiable sparsemax (α-entmax with α = 2)."""
    return alpha_entmax(z, alpha=2.0, axis=axis)
