"""Reverse-mode automatic differentiation engine over NumPy arrays.

This subpackage is the deep-learning substrate of the SAGDFN reproduction.
The published system is built on PyTorch; since no deep-learning framework is
available in this environment, ``repro.tensor`` provides the minimal-but-
complete tensor abstraction the paper's model and all baselines require:

* :class:`~repro.tensor.tensor.Tensor` — an n-dimensional array wrapper that
  records the operations applied to it and can back-propagate gradients with
  :meth:`~repro.tensor.tensor.Tensor.backward`.
* A library of differentiable operations (arithmetic, matrix multiplication,
  reductions, reshaping, indexing, concatenation, common activations).
* :func:`~repro.tensor.grad_check.numerical_gradient` /
  :func:`~repro.tensor.grad_check.check_gradients` — finite-difference
  verification utilities used heavily in the test-suite.
* :class:`~repro.tensor.context.no_grad` — context manager disabling graph
  recording during evaluation.
* :func:`~repro.tensor.dtype.set_default_dtype` /
  :class:`~repro.tensor.dtype.default_dtype` — the engine-wide floating
  precision policy (float32 or float64) applied to every new tensor.

Example
-------
>>> from repro.tensor import Tensor
>>> x = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad.tolist()
[[2.0, 4.0], [6.0, 8.0]]
"""

from repro.tensor.context import is_grad_enabled, no_grad
from repro.tensor.dtype import default_dtype, get_default_dtype, set_default_dtype
from repro.tensor.grad_check import check_gradients, numerical_gradient
from repro.tensor.tensor import Tensor, concat, maximum, minimum, stack, where

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "no_grad",
    "is_grad_enabled",
    "numerical_gradient",
    "check_gradients",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]
