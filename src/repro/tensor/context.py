"""Global autograd state: enabling/disabling gradient recording."""

from __future__ import annotations

import threading


class _GradState(threading.local):
    """Thread-local flag controlling whether operations build the graph."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = True


_STATE = _GradState()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the computation graph."""
    return _STATE.enabled


class no_grad:
    """Context manager (and decorator) that disables gradient recording.

    Mirrors ``torch.no_grad``: inside the block, tensors produced by
    operations have ``requires_grad=False`` and carry no backward closure,
    which keeps memory flat during evaluation loops.

    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 3.0
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._previous = _STATE.enabled
        _STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _STATE.enabled = self._previous

    def __call__(self, func):
        def wrapper(*args, **kwargs):
            with no_grad():
                return func(*args, **kwargs)

        wrapper.__name__ = getattr(func, "__name__", "wrapped")
        wrapper.__doc__ = func.__doc__
        return wrapper
