"""Engine-wide floating-point precision policy.

The tensor engine historically pinned every array to ``float64``.  Large
SAGDFN scenarios (Table VI/VII, N = 2000–10000 nodes) are memory-bandwidth
bound, so running the whole model in ``float32`` halves the traffic of the
attention and graph-convolution hot paths.  This module holds the *default
dtype* every new :class:`~repro.tensor.tensor.Tensor` (and therefore every
:class:`~repro.nn.module.Parameter`, initializer draw and scaler output) is
coerced to.

The policy is thread-local, mirroring :mod:`repro.tensor.context`:

>>> from repro.tensor import set_default_dtype, get_default_dtype, default_dtype
>>> set_default_dtype("float32")          # global switch
>>> with default_dtype("float64"):        # scoped override
...     pass
"""

from __future__ import annotations

import threading

import numpy as np

_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))


def _canonical(dtype) -> np.dtype:
    """Normalise ``dtype`` ("float32", np.float32, dtype(...)) to a np.dtype."""
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED:
        supported = ", ".join(str(d) for d in _SUPPORTED)
        raise ValueError(f"unsupported default dtype {dtype!r}; expected one of: {supported}")
    return resolved


class _DtypeState(threading.local):
    """Thread-local default floating dtype of the engine."""

    def __init__(self) -> None:
        super().__init__()
        self.dtype = np.dtype(np.float64)


_STATE = _DtypeState()


def get_default_dtype() -> np.dtype:
    """Return the dtype newly created tensors are coerced to."""
    return _STATE.dtype


def set_default_dtype(dtype) -> None:
    """Set the engine-wide default dtype (``float32`` or ``float64``)."""
    _STATE.dtype = _canonical(dtype)


class default_dtype:
    """Context manager scoping the default dtype to a ``with`` block.

    >>> import numpy as np
    >>> from repro.tensor import Tensor, default_dtype
    >>> with default_dtype(np.float32):
    ...     t = Tensor([1.0, 2.0])
    >>> t.dtype == np.float32
    True
    """

    def __init__(self, dtype):
        self._dtype = _canonical(dtype)

    def __enter__(self) -> "default_dtype":
        self._previous = _STATE.dtype
        _STATE.dtype = self._dtype
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _STATE.dtype = self._previous
