"""Finite-difference gradient verification utilities.

These helpers are the backbone of the autodiff test-suite: every layer in
``repro.nn`` and every custom backward pass (α-entmax, graph diffusion) is
verified against central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d func(inputs).sum() / d inputs[index]`` by central differences.

    Parameters
    ----------
    func:
        Callable taking the tensors in ``inputs`` and returning a tensor; its
        elements are summed to obtain a scalar objective.
    inputs:
        All tensor inputs of ``func``.
    index:
        Which input to differentiate with respect to.
    epsilon:
        Finite-difference step.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(func(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients for every differentiable input.

    Returns ``True`` when all gradients match within tolerance and raises an
    ``AssertionError`` describing the first mismatch otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(func, inputs, i, epsilon=epsilon)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(actual - expected)))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{actual}\nnumerical:\n{expected}"
            )
    return True
