"""The :class:`Tensor` class — reverse-mode autodiff over NumPy arrays.

The design follows the classic tape-less "define-by-run" approach: every
differentiable operation returns a new :class:`Tensor` holding references to
its parents and a closure that accumulates gradients into them.  Calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph and
executes the closures in reverse order.

Only the operations required by the SAGDFN model, its baselines, and the
benchmark harness are implemented, but each of them supports full NumPy
broadcasting, arbitrary batch dimensions, and is verified against numerical
gradients in the test-suite.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.tensor.context import is_grad_enabled
from repro.tensor.dtype import get_default_dtype

ArrayLike = "Tensor | np.ndarray | float | int | list | tuple"


def _as_array(value, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a NumPy array of the engine's default dtype.

    An explicit ``dtype`` overrides the policy; see
    :mod:`repro.tensor.dtype` for the engine-wide default.
    """
    if isinstance(value, Tensor):
        value = value.data
    array = np.asarray(value, dtype=dtype if dtype is not None else get_default_dtype())
    return array


def _wrap_operand(value, like: np.ndarray) -> "Tensor":
    """Wrap the non-Tensor operand of a binary op.

    Scalars (python numbers, NumPy scalars, 0-d arrays) follow the dtype of
    the Tensor operand — like ``torch`` — so ``x + 1.0`` or ``1.0 / x`` never
    silently promotes a float32 graph to the float64 policy default.  Arrays
    and nested lists go through the normal policy coercion.
    """
    if isinstance(value, Tensor):
        return value
    if np.isscalar(value) or (isinstance(value, np.ndarray) and value.ndim == 0):
        if np.issubdtype(like.dtype, np.floating):
            return Tensor(value, dtype=like.dtype)
    return Tensor(value)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape`` after broadcasting.

    Broadcasting in the forward pass implicitly replicates data; the backward
    pass must therefore *sum* gradients over the replicated axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a NumPy array (nested lists, scalars, arrays,
        another :class:`Tensor`).
    requires_grad:
        When ``True`` the tensor participates in the autograd graph and its
        ``grad`` attribute is populated by :meth:`backward`.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    dtype:
        Explicit dtype of the stored array.  ``None`` (the default) coerces
        to the engine-wide policy dtype (:func:`repro.tensor.get_default_dtype`).
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    __array_priority__ = 100  # ensure Tensor.__rmul__ wins over np.ndarray

    def __init__(self, data, requires_grad: bool = False, name: str | None = None, dtype=None):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self.name = name
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the single scalar value held by this tensor."""
        return float(self.data.item())

    def tolist(self):
        return self.data.tolist()

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False, dtype=self.data.dtype)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast; gradients are cast back on the way down."""
        data = self.data.astype(dtype, copy=False)

        def backward(grad):
            return (grad,)

        return Tensor._make(data, (self,), backward)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create the output tensor of an operation, wiring the graph.

        The result keeps the dtype NumPy produced for ``data`` (operations
        follow their operands) rather than re-coercing to the policy dtype,
        so mixed-precision graphs behave like plain NumPy promotion.
        """
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        data = np.asarray(data)
        out = Tensor(data, requires_grad=requires_grad, dtype=data.dtype)
        if requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0``, which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only valid for scalars; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order of the graph reachable from ``self``.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Seed and propagate.
        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            contributions = node._backward(node_grad)
            for parent, contribution in zip(node._parents, contributions):
                if contribution is None or not parent.requires_grad:
                    continue
                contribution = _unbroadcast(
                    np.asarray(contribution, dtype=parent.data.dtype), parent.data.shape
                )
                parent._accumulate(contribution)
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + contribution
                else:
                    grads[id(parent)] = contribution

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = _wrap_operand(other, self.data)
        data = self.data + other.data

        def backward(grad):
            return grad, grad

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = _wrap_operand(other, self.data)
        data = self.data - other.data

        def backward(grad):
            return grad, -grad

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return _wrap_operand(other, self.data) - self

    def __mul__(self, other) -> "Tensor":
        other = _wrap_operand(other, self.data)
        data = self.data * other.data
        self_data, other_data = self.data, other.data

        def backward(grad):
            return grad * other_data, grad * self_data

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _wrap_operand(other, self.data)
        data = self.data / other.data
        self_data, other_data = self.data, other.data

        def backward(grad):
            grad_self = grad / other_data
            grad_other = -grad * self_data / (other_data**2)
            return grad_self, grad_other

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _wrap_operand(other, self.data) / self

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad):
            return (-grad,)

        return Tensor._make(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            exponent = exponent.item() if exponent.size == 1 else exponent.data
        data = self.data**exponent
        self_data = self.data

        def backward(grad):
            return (grad * exponent * self_data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other) -> "Tensor":
        """Matrix product supporting batched operands (``np.matmul`` rules)."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data
        a, b = self.data, other.data

        def backward(grad):
            if a.ndim == 1 and b.ndim == 1:
                return grad * b, grad * a
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                grad_a = (grad[..., None, :] * b).sum(axis=-1)
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = a[..., :, None] * grad[..., None, :]
                return grad_a, _unbroadcast(grad_b, b.shape)
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                grad_a = grad[..., :, None] * b
                grad_b = (a * grad[..., :, None]).sum(axis=tuple(range(a.ndim - 1)))
                return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)
        self_data = self.data

        def backward(grad):
            return (grad / self_data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / np.maximum(data, 1e-12),)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad):
            return (np.where(mask, grad, negative_slope * grad),)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad):
            return (grad * sign,)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(grad, input_shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                for ax in sorted(a % len(input_shape) for a in axes):
                    grad = np.expand_dims(grad, ax)
            return (np.broadcast_to(grad, input_shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        input_shape = self.data.shape

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            grad_expanded = grad if keepdims else np.expand_dims(grad, axis)
            return (mask * np.broadcast_to(grad_expanded, input_shape),)

        return Tensor._make(data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    def squeeze(self, axis: int | None = None) -> "Tensor":
        original = self.data.shape
        data = self.data.squeeze(axis=axis)

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)
        original = self.data.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        data = np.broadcast_to(self.data, shape).copy()
        original = self.data.shape

        def backward(grad):
            return (_unbroadcast(grad, original),)

        return Tensor._make(data, (self,), backward)

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Tile the tensor ``repeats`` times along ``axis`` (like ``np.repeat``)."""
        data = np.repeat(self.data, repeats, axis=axis)
        original = self.data.shape

        def backward(grad):
            new_shape = list(original)
            new_shape.insert(axis + 1, repeats)
            grad = grad.reshape(new_shape).sum(axis=axis + 1)
            return (grad,)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        original_shape = self.data.shape
        dtype = self.data.dtype

        def backward(grad):
            full = np.zeros(original_shape, dtype=dtype)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows along the first axis: equivalent to ``self[indices]``.

        ``indices`` may contain repeated entries; gradients accumulate.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return self[indices]

    def pad(self, pad_width: Sequence[tuple[int, int]]) -> "Tensor":
        """Zero-pad, ``pad_width`` following ``np.pad`` conventions."""
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + size)
            for (before, _), size in zip(pad_width, self.data.shape)
        )

        def backward(grad):
            return (grad[slices],)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparisons (non-differentiable, return plain arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other


# ---------------------------------------------------------------------- #
# Free functions operating on several tensors
# ---------------------------------------------------------------------- #
def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad):
        grads = []
        start = 0
        for size in sizes:
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, start + size)
            grads.append(grad[tuple(index)])
            start += size
        return tuple(grads)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def where(condition, a, b) -> Tensor:
    """Differentiable element-wise selection ``condition ? a : b``."""
    condition = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad):
        return np.where(condition, grad, 0.0), np.where(condition, 0.0, grad)

    return Tensor._make(data, (a, b), backward)


def maximum(a, b) -> Tensor:
    """Differentiable element-wise maximum (ties send gradient to ``a``)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    mask = a.data >= b.data
    data = np.where(mask, a.data, b.data)

    def backward(grad):
        return np.where(mask, grad, 0.0), np.where(mask, 0.0, grad)

    return Tensor._make(data, (a, b), backward)


def minimum(a, b) -> Tensor:
    """Differentiable element-wise minimum (ties send gradient to ``a``)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    mask = a.data <= b.data
    data = np.where(mask, a.data, b.data)

    def backward(grad):
        return np.where(mask, grad, 0.0), np.where(mask, 0.0, grad)

    return Tensor._make(data, (a, b), backward)
