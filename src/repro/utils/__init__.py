"""Small shared helpers: seeding, timing, logging, checkpointing."""

from repro.utils.seed import seed_everything, spawn_rng
from repro.utils.timer import Timer
from repro.utils.logging import get_logger
from repro.utils.checkpoint import (
    CheckpointBundle,
    load_bundle,
    load_checkpoint,
    rehydrate_model,
    rehydrate_scaler,
    save_bundle,
    save_checkpoint,
)

__all__ = [
    "seed_everything",
    "spawn_rng",
    "Timer",
    "get_logger",
    "save_checkpoint",
    "load_checkpoint",
    "save_bundle",
    "load_bundle",
    "rehydrate_model",
    "rehydrate_scaler",
    "CheckpointBundle",
]
