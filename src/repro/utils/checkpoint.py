"""Model checkpointing: save/load a Module's parameters as a ``.npz`` archive."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Write all parameters of ``model`` (plus optional JSON metadata) to ``path``.

    The file is a standard ``.npz`` archive whose keys are the dotted
    parameter names from :meth:`Module.named_parameters`, with the metadata
    stored under the reserved ``__metadata__`` key.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {name: parameter.data for name, parameter in model.named_parameters()}
    payload["__metadata__"] = np.array(json.dumps(metadata or {}))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the metadata dictionary stored alongside the parameters.  Raises
    ``KeyError`` / ``ValueError`` when the archive does not match the model.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["__metadata__"]))
        state = {name: archive[name] for name in archive.files if name != "__metadata__"}
    model.load_state_dict(state)
    return metadata
