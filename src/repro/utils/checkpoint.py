"""Model checkpointing: parameter archives and self-contained serving bundles.

Two formats share the same ``.npz`` container:

* **Parameter checkpoint** (:func:`save_checkpoint` / :func:`load_checkpoint`)
  — just the dotted parameter names plus a JSON metadata blob.  Loading
  requires an already-built model of the same architecture.
* **Serving bundle** (:func:`save_bundle` / :func:`load_bundle`) — a
  parameter checkpoint extended with everything needed to *rehydrate* a
  forecaster from the file alone: the model config, the fitted
  :class:`~repro.data.scalers.StandardScaler` statistics, and (for SAGDFN)
  the significant-neighbour sampler candidates and frozen index set.
  :meth:`repro.serve.ForecastService.from_checkpoint` consumes this format.

Reserved keys are wrapped in double underscores (``__metadata__``,
``__bundle__``, …) so they can never collide with parameter names;
:func:`load_checkpoint` skips them, which lets a plain model load the
parameters out of a bundle archive.

Both loaders route the parameter state through
:meth:`repro.nn.module.Module.load_state_dict`, so legacy archive layouts
are migrated transparently by the per-module ``_upgrade_state_dict`` hooks:
pre-vectorisation per-head attention keys (``attention.heads.{p}.…``) are
stacked into the batched head parameters, and pre-fusion per-gate recurrence
keys (``…reset_gate.…`` / ``…update_gate.…``) are concatenated — bit-exactly
— into the fused ``gates`` convolution of each
:class:`~repro.core.gconv.OneStepFastGConvCell`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.module import Module

# Version 2 added the scenario record (quantile head, declared exogenous
# channels, observation-mask input).  Version-1 bundles predate scenarios and
# load as point-forecast / dense-data models; their config simply lacks the
# scenario fields, so the dataclass defaults apply.
# Version 3 added streaming-scaler provenance (observation ``count`` and raw
# ``m2`` sum of squared deviations, so ``StandardScaler.partial_fit`` can
# extend a rehydrated scaler exactly) and an optional ``drift`` record — the
# online-serving drift-monitor configuration.  v1/v2 bundles still load;
# their scalers simply cannot be extended incrementally.
BUNDLE_VERSION = 3

_METADATA_KEY = "__metadata__"
_BUNDLE_KEY = "__bundle__"
_CANDIDATES_KEY = "__sampler_candidates__"
_INDEX_SET_KEY = "__index_set__"
_SCHEDULER_KEY = "__scheduler__"
_DIGEST_KEY = "__digest__"

# Keys excluded from the SHA-256 payload digest: the digest itself, plus the
# JSON provenance records (bundle info, metadata, scheduler state).  The
# digest covers the *numeric* payload — parameters, sampler candidates, the
# frozen index set — i.e. everything a silently flipped bit would turn into
# silently wrong forecasts; byte damage to the JSON region is already caught
# by the zip container's CRC and the json/schema validation on load.
_DIGEST_EXCLUDED = {_DIGEST_KEY, _BUNDLE_KEY, _METADATA_KEY, _SCHEDULER_KEY}


def _is_reserved(key: str) -> bool:
    return key.startswith("__") and key.endswith("__")


def _payload_digest(payload: dict) -> str:
    """SHA-256 over the numeric payload arrays (names, dtypes, shapes, bytes)."""
    digest = hashlib.sha256()
    for name in sorted(payload):
        if name in _DIGEST_EXCLUDED:
            continue
        array = np.asarray(payload[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _atomic_savez(path: Path, payload: dict) -> None:
    """Write an ``.npz`` atomically: tmp file + fsync + rename.

    A crash (or full disk) mid-write leaves the previous archive intact —
    a serving host never observes a torn checkpoint at ``path``.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    # Best-effort directory fsync so the rename itself is durable; some
    # filesystems do not support fsync on a directory fd.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


def _json_default(value):
    """Unwrap numpy scalars for ``json.dumps``; reject anything else."""
    if isinstance(value, np.generic):
        return value.item()
    raise TypeError(f"Object of type {type(value).__name__} is not JSON serializable")


def _normalise_path(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    return path


def save_checkpoint(model: Module, path: str | Path, metadata: dict | None = None) -> Path:
    """Write all parameters of ``model`` (plus optional JSON metadata) to ``path``.

    The file is a standard ``.npz`` archive whose keys are the dotted
    parameter names from :meth:`Module.named_parameters`, with the metadata
    stored under the reserved ``__metadata__`` key.
    """
    path = _normalise_path(path)
    payload = {name: parameter.data for name, parameter in model.named_parameters()}
    payload[_METADATA_KEY] = np.array(json.dumps(metadata or {}))
    _atomic_savez(path, payload)
    return path


def load_checkpoint(model: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Reserved ``__…__`` keys (metadata, bundle extras) are ignored, so both
    plain checkpoints and serving bundles can be loaded this way.  Returns
    the metadata dictionary stored alongside the parameters.  Raises
    ``KeyError`` / ``ValueError`` when the archive does not match the model.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive[_METADATA_KEY]))
        state = {name: archive[name] for name in archive.files if not _is_reserved(name)}
    model.load_state_dict(state)
    return metadata


# --------------------------------------------------------------------- #
# Serving bundles
# --------------------------------------------------------------------- #
@dataclass
class CheckpointBundle:
    """Everything :func:`load_bundle` recovers from a serving bundle archive.

    Attributes
    ----------
    state:
        Parameter arrays keyed by dotted name (ready for
        :meth:`Module.load_state_dict`).
    config:
        The model configuration dictionary (``SAGDFNConfig`` fields).
    model_type:
        Class name of the saved forecaster (``"SAGDFN"``).
    dtype:
        The floating dtype the parameters were saved under.
    scaler_state:
        ``{"type", "mean", "std"}`` of the fitted target scaler, or ``None``.
        Version ≥ 3 bundles additionally record ``count`` (observations the
        statistics summarise) and ``m2`` (raw sum of squared deviations) so
        the rehydrated scaler supports exact ``partial_fit`` continuation.
    sampler_candidates:
        SNS candidate-neighbour matrix ``C`` of shape ``(N, M)``, or ``None``.
    index_set:
        Frozen significant-neighbour index set ``I``, or ``None``.
    scheduler_state:
        ``{"type": <scheduler class name>, "state": <scheduler.state_dict()>}``
        of the learning-rate scheduler active when the bundle was written, or
        ``None``.  Feed the inner ``state`` to a freshly constructed scheduler
        of the same type (``scheduler.load_state_dict``) to resume the
        schedule — epoch counter and current learning rate included — instead
        of restarting it.
    scenario:
        ``{"quantiles", "exog_dim", "mask_input"}`` — the forecasting
        scenario the model was trained for (version ≥ 2 bundles).  Pre-
        scenario bundles yield the point/dense default
        ``{"quantiles": None, "exog_dim": 0, "mask_input": False}``; the
        same fields also live in ``config``, this record just makes them
        inspectable without rebuilding the model.
    drift:
        Online-serving drift-monitor configuration (the
        :class:`repro.serve.online.DriftConfig` fields) recorded when the
        bundle was written with ``save_bundle(..., drift=...)``, or ``None``.
        ``SessionManager.from_checkpoint`` uses it as the default monitor
        configuration (version ≥ 3 bundles).
    metadata:
        Free-form user metadata.
    version:
        Bundle format version.
    """

    state: dict[str, np.ndarray]
    config: dict
    model_type: str
    dtype: str
    scaler_state: dict | None = None
    sampler_candidates: np.ndarray | None = None
    index_set: np.ndarray | None = None
    scheduler_state: dict | None = None
    scenario: dict = field(
        default_factory=lambda: {"quantiles": None, "exog_dim": 0, "mask_input": False}
    )
    drift: dict | None = None
    metadata: dict = field(default_factory=dict)
    version: int = BUNDLE_VERSION


def save_bundle(
    model: Module,
    path: str | Path,
    scaler=None,
    metadata: dict | None = None,
    scheduler=None,
    drift=None,
) -> Path:
    """Write a self-contained serving bundle for ``model`` to ``path``.

    Alongside the parameters, the bundle records the model config (for
    SAGDFN: the :class:`~repro.core.config.SAGDFNConfig` dataclass fields),
    the fitted ``scaler`` statistics, and — when present on the model — the
    SNS sampler candidates and current index set, so that
    :func:`load_bundle` / ``ForecastService.from_checkpoint`` can rebuild
    the forecaster without any other artefact.  Passing the active
    learning-rate ``scheduler`` additionally persists its
    :meth:`~repro.optim.lr_scheduler._Scheduler.state_dict` so a resumed run
    continues the schedule instead of restarting it.  ``drift`` (a
    :class:`repro.serve.online.DriftConfig` or an equivalent dict) records
    the online drift-monitor configuration serving hosts should start with.
    """
    path = _normalise_path(path)
    payload = {name: parameter.data for name, parameter in model.named_parameters()}
    parameters = list(payload.values())
    dtype = str(parameters[0].dtype) if parameters else "float64"

    config = getattr(model, "config", None)
    config_dict = None
    if config is not None:
        from dataclasses import asdict, is_dataclass

        config_dict = asdict(config) if is_dataclass(config) else dict(vars(config))
        # Record the backend the model actually resolved (not the possibly-
        # None configured name) so a serving host knows what the checkpoint
        # ran on; ForecastService falls back to numpy (with a warning) when
        # the recorded backend is not installed there.
        backend = getattr(getattr(model, "backend", None), "name", None)
        if backend is not None:
            config_dict["backend"] = backend

    scaler_state = None
    if scaler is not None:
        if getattr(scaler, "mean_", None) is None or getattr(scaler, "std_", None) is None:
            raise ValueError("scaler must be fit before it can be bundled")
        scaler_state = {
            "type": type(scaler).__name__,
            "mean": float(scaler.mean_),
            "std": float(scaler.std_),
        }
        # Streaming provenance (v3): the observation count and raw sum of
        # squared deviations let StandardScaler.partial_fit continue the
        # accumulation exactly after rehydration.
        count = getattr(scaler, "count_", None)
        if count is not None:
            scaler_state["count"] = int(count)
            scaler_state["m2"] = float(getattr(scaler, "_m2", 0.0))

    scenario = {
        "quantiles": None,
        "exog_dim": 0,
        "mask_input": False,
    }
    if config_dict is not None:
        quantiles = config_dict.get("quantiles")
        scenario = {
            "quantiles": None if quantiles is None else [float(q) for q in quantiles],
            "exog_dim": int(config_dict.get("exog_dim", 0) or 0),
            "mask_input": bool(config_dict.get("mask_input", False)),
        }

    drift_record = None
    if drift is not None:
        from dataclasses import asdict, is_dataclass

        drift_record = asdict(drift) if is_dataclass(drift) else dict(drift)

    bundle_info = {
        "version": BUNDLE_VERSION,
        "model_type": type(model).__name__,
        "dtype": dtype,
        "config": config_dict,
        "scaler": scaler_state,
        "scenario": scenario,
        "drift": drift_record,
    }
    payload[_BUNDLE_KEY] = np.array(json.dumps(bundle_info))
    payload[_METADATA_KEY] = np.array(json.dumps(metadata or {}))

    sampler = getattr(model, "sampler", None)
    if sampler is not None and getattr(sampler, "candidates", None) is not None:
        payload[_CANDIDATES_KEY] = np.asarray(sampler.candidates, dtype=np.int64)
    index_set = getattr(model, "index_set", None)
    if index_set is not None:
        payload[_INDEX_SET_KEY] = np.asarray(index_set, dtype=np.int64)
    if scheduler is not None:
        scheduler_record = {
            "type": type(scheduler).__name__,
            "state": scheduler.state_dict(),
        }
        # Scheduler state may hold numpy scalars (e.g. a best metric fed from
        # float32 tensor data); unwrap them so json.dumps does not choke.
        payload[_SCHEDULER_KEY] = np.array(
            json.dumps(scheduler_record, default=_json_default)
        )

    # Integrity envelope: a SHA-256 digest of the numeric payload, written
    # atomically (tmp + fsync + rename) so a crash mid-save can never leave
    # a torn bundle and a flipped parameter bit can never serve silently.
    payload[_DIGEST_KEY] = np.array(_payload_digest(payload))
    _atomic_savez(path, payload)
    return path


def rehydrate_model(bundle: CheckpointBundle) -> Module:
    """Rebuild the saved forecaster from a :class:`CheckpointBundle`.

    The worker-side rehydrate path: serving-cluster worker processes (and
    :meth:`repro.serve.ForecastService.from_checkpoint`) rebuild the model
    from the bundle alone — config, dtype, SNS sampler candidates, frozen
    index set and parameters all come out of the archive, so every replica
    of a bundle is bit-identically the same forecaster.
    """
    if bundle.model_type != "SAGDFN":
        raise ValueError(
            f"cannot rehydrate model type {bundle.model_type!r}; "
            "only SAGDFN bundles are currently servable"
        )
    if not bundle.config:
        raise ValueError("bundle is missing the model config")
    from repro.core import SAGDFN, SAGDFNConfig

    model = SAGDFN(SAGDFNConfig(**bundle.config))
    model.to(np.dtype(bundle.dtype))
    if bundle.sampler_candidates is not None:
        model.sampler.candidates = np.asarray(bundle.sampler_candidates, dtype=np.int64)
    if bundle.index_set is not None:
        model._index_set = np.asarray(bundle.index_set, dtype=np.int64)
    model.load_state_dict(bundle.state)
    return model


def rehydrate_scaler(bundle: CheckpointBundle):
    """Rebuild the fitted target scaler from a bundle (``None`` if unscaled)."""
    state = bundle.scaler_state
    if state is None:
        return None
    if state.get("type") != "StandardScaler":
        raise ValueError(f"unsupported scaler type {state.get('type')!r} in bundle")
    from repro.data.scalers import StandardScaler

    scaler = StandardScaler()
    scaler.mean_ = float(state["mean"])
    scaler.std_ = float(state["std"])
    if "count" in state:
        scaler.count_ = int(state["count"])
        scaler._m2 = float(state.get("m2", 0.0))
    else:
        # Pre-v3 statistics: no sample-count provenance, so partial_fit
        # cannot extend them (it raises rather than mis-weighting).
        scaler.count_ = None
    return scaler


def load_bundle(path: str | Path, verify_digest: bool = True) -> CheckpointBundle:
    """Read a serving bundle written by :func:`save_bundle`.

    Raises ``ValueError`` when ``path`` is a plain parameter checkpoint (or
    any other archive without the ``__bundle__`` record), when the bundle
    version is newer than this code understands, or when the recorded
    SHA-256 payload digest does not match the arrays on disk (corruption).
    ``verify_digest=False`` skips the hash — e.g. for cluster workers whose
    parent already verified the same file.  Bundles written before the
    digest existed load without verification.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if _BUNDLE_KEY not in archive.files:
            raise ValueError(
                f"{path} is not a serving bundle (missing {_BUNDLE_KEY!r}); "
                "use load_checkpoint for plain parameter checkpoints"
            )
        if verify_digest and _DIGEST_KEY in archive.files:
            recorded = str(archive[_DIGEST_KEY])
            actual = _payload_digest(
                {name: archive[name] for name in archive.files
                 if name not in _DIGEST_EXCLUDED}
            )
            if actual != recorded:
                raise ValueError(
                    f"{path} failed its payload digest check "
                    f"(recorded {recorded[:12]}…, got {actual[:12]}…): "
                    "the bundle is corrupt"
                )
        info = json.loads(str(archive[_BUNDLE_KEY]))
        metadata = json.loads(str(archive[_METADATA_KEY])) if _METADATA_KEY in archive.files else {}
        state = {name: archive[name] for name in archive.files if not _is_reserved(name)}
        candidates = archive[_CANDIDATES_KEY] if _CANDIDATES_KEY in archive.files else None
        index_set = archive[_INDEX_SET_KEY] if _INDEX_SET_KEY in archive.files else None
        scheduler_state = (
            json.loads(str(archive[_SCHEDULER_KEY]))
            if _SCHEDULER_KEY in archive.files
            else None
        )

    version = int(info.get("version", 0))
    if version > BUNDLE_VERSION:
        raise ValueError(
            f"bundle version {version} is newer than the supported {BUNDLE_VERSION}"
        )
    scenario = info.get("scenario") or {
        "quantiles": None,
        "exog_dim": 0,
        "mask_input": False,
    }
    return CheckpointBundle(
        state=state,
        config=info.get("config") or {},
        model_type=str(info.get("model_type", "")),
        dtype=str(info.get("dtype", "float64")),
        scaler_state=info.get("scaler"),
        sampler_candidates=candidates,
        index_set=index_set,
        scheduler_state=scheduler_state,
        scenario=scenario,
        drift=info.get("drift"),
        metadata=metadata,
        version=version,
    )
