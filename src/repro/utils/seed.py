"""Deterministic seeding helpers used across the library and the test-suite."""

from __future__ import annotations

import random

import numpy as np


def seed_everything(seed: int = 0) -> np.random.Generator:
    """Seed Python's and NumPy's global RNGs and return a fresh Generator.

    The returned :class:`numpy.random.Generator` should be preferred for any
    new code; the global seeding exists only so that legacy ``np.random.*``
    calls inside third-party helpers stay deterministic.
    """
    random.seed(seed)
    np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)


def spawn_rng(seed: int | None, default: int = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    ``None`` maps to ``default`` so that callers can simply forward an
    optional ``seed`` argument.
    """
    return np.random.default_rng(default if seed is None else seed)
