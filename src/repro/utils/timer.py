"""Wall-clock timing helper used by the computation-cost experiments."""

from __future__ import annotations

import time


class Timer:
    """Accumulating stopwatch.

    Can be used either as a context manager or via explicit
    :meth:`start` / :meth:`stop` calls; repeated measurements accumulate in
    :attr:`total` and :attr:`count`, giving an average via :attr:`mean`.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._started_at: float | None = None

    def start(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        elapsed = time.perf_counter() - self._started_at
        self.total += elapsed
        self.count += 1
        self._started_at = None
        return elapsed

    @property
    def mean(self) -> float:
        """Average duration of the recorded intervals (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"Timer(total={self.total:.4f}s, count={self.count})"
