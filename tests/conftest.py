"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import generate_road_network
from repro.data.synthetic.carpark import CarparkConfig, generate_carpark_dataset
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_network():
    """A 12-node road network shared across tests."""
    return generate_road_network(12, neighbours=3, seed=7)


@pytest.fixture(scope="session")
def tiny_traffic_series():
    """A small traffic series: 12 nodes, 400 five-minute steps."""
    config = TrafficConfig(num_nodes=12, num_steps=400, seed=7, missing_rate=0.01)
    return generate_traffic_dataset(config)


@pytest.fixture(scope="session")
def tiny_carpark_series():
    """A small car-park series: 10 nodes, 350 five-minute steps."""
    config = CarparkConfig(num_nodes=10, num_steps=350, seed=11)
    return generate_carpark_dataset(config)


@pytest.fixture(scope="session")
def tiny_experiment_data(tiny_traffic_series):
    """Loaders / scaler / adjacency for the tiny traffic series (h=f=6)."""
    return prepare_data_from_series(tiny_traffic_series, history=6, horizon=6, batch_size=8,
                                    seed=0, name="tiny_traffic")
