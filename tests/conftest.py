"""Shared fixtures for the test-suite."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.data.synthetic import generate_road_network
from repro.data.synthetic.carpark import CarparkConfig, generate_carpark_dataset
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_network():
    """A 12-node road network shared across tests."""
    return generate_road_network(12, neighbours=3, seed=7)


@pytest.fixture(scope="session")
def tiny_traffic_series():
    """A small traffic series: 12 nodes, 400 five-minute steps."""
    config = TrafficConfig(num_nodes=12, num_steps=400, seed=7, missing_rate=0.01)
    return generate_traffic_dataset(config)


@pytest.fixture(scope="session")
def tiny_carpark_series():
    """A small car-park series: 10 nodes, 350 five-minute steps."""
    config = CarparkConfig(num_nodes=10, num_steps=350, seed=11)
    return generate_carpark_dataset(config)


@pytest.fixture(scope="session")
def tiny_experiment_data(tiny_traffic_series):
    """Loaders / scaler / adjacency for the tiny traffic series (h=f=6)."""
    return prepare_data_from_series(tiny_traffic_series, history=6, horizon=6, batch_size=8,
                                    seed=0, name="tiny_traffic")


# --------------------------------------------------------------------- #
# Scenario matrix: (head: point|quantile) × (exog: off|on) × (dense|missing)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the forecasting-scenario grid."""

    head: str  # "point" | "quantile"
    exog: str  # "off" | "on"
    data: str  # "dense" | "missing"

    @property
    def quantiles(self) -> tuple[float, ...] | None:
        return (0.1, 0.5, 0.9) if self.head == "quantile" else None

    @property
    def include_day_of_week(self) -> bool:
        return self.exog == "on"

    @property
    def mask_input(self) -> bool:
        return self.data == "missing"

    @property
    def id(self) -> str:
        return f"{self.head}-exog_{self.exog}-{self.data}"


SCENARIO_GRID = tuple(
    ScenarioSpec(head, exog, data)
    for head in ("point", "quantile")
    for exog in ("off", "on")
    for data in ("dense", "missing")
)


@dataclass
class ScenarioResult:
    """Every artefact of one train → bundle → serve run of a scenario cell."""

    spec: ScenarioSpec
    data: object  # ExperimentData
    config: object  # SAGDFNConfig
    model: object  # trained SAGDFN
    train_loss: float
    val_metrics: dict
    bundle_path: object  # Path to the .npz serving bundle
    bundle: object  # CheckpointBundle round-tripped from bundle_path
    batch_x: np.ndarray  # first test batch, model-input layout
    batch_y: np.ndarray
    kernel_pred: np.ndarray  # service prediction through the serving kernel
    module_pred: np.ndarray  # service prediction with use_kernel=False
    chunked_pred: np.ndarray  # use_kernel=False with node-chunked aggregation
    serve_metrics: dict  # streaming metrics of the kernel service on test


def make_scenario_series(spec: ScenarioSpec, num_steps: int = 160, num_nodes: int = 8):
    """Deterministic tiny series for a scenario cell (0 marks missing readings)."""
    from repro.data import MultivariateTimeSeries

    rng = np.random.default_rng(1234)
    steps = np.arange(num_steps, dtype=np.float64)
    values = (
        50.0
        + 10.0 * np.sin(steps / 12.0)[:, None]
        + rng.normal(0.0, 3.0, size=(num_steps, num_nodes))
    )
    values = np.abs(values) + 1.0  # dense cells must contain no accidental nulls
    if spec.data == "missing":
        missing = rng.random((num_steps, num_nodes)) < 0.15
        values[missing] = 0.0
    return MultivariateTimeSeries(values=values, step_minutes=5, name=f"scenario_{spec.id}")


def run_scenario_cell(spec: ScenarioSpec, bundle_dir) -> ScenarioResult:
    """Shared end-to-end runner: train → bundle round-trip → serve → metrics."""
    from repro.core import SAGDFN, Trainer
    from repro.experiments.common import small_sagdfn_config
    from repro.optim import Adam
    from repro.serve.service import ForecastService
    from repro.utils.checkpoint import load_bundle, save_bundle

    series = make_scenario_series(spec)
    data = prepare_data_from_series(
        series,
        history=4,
        horizon=3,
        batch_size=8,
        seed=0,
        include_day_of_week=spec.include_day_of_week,
        mask_input=spec.mask_input,
    )
    config = small_sagdfn_config(
        data,
        quantiles=spec.quantiles,
        hidden_size=12,
        embedding_dim=6,
        num_significant=4,
        top_k=3,
        ffn_hidden=6,
        convergence_iteration=3,
    )
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    train_loss = trainer.train_epoch(data.train_loader)
    val_metrics = trainer.evaluate(data.val_loader)

    bundle_path = save_bundle(model, bundle_dir / f"{spec.id}.npz", scaler=data.scaler)
    bundle = load_bundle(bundle_path)

    batch_x, batch_y = next(iter(data.test_loader))
    kernel_service = ForecastService.from_checkpoint(bundle_path)
    module_service = ForecastService.from_checkpoint(bundle_path, use_kernel=False)
    chunked_service = ForecastService.from_checkpoint(
        bundle_path, use_kernel=False, chunk_size=3
    )
    return ScenarioResult(
        spec=spec,
        data=data,
        config=config,
        model=model,
        train_loss=train_loss,
        val_metrics=val_metrics,
        bundle_path=bundle_path,
        bundle=bundle,
        batch_x=batch_x,
        batch_y=batch_y,
        kernel_pred=kernel_service.predict(batch_x),
        module_pred=module_service.predict(batch_x),
        chunked_pred=chunked_service.predict(batch_x),
        serve_metrics=kernel_service.evaluate(data.test_loader),
    )


@pytest.fixture(scope="session", params=SCENARIO_GRID, ids=lambda spec: spec.id)
def scenario_cell(request, tmp_path_factory) -> ScenarioResult:
    """One fully-exercised cell of the 2×2×2 scenario grid (session-cached)."""
    bundle_dir = tmp_path_factory.mktemp(f"scenario_{request.param.id}")
    return run_scenario_cell(request.param, bundle_dir)
