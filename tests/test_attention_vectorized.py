"""Equivalence and checkpoint-migration tests for the vectorized attention.

The vectorized hot path (stacked head weights, tiled fused scoring kernel,
single α-entmax call) must reproduce the per-head reference loop bit-for-bit
up to float64 round-off, including gradients, and legacy checkpoints written
by the per-head implementation must keep loading.
"""

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig, SparseSpatialMultiHeadAttention
from repro.core.attention import _batched_pair_scores
from repro.nn import Linear
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, check_gradients

EQUIV_ATOL = 1e-10


@pytest.fixture
def embeddings(rng):
    return Parameter(rng.normal(size=(14, 6)), name="embeddings")


@pytest.fixture
def index_set():
    return np.array([0, 3, 7, 11])


class TestVectorizedEquivalence:
    def test_forward_matches_per_head_loop(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8)
        vectorized = attention(embeddings, index_set)
        looped = attention.forward_looped(embeddings, index_set)
        np.testing.assert_allclose(vectorized.data, looped.data, atol=EQUIV_ATOL, rtol=0)

    def test_gradients_match_per_head_loop(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8)

        def grads(forward):
            attention.zero_grad()
            embeddings.zero_grad()
            out = forward(embeddings, index_set)
            (out * out).sum().backward()
            result = {name: p.grad.copy() for name, p in attention.named_parameters()}
            result["embeddings"] = embeddings.grad.copy()
            return result

        vectorized = grads(attention.forward)
        looped = grads(attention.forward_looped)
        assert set(vectorized) == set(looped)
        for name in vectorized:
            np.testing.assert_allclose(
                vectorized[name], looped[name], atol=EQUIV_ATOL, rtol=0, err_msg=name
            )

    def test_equivalence_with_softmax_normalizer(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(
            embedding_dim=6, num_heads=2, ffn_hidden=8, normalizer="softmax"
        )
        np.testing.assert_allclose(
            attention(embeddings, index_set).data,
            attention.forward_looped(embeddings, index_set).data,
            atol=EQUIV_ATOL,
            rtol=0,
        )

    def test_equivalence_single_head(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=1, ffn_hidden=4)
        np.testing.assert_allclose(
            attention(embeddings, index_set).data,
            attention.forward_looped(embeddings, index_set).data,
            atol=EQUIV_ATOL,
            rtol=0,
        )

    def test_fused_scoring_kernel_numerical_gradients(self, rng):
        e = Tensor(rng.normal(size=(7, 4)), requires_grad=True)
        e_i = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w1 = Tensor(rng.normal(size=(2, 8, 5)), requires_grad=True)
        b1 = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(2, 5, 2)), requires_grad=True)
        b2 = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        assert check_gradients(
            lambda *tensors: _batched_pair_scores(*tensors),
            [e, e_i, w1, b1, w2, b2],
            atol=1e-4,
        )

    def test_fused_kernel_tiles_cover_every_node(self, rng, index_set):
        """Force a tile size smaller than N so the tiling loop runs > once."""
        from repro.core import attention as attention_module

        original = attention_module._TILE_BYTES
        attention_module._TILE_BYTES = 1  # 1-node tiles
        try:
            attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8)
            embeddings = Parameter(rng.normal(size=(14, 6)))
            tiled = attention(embeddings, index_set)
            (tiled * tiled).sum().backward()
            tiled_grad = embeddings.grad.copy()
        finally:
            attention_module._TILE_BYTES = original
        embeddings.zero_grad()
        attention.zero_grad()
        whole = attention.forward_looped(embeddings, index_set)
        (whole * whole).sum().backward()
        np.testing.assert_allclose(tiled.data, whole.data, atol=EQUIV_ATOL, rtol=0)
        np.testing.assert_allclose(tiled_grad, embeddings.grad, atol=EQUIV_ATOL, rtol=0)


def _legacy_state(attention: SparseSpatialMultiHeadAttention, prefix: str = ""):
    """Re-serialise a module's stacked parameters in the per-head key layout."""
    state = {}
    for p in range(attention.num_heads):
        head = f"{prefix}heads.{p}."
        state[f"{head}input_layer.weight"] = attention.head_w1.data[p].copy()
        state[f"{head}input_layer.bias"] = attention.head_b1.data[p].copy()
        state[f"{head}output_layer.weight"] = attention.head_w2.data[p].copy()
        state[f"{head}output_layer.bias"] = attention.head_b2.data[p].copy()
    state[f"{prefix}mixer.weight"] = attention.mixer.weight.data.copy()
    state[f"{prefix}mixer.bias"] = attention.mixer.bias.data.copy()
    return state


class TestStateDictMigration:
    def test_legacy_per_head_checkpoint_loads(self, embeddings, index_set):
        source = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8, seed=5)
        target = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8, seed=9)
        target.load_state_dict(_legacy_state(source))
        np.testing.assert_array_equal(target.head_w1.data, source.head_w1.data)
        np.testing.assert_array_equal(target.head_b2.data, source.head_b2.data)
        np.testing.assert_allclose(
            target(embeddings, index_set).data,
            source(embeddings, index_set).data,
            atol=EQUIV_ATOL,
            rtol=0,
        )

    def test_legacy_checkpoint_loads_through_full_model(self):
        """Migration must also fire for nested prefixes (attention. inside SAGDFN)."""
        config = SAGDFNConfig(
            num_nodes=12, history=4, horizon=4, embedding_dim=6, num_significant=4,
            top_k=3, hidden_size=8, num_heads=2, ffn_hidden=4, seed=0,
        )
        model = SAGDFN(config)
        state = model.state_dict()
        # Rewrite the attention keys into the legacy per-head layout.
        legacy = {k: v for k, v in state.items() if not k.startswith("attention.head_")}
        legacy.update(_legacy_state(model.attention, prefix="attention."))
        legacy.pop("attention.mixer.weight")  # already present from state_dict
        legacy.pop("attention.mixer.bias")
        legacy.update({k: v for k, v in state.items() if k.startswith("attention.mixer.")})

        fresh = SAGDFN(config)
        fresh.load_state_dict(legacy)
        np.testing.assert_array_equal(
            fresh.attention.head_w1.data, model.attention.head_w1.data
        )

    def test_current_state_dict_round_trips(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8, seed=3)
        fresh = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8, seed=4)
        fresh.load_state_dict(attention.state_dict())
        np.testing.assert_allclose(
            fresh(embeddings, index_set).data,
            attention(embeddings, index_set).data,
            atol=EQUIV_ATOL,
            rtol=0,
        )

    def test_list_held_submodules_round_trip(self):
        """Modules held in plain lists serialise and reload by index."""

        class ListHolder(Module):
            def __init__(self, seed: int):
                super().__init__()
                self.blocks = [Linear(3, 3, seed=seed + i) for i in range(3)]

            def forward(self, x):
                for block in self.blocks:
                    x = block(x)
                return x

        source, target = ListHolder(seed=0), ListHolder(seed=50)
        keys = set(source.state_dict())
        assert "blocks.0.weight" in keys and "blocks.2.bias" in keys
        target.load_state_dict(source.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_array_equal(target(x).data, source(x).data)

    def test_legacy_head_count_mismatch_reports_structured_error(self):
        """A 2-head legacy checkpoint into a 3-head model must fail with the
        normal missing/unexpected-key report, not a bare KeyError."""
        source = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8, seed=0)
        target = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8, seed=0)
        with pytest.raises(KeyError, match="state_dict mismatch"):
            target.load_state_dict(_legacy_state(source))

    def test_named_modules_prefixes(self):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=4, num_heads=1, ffn_hidden=4)
        prefixes = dict(attention.named_modules())
        assert "" in prefixes and prefixes[""] is attention
        assert "mixer." in prefixes and prefixes["mixer."] is attention.mixer
