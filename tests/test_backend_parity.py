"""Backend parity: every backend × every hot kernel vs the reference math.

The numpy backend is the bit-exact reference (its outputs pin the golden
suites); any other backend must match the reference paths —
``forward_looped`` / ``forward_reference`` — to ≤ 1e-10 relative in float64.

The ``numba`` parametrization uses the registered jitted backend and
auto-skips when numba is not installed; ``numba-pure`` runs the *same
kernel bodies* as plain Python (``NumbaBackend(use_jit=False)``), so the
kernel math is covered on every host, numba or not.
"""

import numpy as np
import pytest

from repro.backend import BackendUnavailableError, get_backend
from repro.backend.numba_backend import NumbaBackend
from repro.core import SAGDFN, SAGDFNConfig, OneStepFastGConvCell
from repro.core.attention import SparseSpatialMultiHeadAttention
from repro.core.gconv import FastGraphConv
from repro.serve import ForecastService
from repro.tensor import Tensor, no_grad

F64_REL = 1e-10
BACKENDS = ["numpy", "numba", "numba-pure"]


def _max_rel(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a - b).max() / max(np.abs(b).max(), 1e-30))


@pytest.fixture(params=BACKENDS)
def backend(request):
    if request.param == "numba-pure":
        return NumbaBackend(use_jit=False)
    try:
        return get_backend(request.param)
    except BackendUnavailableError:
        pytest.skip(f"backend {request.param!r} is not available here")


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestAttentionParity:
    def _attention(self, backend, **kwargs):
        return SparseSpatialMultiHeadAttention(
            embedding_dim=6, num_heads=3, ffn_hidden=5, seed=2,
            backend=backend, **kwargs,
        )

    def test_pair_scoring_matches_looped_reference(self, backend, rng):
        attention = self._attention(backend)
        embeddings = Tensor(rng.normal(size=(14, 6)))
        index_set = rng.choice(14, size=5, replace=False)
        with no_grad():
            fast = attention(embeddings, index_set).data
            reference = attention.forward_looped(embeddings, index_set).data
        assert _max_rel(fast, reference) <= F64_REL

    def test_gradients_still_flow(self, backend, rng):
        """Under autograd every backend defers to differentiable scoring."""
        attention = self._attention(backend)
        embeddings = Tensor(rng.normal(size=(10, 6)), requires_grad=True)
        index_set = rng.choice(10, size=4, replace=False)
        attention(embeddings, index_set).sum().backward()
        assert embeddings.grad is not None
        assert attention.head_w1.grad is not None

    def test_chunked_scoring_matches_single_pass(self, backend, rng):
        single = self._attention(backend)
        chunked = self._attention(backend, chunk_size=4)
        chunked.load_state_dict(single.state_dict())
        embeddings = Tensor(rng.normal(size=(14, 6)))
        index_set = rng.choice(14, size=5, replace=False)
        with no_grad():
            a = single(embeddings, index_set).data
            b = chunked(embeddings, index_set).data
        assert _max_rel(a, b) <= F64_REL


class TestGconvParity:
    def test_diffusion_hop_matches_reference_math(self, backend, rng):
        conv = FastGraphConv(input_dim=2, output_dim=3, diffusion_steps=3,
                             seed=4, backend=backend)
        x = Tensor(rng.normal(size=(2, 9, 2)))
        slim = Tensor(rng.random((9, 4)))
        index_set = np.array([0, 3, 5, 7])
        with no_grad():
            states = conv.diffusion_states(x, slim, index_set)
        scale = 1.0 / (slim.data.sum(axis=-1, keepdims=True) + 1.0)
        # Reference math of Eq. 9: s_j = (A @ gather(s_{j-1}) + s_{j-1}) * scale.
        expected = x.data
        for state in states[1:]:
            gathered = expected[:, index_set, :]
            expected = (np.einsum("nm,bmc->bnc", slim.data, gathered)
                        + expected) * scale
            assert _max_rel(state.data, expected) <= F64_REL

    def test_cell_matches_reference(self, backend, rng):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=5, diffusion_steps=3,
                                    seed=1, backend=backend)
        hidden = Tensor(rng.normal(size=(2, 9, 5)))
        x = Tensor(rng.normal(size=(2, 9, 2)))
        slim = Tensor(rng.random((9, 3)))
        index_set = np.array([0, 4, 7])
        with no_grad():
            new_hidden, prediction = cell(x, hidden, slim, index_set)
            ref_hidden, ref_prediction = cell.forward_reference(
                x, hidden, slim, index_set
            )
        assert _max_rel(new_hidden.data, ref_hidden.data) <= F64_REL
        assert _max_rel(prediction.data, ref_prediction.data) <= F64_REL


class TestEndToEndParity:
    def _model(self):
        config = SAGDFNConfig(
            num_nodes=22, history=4, horizon=3, num_significant=6, top_k=4,
            hidden_size=8, num_heads=2, ffn_hidden=6, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(10**6)
        return model

    def test_served_forecast_matches_reference(self, backend, rng):
        """Full pipeline through the serving kernel's in-place backend ops."""
        model = self._model()
        model.set_backend(backend)
        service = ForecastService(model)
        assert service._kernel is not None
        assert service._kernel.backend is backend
        x = rng.normal(size=(3, 4, 22, 2))
        served = service.predict(x)
        with no_grad():
            reference = model.forecaster.forward_reference(
                Tensor(x), service._adjacency_tensor, service.frozen.index_set,
                degree_scale=service._degree_scale_tensor,
            ).data
        assert _max_rel(served, reference) <= F64_REL

    def test_module_forward_matches_reference(self, backend, rng):
        model = self._model()
        model.set_backend(backend)
        model.eval()
        x = Tensor(rng.normal(size=(2, 4, 22, 2)))
        with no_grad():
            fused = model(x).data
            reference = model.forward_reference(x).data
        assert _max_rel(fused, reference) <= F64_REL


class TestNumpyBackendIsBitExact:
    """The numpy backend is not just close — it IS the pre-refactor math."""

    def test_explicit_numpy_backend_is_bit_identical_to_default(self, rng):
        config = SAGDFNConfig(
            num_nodes=16, history=4, horizon=3, num_significant=5, top_k=4,
            hidden_size=8, num_heads=2, ffn_hidden=6, seed=3, backend="numpy",
        )
        explicit = SAGDFN(config)
        explicit.refresh_graph(10**6)
        default = SAGDFN(SAGDFNConfig(**{**config.__dict__, "backend": None}))
        default.refresh_graph(10**6)
        x = rng.normal(size=(2, 4, 16, 2))
        with no_grad():
            a = explicit(Tensor(x)).data
            b = default(Tensor(x)).data
        assert np.array_equal(a, b)

    def test_env_selected_numpy_is_bit_identical(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        env_model = SAGDFN(SAGDFNConfig(num_nodes=10, num_significant=4, top_k=3,
                                        hidden_size=6, num_heads=2, ffn_hidden=4))
        monkeypatch.delenv("REPRO_BACKEND")
        default_model = SAGDFN(SAGDFNConfig(num_nodes=10, num_significant=4,
                                            top_k=3, hidden_size=6, num_heads=2,
                                            ffn_hidden=4))
        env_model.refresh_graph(10**6)
        default_model.refresh_graph(10**6)
        x = rng.normal(size=(1, 12, 10, 2))
        with no_grad():
            assert np.array_equal(env_model(Tensor(x)).data,
                                  default_model(Tensor(x)).data)
