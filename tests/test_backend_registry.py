"""Backend registry, ExecutionPlan resolution and the deprecation shims.

One resolver serves every selection path — ``SAGDFNConfig.backend``, the
``REPRO_BACKEND`` environment variable and the ``ForecastService``/CLI
override — so unknown names fail identically everywhere: a ``ValueError``
listing the registered backends.  The legacy ``use_kernel`` /
``node_chunk_size`` kwargs must keep working (with a ``DeprecationWarning``)
by folding into the per-model :class:`~repro.backend.ExecutionPlan`.
"""

import numpy as np
import pytest

from repro.backend import (
    BackendUnavailableError,
    ExecutionPlan,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.backend.numba_backend import NUMBA_AVAILABLE
from repro.core import SAGDFN, SAGDFNConfig
from repro.core.attention import SparseSpatialMultiHeadAttention
from repro.core.gconv import FastGraphConv, OneStepFastGConvCell
from repro.serve import ForecastService
from repro.utils import save_bundle


def _tiny_config(**overrides):
    defaults = dict(
        num_nodes=8, num_significant=4, top_k=3, history=4, horizon=3,
        embedding_dim=6, hidden_size=8, num_heads=2, ffn_hidden=4, seed=0,
    )
    defaults.update(overrides)
    return SAGDFNConfig(**defaults)


def _converged_model(**overrides):
    model = SAGDFN(_tiny_config(**overrides))
    model.refresh_graph(10**6)
    return model


class TestResolver:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_name() == "numpy"
        assert get_backend().name == "numpy"

    def test_builtins_are_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "numba" in names

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert resolve_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "  ")  # blank → default
        assert resolve_backend_name() == "numpy"

    def test_explicit_beats_env(self, monkeypatch):
        register_backend("other-for-test", NumpyBackend)
        try:
            monkeypatch.setenv("REPRO_BACKEND", "other-for-test")
            assert resolve_backend_name("numpy") == "numpy"
            assert resolve_backend_name() == "other-for-test"
        finally:
            unregister_backend("other-for-test")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match=r"unknown backend 'nope'.*numpy"):
            get_backend("nope")

    def test_unknown_env_name_fails_the_same_way(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "nope")
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            get_backend()

    def test_unknown_config_name_fails_at_model_construction(self):
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            SAGDFN(_tiny_config(backend="nope"))

    def test_unknown_service_override_fails_the_same_way(self):
        model = _converged_model()
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            ForecastService(model, backend="nope")

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_numba_unavailable_raises_backend_error(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba is installed here")
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")

    def test_third_party_registration_via_decorator(self):
        @register_backend("custom-for-test")
        class CustomBackend(NumpyBackend):
            name = "custom-for-test"

        try:
            assert "custom-for-test" in available_backends()
            model = SAGDFN(_tiny_config(backend="custom-for-test"))
            assert model.backend.name == "custom-for-test"
            assert model.plan.backend == "custom-for-test"
        finally:
            unregister_backend("custom-for-test")
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("custom-for-test")


class TestExecutionPlan:
    def test_validation_matches_legacy_messages(self):
        with pytest.raises(ValueError, match="node_chunk_size must be >= 1"):
            ExecutionPlan(node_chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            ExecutionPlan(chunk_size=0)
        with pytest.raises(ValueError, match="memory_budget_mb must be positive"):
            ExecutionPlan(memory_budget_mb=-1.0)

    def test_replace_validates(self):
        plan = ExecutionPlan()
        assert plan.replace(chunk_size=4).chunk_size == 4
        assert plan.chunk_size is None  # original untouched
        with pytest.raises(ValueError):
            plan.replace(chunk_size=0)

    def test_one_plan_is_shared_across_modules(self):
        model = _converged_model()
        assert model.attention.plan is model.plan
        assert model.forecaster.plan is model.plan
        assert model.sampler.plan is model.plan
        for cell in model.forecaster.encoder_cells + model.forecaster.decoder_cells:
            assert cell.plan is model.plan
            assert cell.gates.plan is model.plan
        # one mutation is seen everywhere, through the legacy attributes too
        model.attention.chunk_size = 5
        assert model.sampler.chunk_size == 5
        assert model.plan.chunk_size == 5

    def test_config_chunk_size_lands_in_plan(self):
        model = SAGDFN(_tiny_config(chunk_size=3))
        assert model.plan.chunk_size == 3
        assert model.plan.node_chunk_size == 3
        assert model.forecaster.encoder_cells[0].gates.node_chunk_size == 3


class TestDeprecationShims:
    # The shim warnings must hand the migration to the reader: name the
    # ExecutionPlan replacement and point at the README's backend section.

    def test_gconv_node_chunk_size_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="node_chunk_size"):
            conv = FastGraphConv(2, 2, node_chunk_size=4)
        assert conv.node_chunk_size == 4

    def test_gconv_warning_names_plan_and_readme_anchor(self):
        with pytest.warns(
            DeprecationWarning,
            match=r"ExecutionPlan(.|\n)*README\.md#execution-backends",
        ):
            FastGraphConv(2, 2, node_chunk_size=4)

    def test_cell_node_chunk_size_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="node_chunk_size"):
            cell = OneStepFastGConvCell(input_dim=2, hidden_dim=4, node_chunk_size=3)
        assert cell.gates.node_chunk_size == 3

    def test_cell_warning_names_plan_and_readme_anchor(self):
        with pytest.warns(
            DeprecationWarning,
            match=r"ExecutionPlan(.|\n)*README\.md#execution-backends",
        ):
            OneStepFastGConvCell(input_dim=2, hidden_dim=4, node_chunk_size=3)

    def test_plan_and_legacy_kwarg_are_mutually_exclusive(self):
        backend = get_backend("numpy")
        plan = backend.make_plan(node_chunk_size=2)
        with pytest.raises(ValueError, match="ExecutionPlan"):
            FastGraphConv(2, 2, node_chunk_size=3, plan=plan)
        with pytest.raises(ValueError, match="ExecutionPlan"):
            SparseSpatialMultiHeadAttention(4, chunk_size=3, plan=plan)

    def test_service_use_kernel_kwarg_warns_and_folds_into_plan(self):
        model = _converged_model()
        with pytest.warns(DeprecationWarning, match="use_kernel"):
            service = ForecastService(model, use_kernel=False)
        assert service._kernel is None
        assert model.plan.use_kernel is False

    def test_service_warning_names_plan_and_readme_anchor(self):
        with pytest.warns(
            DeprecationWarning,
            match=r"ExecutionPlan\.use_kernel(.|\n)*README\.md#execution-backends",
        ):
            ForecastService(_converged_model(), use_kernel=True)

    def test_plan_use_kernel_is_the_new_switch(self):
        model = _converged_model()
        model.plan.use_kernel = False
        service = ForecastService(model)
        assert service._kernel is None

    def test_service_default_still_builds_kernel(self):
        service = ForecastService(_converged_model())
        assert service._kernel is not None
        assert service._kernel.backend is service.backend


class TestModelAndServiceBackend:
    def test_model_records_resolved_backend(self):
        model = _converged_model()
        assert model.backend.name == "numpy"
        assert model.plan.backend == "numpy"

    def test_set_backend_repoints_every_module(self):
        model = _converged_model()
        other = NumpyBackend()
        model.set_backend(other)
        assert model.backend is other
        assert model.attention.backend is other
        assert model.forecaster.backend is other
        for cell in model.forecaster.encoder_cells + model.forecaster.decoder_cells:
            assert cell.backend is other
            assert cell.gates.backend is other
            assert cell.candidate.backend is other

    def test_service_records_backend_name(self):
        service = ForecastService(_converged_model())
        assert service.backend_name == "numpy"
        assert service.config["backend"] == "numpy"

    def test_service_override_switches_model(self):
        class OverrideBackend(NumpyBackend):
            name = "override-for-test"

        register_backend("override-for-test", OverrideBackend)
        try:
            model = _converged_model()
            service = ForecastService(model, backend="override-for-test")
            assert service.backend_name == "override-for-test"
            assert model.backend is service.backend
            assert service._kernel.backend is service.backend
        finally:
            unregister_backend("override-for-test")


class TestBundleBackendRecord:
    @pytest.fixture
    def bundle_path(self, tmp_path):
        model = _converged_model()
        return save_bundle(model, tmp_path / "bundle")

    def test_bundle_records_backend_name(self, bundle_path):
        from repro.utils.checkpoint import load_bundle

        assert load_bundle(bundle_path).config["backend"] == "numpy"

    def test_from_checkpoint_explicit_unknown_backend_raises(self, bundle_path):
        with pytest.raises(ValueError, match="unknown backend"):
            ForecastService.from_checkpoint(bundle_path, backend="nope")

    def test_from_checkpoint_unavailable_recorded_backend_falls_back(
        self, bundle_path, tmp_path, capsys
    ):
        class GhostBackend(NumpyBackend):
            name = "ghost"

        register_backend("ghost", GhostBackend)
        try:
            model = _converged_model(backend="ghost")
            ghost_path = save_bundle(model, tmp_path / "ghost_bundle")

            def _unavailable():
                raise BackendUnavailableError("ghost is not installed here")

            register_backend("ghost", _unavailable)
            service = ForecastService.from_checkpoint(ghost_path)
            assert service.backend_name == "numpy"
            assert service.model.backend.name == "numpy"
            assert "ghost" in capsys.readouterr().err
        finally:
            unregister_backend("ghost")

    def test_pre_backend_bundles_resolve_normally(self, bundle_path, monkeypatch):
        """Bundles written before the backend record load on the default."""
        import json

        import numpy as np

        from repro.utils.checkpoint import _BUNDLE_KEY

        with np.load(bundle_path, allow_pickle=False) as archive:
            payload = dict(archive)
        info = json.loads(str(payload[_BUNDLE_KEY]))
        info["config"].pop("backend", None)
        payload[_BUNDLE_KEY] = np.array(json.dumps(info))
        legacy = bundle_path.parent / "legacy.npz"
        np.savez(legacy, **payload)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        service = ForecastService.from_checkpoint(legacy)
        assert service.backend_name == "numpy"
