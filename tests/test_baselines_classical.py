"""Tests for the classical baselines: Historical Average, ARIMA, VAR, SVR."""

import numpy as np
import pytest

from repro.baselines import ARIMAForecaster, HistoricalAverage, SVRForecaster, VARForecaster


@pytest.fixture
def seasonal_series(rng):
    """A (T, N) series with a clear daily cycle plus noise, 5-minute steps."""
    steps, nodes, steps_per_day = 288 * 4, 6, 288
    time = np.arange(steps)
    daily = 10.0 * np.sin(2 * np.pi * time / steps_per_day)
    base = 50.0 + rng.normal(scale=1.0, size=(steps, nodes))
    return base + daily[:, None]


class TestHistoricalAverage:
    def test_predict_shape(self, seasonal_series):
        model = HistoricalAverage(history=12, horizon=6, steps_per_day=288)
        model.fit(seasonal_series[:800])
        prediction = model.predict(seasonal_series[800:812], start_step=812)
        assert prediction.shape == (6, 6)

    def test_slot_means_capture_daily_cycle(self, seasonal_series):
        model = HistoricalAverage(history=12, horizon=12, steps_per_day=288)
        model.fit(seasonal_series)
        # prediction at the daily peak differs from prediction at the trough
        peak = model.predict(seasonal_series[:12], start_step=72)
        trough = model.predict(seasonal_series[:12], start_step=216)
        assert peak.mean() > trough.mean()

    def test_fallback_without_daily_period(self, seasonal_series):
        model = HistoricalAverage(history=12, horizon=4)
        model.fit(seasonal_series[:100])
        prediction = model.predict(seasonal_series[100:112])
        assert np.allclose(prediction, seasonal_series[100:112].mean(axis=0), atol=1e-9)

    def test_predict_before_fit_raises(self, seasonal_series):
        with pytest.raises(RuntimeError):
            HistoricalAverage(12, 6).predict(seasonal_series[:12])


class TestARIMA:
    def test_fit_predict_shapes(self, seasonal_series):
        model = ARIMAForecaster(history=24, horizon=6, order=(3, 1))
        model.fit(seasonal_series[:800])
        prediction = model.predict(seasonal_series[776:800])
        assert prediction.shape == (6, 6)

    def test_tracks_linear_trend(self):
        """An ARIMA(1,1) on a noiseless linear trend must extrapolate the trend."""
        steps = np.arange(200, dtype=float)
        series = np.stack([2.0 * steps, -1.0 * steps + 50], axis=1)
        model = ARIMAForecaster(history=20, horizon=5, order=(2, 1))
        model.fit(series[:150])
        prediction = model.predict(series[130:150])
        expected_first = np.array([2.0 * 150, -1.0 * 150 + 50])
        assert np.allclose(prediction[0], expected_first, atol=2.0)
        assert prediction[4, 0] > prediction[0, 0]  # increasing series keeps increasing

    def test_better_than_naive_on_autocorrelated_data(self, rng):
        """On an AR(1) process the fitted model beats the last-value predictor."""
        steps, nodes = 600, 4
        series = np.zeros((steps, nodes))
        noise = rng.normal(scale=1.0, size=(steps, nodes))
        for t in range(1, steps):
            series[t] = 0.9 * series[t - 1] + noise[t]
        series += 100.0
        model = ARIMAForecaster(history=24, horizon=3, order=(3, 0))
        model.fit(series[:500])
        errors_model, errors_naive = [], []
        for start in range(500, 580):
            window = series[start - 24 : start]
            target = series[start : start + 3]
            errors_model.append(np.abs(model.predict(window) - target).mean())
            errors_naive.append(np.abs(window[-1][None, :] - target).mean())
        assert np.mean(errors_model) <= np.mean(errors_naive) * 1.05

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ARIMAForecaster(12, 6, order=(0, 1))
        with pytest.raises(ValueError):
            ARIMAForecaster(12, 6, order=(2, 3))

    def test_too_short_training_series(self, rng):
        model = ARIMAForecaster(12, 6, order=(5, 1))
        with pytest.raises(ValueError):
            model.fit(rng.normal(size=(5, 3)))


class TestVAR:
    def test_fit_predict_shapes(self, seasonal_series):
        model = VARForecaster(history=12, horizon=4, order=2)
        model.fit(seasonal_series[:600])
        assert model.predict(seasonal_series[588:600]).shape == (4, 6)

    def test_uses_cross_series_information(self, rng):
        """Node 1 is a lagged copy of node 0: VAR should predict it almost perfectly."""
        steps = 500
        driver = np.cumsum(rng.normal(size=steps))
        follower = np.roll(driver, 1)
        series = np.stack([driver, follower], axis=1)
        model = VARForecaster(history=10, horizon=1, order=2, ridge=1e-4)
        model.fit(series[:400])
        errors = []
        for start in range(400, 480):
            prediction = model.predict(series[start - 10 : start])
            errors.append(abs(prediction[0, 1] - series[start, 1]))
        assert np.mean(errors) < 0.2

    def test_node_count_mismatch_raises(self, seasonal_series, rng):
        model = VARForecaster(history=12, horizon=4, order=2)
        model.fit(seasonal_series[:300])
        with pytest.raises(ValueError):
            model.predict(rng.normal(size=(12, 3)))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            VARForecaster(12, 4, order=0)


class TestSVR:
    def test_fit_predict_shapes(self, seasonal_series):
        model = SVRForecaster(history=12, horizon=6, iterations=50)
        model.fit(seasonal_series[:600])
        assert model.predict(seasonal_series[588:600]).shape == (6, 6)

    def test_learns_persistence_on_smooth_series(self, rng):
        """On a slowly varying series the SVR forecast should stay near the last value."""
        steps = 400
        smooth = np.cumsum(rng.normal(scale=0.05, size=(steps, 3)), axis=0) + 20.0
        model = SVRForecaster(history=12, horizon=3, iterations=300, learning_rate=0.05)
        model.fit(smooth[:350])
        window = smooth[338:350]
        prediction = model.predict(window)
        assert np.abs(prediction - window[-1]).mean() < 2.0

    def test_short_history_is_padded(self, seasonal_series):
        model = SVRForecaster(history=12, horizon=2, iterations=20)
        model.fit(seasonal_series[:400])
        prediction = model.predict(seasonal_series[:5])  # shorter than history
        assert prediction.shape == (2, 6)

    def test_sample_cap_respected(self, seasonal_series):
        model = SVRForecaster(history=12, horizon=2, iterations=10, max_samples=100)
        model.fit(seasonal_series[:400])
        assert model.weights_.shape == (2, 12)
