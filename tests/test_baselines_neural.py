"""Tests for the neural baselines: shapes, gradients, graph usage and the registry."""

import numpy as np
import pytest

from repro.baselines import (
    AGCRNForecaster,
    BASELINE_REGISTRY,
    DCRNNForecaster,
    GTSForecaster,
    GraphWaveNetForecaster,
    LSTMForecaster,
    MTGNNForecaster,
    STEPForecaster,
    build_baseline,
    classical_baseline_names,
    neural_baseline_names,
)
from repro.tensor import Tensor

NUM_NODES, INPUT_DIM, HISTORY, HORIZON = 10, 2, 6, 6


@pytest.fixture
def adjacency(rng):
    matrix = rng.random((NUM_NODES, NUM_NODES))
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return matrix


@pytest.fixture
def series_values(rng):
    return rng.normal(loc=40.0, scale=8.0, size=(200, NUM_NODES))


@pytest.fixture
def batch(rng):
    return rng.normal(size=(3, HISTORY, NUM_NODES, INPUT_DIM))


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        expected = {"ARIMA", "VAR", "SVR", "LSTM", "DCRNN", "STGCN", "STSGCN", "GraphWaveNet",
                    "AGCRN", "MTGNN", "GMAN", "ASTGCN", "GTS", "STEP", "D2STGNN",
                    "TimesNet", "FEDformer", "ETSformer"}
        assert expected.issubset(set(BASELINE_REGISTRY))

    def test_classical_and_neural_split(self):
        classical = set(classical_baseline_names())
        neural = set(neural_baseline_names())
        assert classical & neural == set()
        assert classical | neural == set(BASELINE_REGISTRY)

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            build_baseline("NotAModel", NUM_NODES, INPUT_DIM, HISTORY, HORIZON)

    def test_missing_adjacency_raises(self):
        with pytest.raises(ValueError):
            build_baseline("DCRNN", NUM_NODES, INPUT_DIM, HISTORY, HORIZON)

    def test_missing_series_features_raises(self):
        with pytest.raises(ValueError):
            build_baseline("GTS", NUM_NODES, INPUT_DIM, HISTORY, HORIZON)

    @pytest.mark.parametrize("name", sorted(set(neural_baseline_names())))
    def test_every_neural_baseline_forward_backward(self, name, adjacency, series_values, batch):
        model = build_baseline(name, NUM_NODES, INPUT_DIM, HISTORY, HORIZON,
                               adjacency=adjacency, series_values=series_values, hidden_size=12)
        output = model(Tensor(batch))
        assert output.shape == (3, HORIZON, NUM_NODES, 1)
        output.abs().mean().backward()
        assert any(p.grad is not None and not np.allclose(p.grad, 0.0) for p in model.parameters())


class TestUnivariateBaselines:
    def test_lstm_is_node_independent(self, rng):
        """Changing one node's history must not change another node's forecast."""
        model = LSTMForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, hidden_size=8, seed=0)
        base = rng.normal(size=(1, HISTORY, NUM_NODES, INPUT_DIM))
        perturbed = base.copy()
        perturbed[0, :, 0, :] += 5.0
        difference = np.abs(model(Tensor(perturbed)).data - model(Tensor(base)).data)
        assert difference[0, :, 0].sum() > 0
        assert np.allclose(difference[0, :, 1:], 0.0)


class TestGraphBaselines:
    def test_dcrnn_uses_the_graph(self, adjacency, rng):
        """With a connected adjacency, perturbing one node affects its neighbours."""
        model = DCRNNForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, adjacency,
                                hidden_size=8, seed=0)
        base = rng.normal(size=(1, HISTORY, NUM_NODES, INPUT_DIM))
        perturbed = base.copy()
        perturbed[0, :, 0, :] += 5.0
        difference = np.abs(model(Tensor(perturbed)).data - model(Tensor(base)).data)
        assert difference[0, :, 1:].sum() > 0

    def test_dcrnn_rejects_wrong_adjacency_shape(self, rng):
        with pytest.raises(ValueError):
            DCRNNForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, np.ones((3, 3)))

    def test_agcrn_adjacency_is_row_stochastic(self):
        model = AGCRNForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, seed=0)
        adjacency = model.adaptive_adjacency().data
        assert adjacency.shape == (NUM_NODES, NUM_NODES)
        assert np.allclose(adjacency.sum(axis=1), 1.0, atol=1e-6)

    def test_graph_wavenet_adjacency_learnable(self, batch):
        model = GraphWaveNetForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, seed=0)
        model(Tensor(batch)).abs().mean().backward()
        assert model.source_embeddings.grad is not None
        assert model.target_embeddings.grad is not None

    def test_mtgnn_adjacency_topk_sparsity(self):
        model = MTGNNForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, top_k=3, seed=0)
        adjacency = model.learned_adjacency().data
        assert np.all((adjacency > 0).sum(axis=1) <= 3)

    def test_gts_adjacency_row_stochastic_and_dense(self, series_values):
        features = GTSForecaster.features_from_series(series_values, num_bins=8)
        model = GTSForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, features, seed=0)
        adjacency = model.learned_adjacency().data
        assert adjacency.shape == (NUM_NODES, NUM_NODES)
        assert np.allclose(adjacency.sum(axis=1), 1.0, atol=1e-6)

    def test_gts_features_from_series_shape(self, series_values):
        features = GTSForecaster.features_from_series(series_values, num_bins=10)
        assert features.shape == (NUM_NODES, 10)

    def test_step_has_more_parameters_than_gts(self, series_values):
        features = GTSForecaster.features_from_series(series_values)
        gts = GTSForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, features, seed=0)
        step = STEPForecaster(NUM_NODES, INPUT_DIM, HISTORY, HORIZON, features, seed=0)
        assert step.num_parameters() > gts.num_parameters()

    def test_stsgcn_requires_three_steps(self, adjacency):
        with pytest.raises(ValueError):
            build_baseline("STSGCN", NUM_NODES, INPUT_DIM, history=2, horizon=2,
                           adjacency=adjacency)


class TestNonGNNBaselines:
    @pytest.mark.parametrize("name", ["TimesNet", "FEDformer", "ETSformer"])
    def test_non_gnn_models_are_node_independent(self, name, rng):
        model = build_baseline(name, NUM_NODES, INPUT_DIM, HISTORY, HORIZON)
        base = rng.normal(size=(1, HISTORY, NUM_NODES, INPUT_DIM))
        perturbed = base.copy()
        perturbed[0, :, 2, :] += 4.0
        difference = np.abs(model(Tensor(perturbed)).data - model(Tensor(base)).data)
        others = np.delete(np.arange(NUM_NODES), 2)
        assert np.allclose(difference[0, :, others], 0.0)
        assert difference[0, :, 2].sum() > 0
