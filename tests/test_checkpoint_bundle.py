"""Checkpoint bundle round-trips, dtype policy, and legacy migration."""

import json

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.data.scalers import StandardScaler
from repro.serve import ForecastService
from repro.tensor import Tensor, default_dtype
from repro.utils import (
    load_bundle,
    load_checkpoint,
    save_bundle,
    save_checkpoint,
)
from repro.utils.checkpoint import BUNDLE_VERSION


def _tiny_config(**overrides):
    defaults = dict(num_nodes=8, input_dim=2, history=4, horizon=3, embedding_dim=6,
                    num_significant=5, top_k=3, hidden_size=8, num_heads=2, ffn_hidden=6)
    defaults.update(overrides)
    return SAGDFNConfig(**defaults)


@pytest.fixture
def fitted_scaler():
    return StandardScaler().fit(np.array([10.0, 20.0, 30.0]))


class TestBundleRoundTrip:
    def test_all_fields_survive(self, tmp_path, fitted_scaler):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle", scaler=fitted_scaler,
                           metadata={"dataset": "tiny", "epochs": 3})
        bundle = load_bundle(path)
        assert bundle.version == BUNDLE_VERSION
        assert bundle.model_type == "SAGDFN"
        assert bundle.metadata == {"dataset": "tiny", "epochs": 3}
        assert bundle.config["num_nodes"] == 8
        assert bundle.scaler_state == {"type": "StandardScaler", "mean": 20.0,
                                       "std": pytest.approx(fitted_scaler.std_),
                                       "count": 3,
                                       "m2": pytest.approx(fitted_scaler._m2)}
        assert np.array_equal(bundle.sampler_candidates, model.sampler.candidates)
        assert np.array_equal(bundle.index_set, model.index_set)
        for name, parameter in model.named_parameters():
            assert np.array_equal(bundle.state[name], parameter.data)

    def test_rehydrated_model_is_equivalent(self, tmp_path, fitted_scaler, rng):
        model = SAGDFN(_tiny_config(seed=4))
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle", scaler=fitted_scaler)
        service = ForecastService.from_checkpoint(path)
        clone = service.model
        assert np.array_equal(clone.sampler.candidates, model.sampler.candidates)
        assert np.array_equal(clone.index_set, model.index_set)
        batch = rng.normal(size=(2, 4, 8, 2))
        model.eval(), clone.eval()
        with default_dtype("float64"):
            assert np.allclose(model(Tensor(batch)).data, clone(Tensor(batch)).data)

    def test_unfit_scaler_rejected(self, tmp_path):
        model = SAGDFN(_tiny_config())
        with pytest.raises(ValueError, match="fit"):
            save_bundle(model, tmp_path / "bundle", scaler=StandardScaler())


class TestDtypePolicy:
    def test_float32_bundle_stays_float32(self, tmp_path, fitted_scaler):
        with default_dtype("float32"):
            model = SAGDFN(_tiny_config())
            model.refresh_graph(0)
            path = save_bundle(model, tmp_path / "f32", scaler=fitted_scaler)
        bundle = load_bundle(path)
        assert bundle.dtype == "float32"
        # Rehydration happens under the default float64 policy, yet the
        # service must honour the dtype the bundle was trained in.
        service = ForecastService.from_checkpoint(path)
        for parameter in service.model.parameters():
            assert parameter.data.dtype == np.float32
        window = np.random.default_rng(0).normal(size=(1, 4, 8, 2))
        assert service.predict(window).dtype == np.float32

    def test_float64_roundtrip_dtype(self, tmp_path):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "f64")
        service = ForecastService.from_checkpoint(path)
        for parameter in service.model.parameters():
            assert parameter.data.dtype == np.float64


class TestMismatchedArchives:
    def test_plain_checkpoint_is_not_a_bundle(self, tmp_path):
        model = SAGDFN(_tiny_config())
        path = save_checkpoint(model, tmp_path / "plain")
        with pytest.raises(ValueError, match="not a serving bundle"):
            load_bundle(path)

    def test_bundle_params_load_into_plain_model(self, tmp_path):
        """load_checkpoint skips reserved keys, so bundles are backwards-usable."""
        model = SAGDFN(_tiny_config(seed=1))
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle", metadata={"tag": "x"})
        clone = SAGDFN(_tiny_config(seed=2))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"tag": "x"}
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_wrong_architecture_raises(self, tmp_path):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        other = SAGDFN(_tiny_config(hidden_size=16))
        with pytest.raises(ValueError):
            load_checkpoint(other, path)

    def test_future_bundle_version_rejected(self, tmp_path):
        model = SAGDFN(_tiny_config())
        path = save_bundle(model, tmp_path / "bundle")
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        info = json.loads(str(payload["__bundle__"]))
        info["version"] = BUNDLE_VERSION + 1
        payload["__bundle__"] = np.array(json.dumps(info))
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_bundle(path)

    def test_missing_config_rejected_by_service(self, tmp_path):
        model = SAGDFN(_tiny_config())
        path = save_bundle(model, tmp_path / "bundle")
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        info = json.loads(str(payload["__bundle__"]))
        info["config"] = None
        payload["__bundle__"] = np.array(json.dumps(info))
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="config"):
            ForecastService.from_checkpoint(path)


class TestBundleIntegrity:
    def test_digest_recorded_and_verified(self, tmp_path):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        with np.load(path, allow_pickle=False) as archive:
            assert "__digest__" in archive.files
        load_bundle(path)  # verification on by default, passes untouched
        load_bundle(path, verify_digest=False)

    def test_tampered_payload_fails_digest(self, tmp_path):
        """Flip one weight value while keeping the stale recorded digest:
        load_bundle must refuse the bundle as corrupt."""
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        victim = next(name for name, value in payload.items()
                      if not name.startswith("__") and value.size)
        tampered = payload[victim].copy()
        tampered.flat[0] += 1.0
        payload[victim] = tampered
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="corrupt"):
            load_bundle(path)
        # Escape hatch for forensics: verification can be switched off.
        load_bundle(path, verify_digest=False)

    def test_truncated_bundle_fails_loudly(self, tmp_path):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_bundle(path)

    def test_legacy_bundle_without_digest_still_loads(self, tmp_path):
        """Bundles written before the digest key must stay loadable."""
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files
                       if name != "__digest__"}
        np.savez(path, **payload)
        bundle = load_bundle(path)
        assert bundle.version == BUNDLE_VERSION

    def test_no_tmp_file_left_behind(self, tmp_path):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        save_bundle(model, tmp_path / "bundle")
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_serve_cli_reports_corruption_as_one_line_error(self, tmp_path):
        from repro.serve.__main__ import main as serve_main

        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip one byte mid-archive
        path.write_bytes(bytes(data))
        with pytest.raises(SystemExit, match="error: cannot load"):
            serve_main([str(path), "--requests", "1"])

    def test_serve_cli_reports_truncation_as_one_line_error(self, tmp_path):
        from repro.serve.__main__ import main as serve_main

        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        path = save_bundle(model, tmp_path / "bundle")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(SystemExit, match="error: cannot load"):
            serve_main([str(path), "--requests", "1"])


class TestLegacyMigration:
    def test_per_head_attention_checkpoint_loads(self, tmp_path, rng):
        """Seed-era per-head FFN keys migrate through Module._upgrade_state_dict."""
        model = SAGDFN(_tiny_config(seed=7))
        model.refresh_graph(0)
        state = model.state_dict()

        legacy = {}
        for name, value in state.items():
            if name.startswith("attention.head_"):
                continue
            legacy[name] = value
        attention = model.attention
        for p in range(attention.num_heads):
            head = f"attention.heads.{p}."
            legacy[f"{head}input_layer.weight"] = attention.head_w1.data[p]
            legacy[f"{head}input_layer.bias"] = attention.head_b1.data[p]
            legacy[f"{head}output_layer.weight"] = attention.head_w2.data[p]
            legacy[f"{head}output_layer.bias"] = attention.head_b2.data[p]
        legacy["__metadata__"] = np.array(json.dumps({"era": "per-head"}))
        path = tmp_path / "legacy.npz"
        np.savez(path, **legacy)

        clone = SAGDFN(_tiny_config(seed=9))
        clone._index_set = model.index_set.copy()
        metadata = load_checkpoint(clone, path)
        assert metadata == {"era": "per-head"}
        batch = Tensor(rng.normal(size=(2, 4, 8, 2)))
        model.eval(), clone.eval()
        assert np.allclose(model(batch).data, clone(batch).data)