"""Tests for the Sparse Spatial Multi-Head Attention and the fast graph convolution cell."""

import numpy as np
import pytest

from repro.core import FastGraphConv, OneStepFastGConvCell, SparseSpatialMultiHeadAttention
from repro.nn.module import Parameter
from repro.tensor import Tensor, check_gradients


@pytest.fixture
def embeddings(rng):
    return Parameter(rng.normal(size=(14, 6)), name="embeddings")


@pytest.fixture
def index_set():
    return np.array([0, 3, 7, 11])


class TestSparseSpatialAttention:
    def test_output_shape(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=3, ffn_hidden=8)
        slim = attention(embeddings, index_set)
        assert slim.shape == (14, 4)

    def test_gradients_flow_to_embeddings(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8)
        slim = attention(embeddings, index_set)
        # A non-linear objective: the plain sum is constant by construction
        # (each α-entmax head normalises over the neighbour axis).
        (slim * slim).sum().backward()
        assert embeddings.grad is not None
        assert not np.allclose(embeddings.grad, 0.0)

    def test_row_sums_constant_per_head_structure(self, embeddings, index_set):
        """Each head's α-entmax normalises over the M neighbours, so every row sum of A_s
        equals the same mixer-determined constant."""
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8)
        slim = attention(embeddings, index_set)
        row_sums = slim.data.sum(axis=1)
        assert np.allclose(row_sums, row_sums[0], atol=1e-8)

    def test_softmax_normalizer_forces_alpha_one(self):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=4, normalizer="softmax", alpha=2.0)
        assert attention.alpha == 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SparseSpatialMultiHeadAttention(embedding_dim=4, num_heads=0)
        with pytest.raises(ValueError):
            SparseSpatialMultiHeadAttention(embedding_dim=4, normalizer="other")

    def test_inner_product_ablation_path(self, embeddings, index_set):
        attention = SparseSpatialMultiHeadAttention(embedding_dim=6, use_pairwise_attention=False,
                                                    alpha=1.5)
        slim = attention(embeddings, index_set)
        assert slim.shape == (14, 4)
        # inner-product + entmax rows are probability vectors over the neighbours
        assert np.allclose(slim.data.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(slim.data >= -1e-12)

    def test_entmax_produces_sparser_scores_than_softmax(self, rng, index_set):
        embeddings = Parameter(rng.normal(size=(14, 6)) * 3.0)
        sparse_attention = SparseSpatialMultiHeadAttention(6, num_heads=1, alpha=2.0, seed=1)
        soft_attention = SparseSpatialMultiHeadAttention(6, num_heads=1, normalizer="softmax", seed=1)
        # compare the per-head normalised scores via the number of exact zeros
        sparse_zeros = (sparse_attention(embeddings, index_set).data == 0.0).sum()
        soft_zeros = (soft_attention(embeddings, index_set).data == 0.0).sum()
        assert sparse_zeros >= soft_zeros

    def test_parameter_count_independent_of_num_nodes(self):
        small = SparseSpatialMultiHeadAttention(embedding_dim=6, num_heads=2, ffn_hidden=8)
        # the module has no per-node parameters — scalability requirement
        names = [name for name, _ in small.named_parameters()]
        assert all("node" not in name for name in names)


class TestFastGraphConv:
    def test_slim_output_shape(self, rng, index_set):
        conv = FastGraphConv(input_dim=5, output_dim=7, diffusion_steps=3)
        x = Tensor(rng.normal(size=(2, 14, 5)))
        slim = Tensor(rng.random((14, 4)))
        assert conv(x, slim, index_set).shape == (2, 14, 7)

    def test_dense_output_shape(self, rng):
        conv = FastGraphConv(input_dim=5, output_dim=7, diffusion_steps=2)
        x = Tensor(rng.normal(size=(2, 9, 5)))
        dense = Tensor(rng.random((9, 9)))
        assert conv(x, dense, index_set=None).shape == (2, 9, 7)

    def test_single_step_is_plain_linear(self, rng, index_set):
        conv = FastGraphConv(input_dim=4, output_dim=3, diffusion_steps=1, seed=0)
        x = Tensor(rng.normal(size=(1, 14, 4)))
        slim = Tensor(rng.random((14, 4)))
        expected = x.data @ conv.hop_weights[0].data + conv.bias.data
        assert np.allclose(conv(x, slim, index_set).data, expected)

    def test_wrong_input_dim_raises(self, rng, index_set):
        conv = FastGraphConv(input_dim=4, output_dim=3)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 14, 5))), Tensor(rng.random((14, 4))), index_set)

    def test_invalid_diffusion_steps(self):
        with pytest.raises(ValueError):
            FastGraphConv(3, 3, diffusion_steps=0)

    def test_gradients_through_slim_adjacency(self, rng, index_set):
        conv = FastGraphConv(input_dim=3, output_dim=2, diffusion_steps=2, seed=0)
        x = Tensor(rng.normal(size=(1, 14, 3)), requires_grad=True)
        slim = Tensor(rng.random((14, 4)), requires_grad=True)
        assert check_gradients(lambda signal, adjacency: conv(signal, adjacency, index_set),
                               [x, slim], atol=1e-4)

    def test_information_flows_from_significant_neighbours(self, rng):
        """Perturbing a significant neighbour's features changes other nodes' outputs."""
        index_set = np.array([2, 5])
        conv = FastGraphConv(input_dim=3, output_dim=3, diffusion_steps=2, seed=0)
        slim = Tensor(np.abs(rng.random((10, 2))) + 0.5)
        base = rng.normal(size=(1, 10, 3))
        perturbed = base.copy()
        perturbed[0, 2, :] += 10.0  # node 2 is a significant neighbour
        difference = np.abs(conv(Tensor(perturbed), slim, index_set).data
                            - conv(Tensor(base), slim, index_set).data)
        assert difference[0, 7].sum() > 0.0  # node 7 saw the change through the graph

    def test_no_information_flow_from_insignificant_nodes(self, rng):
        """Perturbing a node outside I cannot affect other nodes (only itself)."""
        index_set = np.array([2, 5])
        conv = FastGraphConv(input_dim=3, output_dim=3, diffusion_steps=2, seed=0)
        slim = Tensor(np.abs(rng.random((10, 2))) + 0.5)
        base = rng.normal(size=(1, 10, 3))
        perturbed = base.copy()
        perturbed[0, 7, :] += 10.0  # node 7 is NOT significant
        difference = np.abs(conv(Tensor(perturbed), slim, index_set).data
                            - conv(Tensor(base), slim, index_set).data)
        others = np.delete(np.arange(10), 7)
        assert np.allclose(difference[0, others], 0.0)


class TestOneStepFastGConvCell:
    def test_shapes_and_prediction(self, rng, index_set):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=6, output_dim=1, diffusion_steps=2)
        hidden = cell.initial_state(3, 14)
        assert hidden.shape == (3, 14, 6)
        x = Tensor(rng.normal(size=(3, 14, 2)))
        slim = Tensor(rng.random((14, 4)))
        new_hidden, prediction = cell(x, hidden, slim, index_set)
        assert new_hidden.shape == (3, 14, 6)
        assert prediction.shape == (3, 14, 1)

    def test_hidden_state_is_bounded(self, rng, index_set):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=4, diffusion_steps=2)
        hidden = cell.initial_state(2, 14)
        slim = Tensor(rng.random((14, 4)))
        for _ in range(30):
            hidden, _ = cell(Tensor(rng.normal(size=(2, 14, 2))), hidden, slim, index_set)
        assert np.all(np.abs(hidden.data) <= 1.0 + 1e-9)

    def test_gradients_reach_all_parameters(self, rng, index_set):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=3, diffusion_steps=2)
        hidden = cell.initial_state(1, 14)
        slim = Tensor(rng.random((14, 4)))
        _, prediction = cell(Tensor(rng.normal(size=(1, 14, 2))), hidden, slim, index_set)
        prediction.sum().backward()
        for name, parameter in cell.named_parameters():
            assert parameter.grad is not None, name


class TestNumericalGradients:
    """Finite-difference verification of the gconv/recurrent core.

    ``check_gradients`` perturbs every element of every ``requires_grad``
    input, so the shapes here are deliberately tiny.  The convolution
    parameters are passed as extra inputs: the closures ignore them
    positionally, but perturbing their ``data`` in place changes the layer
    output, so their analytic gradients are verified too.
    """

    def test_fast_graph_conv_slim_path(self, rng):
        conv = FastGraphConv(input_dim=2, output_dim=2, diffusion_steps=3, seed=0)
        index_set = np.array([0, 2, 4])
        x = Tensor(rng.normal(size=(2, 5, 2)), requires_grad=True)
        adjacency = Tensor(rng.random((5, 3)) + 0.1, requires_grad=True)
        assert check_gradients(
            lambda x_, a_, *params: conv(x_, a_, index_set),
            [x, adjacency, *conv.parameters()],
        )

    def test_fast_graph_conv_dense_path(self, rng):
        conv = FastGraphConv(input_dim=2, output_dim=2, diffusion_steps=2, seed=1)
        x = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)
        adjacency = Tensor(rng.random((4, 4)) + 0.1, requires_grad=True)
        assert check_gradients(
            lambda x_, a_, *params: conv(x_, a_),
            [x, adjacency, *conv.parameters()],
        )

    def test_fast_graph_conv_precomputed_degree_scale_matches_default(self, rng):
        conv = FastGraphConv(input_dim=3, output_dim=2, diffusion_steps=2, seed=2)
        index_set = np.array([1, 3])
        x = Tensor(rng.normal(size=(2, 6, 3)))
        adjacency = Tensor(rng.random((6, 2)))
        scale = Tensor(1.0 / (adjacency.data.sum(axis=-1, keepdims=True) + 1.0))
        default = conv(x, adjacency, index_set)
        frozen = conv(x, adjacency, index_set, degree_scale=scale)
        assert np.allclose(default.data, frozen.data)

    def test_one_step_cell_gradients(self, rng):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=2, diffusion_steps=2, seed=3)
        index_set = np.array([0, 3])
        x = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)
        hidden = Tensor(rng.normal(size=(1, 4, 2)), requires_grad=True)
        adjacency = Tensor(rng.random((4, 2)) + 0.1, requires_grad=True)

        def both_outputs(x_, h_, a_, *params):
            new_hidden, prediction = cell(x_, h_, a_, index_set)
            return new_hidden.sum() + prediction.sum()

        assert check_gradients(
            both_outputs, [x, hidden, adjacency, *cell.parameters()]
        )
