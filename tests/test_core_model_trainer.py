"""Tests for the SAGDFN model, its configuration, the encoder-decoder and the trainer."""

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig, SAGDFNEncoderDecoder, Trainer
from repro.core.complexity import (
    complexity_table,
    computation_cost,
    example_memory_comparison,
    hidden_state_memory_gb,
    memory_cost,
)
from repro.optim import Adam
from repro.tensor import Tensor


def _tiny_config(**overrides) -> SAGDFNConfig:
    defaults = dict(
        num_nodes=12,
        input_dim=2,
        output_dim=1,
        history=6,
        horizon=6,
        embedding_dim=6,
        num_significant=4,
        top_k=3,
        hidden_size=8,
        num_heads=2,
        ffn_hidden=6,
        alpha=1.5,
        diffusion_steps=2,
        convergence_iteration=5,
    )
    defaults.update(overrides)
    return SAGDFNConfig(**defaults)


class TestConfig:
    def test_validation_errors(self):
        with pytest.raises(ValueError):
            _tiny_config(num_significant=20)
        with pytest.raises(ValueError):
            _tiny_config(top_k=0)
        with pytest.raises(ValueError):
            _tiny_config(normalizer="rasterize")
        with pytest.raises(ValueError):
            _tiny_config(alpha=0.5)
        with pytest.raises(ValueError):
            _tiny_config(diffusion_steps=0)
        with pytest.raises(ValueError):
            SAGDFNConfig(num_nodes=1)

    def test_paper_setting_matches_implementation_section(self):
        config = SAGDFNConfig.paper_setting(num_nodes=2000)
        assert config.embedding_dim == 100
        assert config.num_significant == 100
        assert config.top_k == 80
        assert config.hidden_size == 64
        assert config.num_heads == 8
        assert config.diffusion_steps == 3
        assert config.alpha == 2.0

    def test_paper_setting_small_graph_caps_m(self):
        config = SAGDFNConfig.paper_setting(num_nodes=50)
        assert config.num_significant == 50
        assert config.top_k == 50


class TestEncoderDecoder:
    def test_forecast_shape(self, rng):
        model = SAGDFNEncoderDecoder(input_dim=2, hidden_dim=8, horizon=5, diffusion_steps=2)
        history = Tensor(rng.normal(size=(3, 7, 10, 2)))
        slim = Tensor(rng.random((10, 4)))
        out = model(history, slim, np.array([0, 2, 5, 8]))
        assert out.shape == (3, 5, 10, 1)

    def test_multi_layer_stack(self, rng):
        model = SAGDFNEncoderDecoder(input_dim=2, hidden_dim=6, horizon=3, num_layers=2)
        history = Tensor(rng.normal(size=(2, 4, 8, 2)))
        slim = Tensor(rng.random((8, 3)))
        assert model(history, slim, np.array([0, 1, 2])).shape == (2, 3, 8, 1)

    def test_rejects_bad_history_rank(self, rng):
        model = SAGDFNEncoderDecoder(input_dim=2, hidden_dim=6, horizon=3)
        with pytest.raises(ValueError):
            model(Tensor(rng.normal(size=(4, 8, 2))), Tensor(rng.random((8, 3))), np.arange(3))

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            SAGDFNEncoderDecoder(input_dim=2, hidden_dim=6, horizon=3, num_layers=0)

    def test_teacher_forcing_uses_targets(self, rng):
        model = SAGDFNEncoderDecoder(input_dim=2, hidden_dim=6, horizon=4, teacher_forcing=1.0)
        history = Tensor(rng.normal(size=(2, 4, 6, 2)))
        slim = Tensor(rng.random((6, 3)))
        targets = Tensor(rng.normal(size=(2, 4, 6, 1)))
        with_tf = model(history, slim, np.arange(3), targets=targets)
        model.eval()
        without_tf = model(history, slim, np.arange(3), targets=targets)
        assert not np.allclose(with_tf.data, without_tf.data)


class TestSAGDFNModel:
    def test_forward_shape(self, rng):
        model = SAGDFN(_tiny_config())
        out = model(Tensor(rng.normal(size=(4, 6, 12, 2))))
        assert out.shape == (4, 6, 12, 1)

    def test_refresh_graph_explores_then_freezes(self, rng):
        config = _tiny_config(convergence_iteration=3)
        model = SAGDFN(config)
        model.refresh_graph(0)
        first = model.index_set.copy()
        model.refresh_graph(1)
        second = model.index_set.copy()
        # after convergence the index set is frozen
        model.refresh_graph(100)
        frozen_a = model.index_set.copy()
        model.refresh_graph(101)
        frozen_b = model.index_set.copy()
        assert np.array_equal(frozen_a, frozen_b)
        assert first.shape == second.shape == (config.num_significant,)

    def test_slim_adjacency_shape(self, rng):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        assert model.slim_adjacency().shape == (12, 4)

    def test_gradients_reach_node_embeddings(self, rng):
        model = SAGDFN(_tiny_config())
        model.refresh_graph(0)
        out = model(Tensor(rng.normal(size=(2, 6, 12, 2))))
        out.abs().mean().backward()
        assert model.node_embeddings.grad is not None
        assert not np.allclose(model.node_embeddings.grad, 0.0)

    def test_without_sns_uses_random_index_set(self, rng):
        model = SAGDFN(_tiny_config(use_sns=False))
        model.refresh_graph(0)
        assert model.index_set is not None
        assert model(Tensor(rng.normal(size=(1, 6, 12, 2)))).shape == (1, 6, 12, 1)

    def test_predefined_graph_ablation_requires_adjacency(self):
        with pytest.raises(ValueError):
            SAGDFN(_tiny_config(use_predefined_graph=True))

    def test_predefined_graph_ablation_forward(self, rng):
        adjacency = rng.random((12, 12))
        model = SAGDFN(_tiny_config(use_predefined_graph=True), predefined_adjacency=adjacency)
        out = model(Tensor(rng.normal(size=(2, 6, 12, 2))))
        assert out.shape == (2, 6, 12, 1)

    def test_parameter_count_scales_with_m_not_n(self):
        """Trainable parameters outside the node embeddings must not depend on N."""
        small = SAGDFN(_tiny_config(num_nodes=12))
        large = SAGDFN(_tiny_config(num_nodes=24))
        small_other = small.num_parameters() - small.node_embeddings.size
        large_other = large.num_parameters() - large.node_embeddings.size
        assert small_other == large_other


class TestTrainer:
    def test_loss_decreases_and_history_recorded(self, tiny_experiment_data):
        data = tiny_experiment_data
        config = _tiny_config(num_nodes=data.num_nodes, history=data.history,
                              horizon=data.horizon)
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        history = trainer.fit(data.train_loader, data.val_loader, epochs=2)
        assert history.num_epochs == 2
        assert len(history.val_maes) == 2
        assert history.train_losses[-1] < history.train_losses[0]
        assert all(second > 0 for second in history.epoch_seconds)

    def test_evaluate_returns_all_metrics(self, tiny_experiment_data):
        data = tiny_experiment_data
        config = _tiny_config(num_nodes=data.num_nodes, history=data.history, horizon=data.horizon)
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        metrics = trainer.evaluate(data.val_loader)
        assert set(metrics) == {"mae", "rmse", "mape"}
        assert metrics["rmse"] >= metrics["mae"] > 0

    def test_early_stopping_restores_best_state(self, tiny_experiment_data):
        data = tiny_experiment_data
        config = _tiny_config(num_nodes=data.num_nodes, history=data.history, horizon=data.horizon)
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        history = trainer.fit(data.train_loader, data.val_loader, epochs=3, patience=0)
        best = min(history.val_maes)
        final_metrics = trainer.evaluate(data.val_loader)
        assert final_metrics["mae"] == pytest.approx(best, rel=0.05)

    def test_callback_invoked_each_epoch(self, tiny_experiment_data):
        data = tiny_experiment_data
        config = _tiny_config(num_nodes=data.num_nodes, history=data.history, horizon=data.horizon)
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        calls = []
        trainer.fit(data.train_loader, data.val_loader, epochs=2,
                    callback=lambda epoch, loss, val: calls.append((epoch, loss, val)))
        assert [call[0] for call in calls] == [0, 1]
        assert all(call[2] is not None for call in calls)


class TestComplexityModel:
    def test_table1_expressions(self):
        n, d, D, m = 1000, 100, 64, 100
        assert computation_cost("AGCRN", n, d, D, m) == n * n * d + n * n * D
        assert computation_cost("GTS", n, d, D, m) == n * n * d * d + n * n * D
        assert computation_cost("SAGDFN", n, d, D, m) == n * m * d * d + n * m * D
        assert memory_cost("SAGDFN", n, d, D, m) == n * m + n * m * d
        assert memory_cost("GTS", n, d, D, m) == n * n + n * n * d

    def test_sagdfn_reduction_factor_is_n_over_m(self):
        n, m = 2000, 100
        table = {p.model: p for p in complexity_table(n, 100, 64, m)}
        assert table["GTS"].memory / table["SAGDFN"].memory == pytest.approx(n / m)

    def test_sagdfn_scales_linearly_with_n(self):
        small = computation_cost("SAGDFN", 1000, 100, 64, 100)
        large = computation_cost("SAGDFN", 2000, 100, 64, 100)
        assert large / small == pytest.approx(2.0)
        quadratic_small = computation_cost("GTS", 1000, 100, 64, 100)
        quadratic_large = computation_cost("GTS", 2000, 100, 64, 100)
        assert quadratic_large / quadratic_small == pytest.approx(4.0)

    def test_example1_hidden_state_memory(self):
        """Example 1: B=64, N=2000, T=24, D=64 at 8 bytes ≈ 1.57 GB per variable."""
        assert hidden_state_memory_gb(64, 2000, 24, 64) == pytest.approx(1.46, abs=0.15)

    def test_example2_reduction(self):
        comparison = example_memory_comparison()
        assert comparison["gts_hidden_state_gb"] / comparison["sagdfn_hidden_state_gb"] == (
            pytest.approx(20.0)
        )
        assert comparison["gts_embedding_gb"] / comparison["sagdfn_embedding_gb"] == (
            pytest.approx(20.0)
        )

    def test_unknown_model_and_invalid_inputs(self):
        with pytest.raises(KeyError):
            computation_cost("UNKNOWN", 10, 10, 10, 10)
        with pytest.raises(ValueError):
            memory_cost("GTS", 0, 10, 10, 10)
