"""Tests for the Significant Neighbors Sampling module (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SignificantNeighborsSampling


class TestCandidateConstruction:
    def test_candidate_matrix_shape_and_range(self):
        sampler = SignificantNeighborsSampling(num_nodes=20, num_significant=6, top_k=4, seed=0)
        assert sampler.candidates.shape == (20, 6)
        assert sampler.candidates.min() >= 0
        assert sampler.candidates.max() < 20

    def test_candidates_unique_within_each_row(self):
        sampler = SignificantNeighborsSampling(num_nodes=30, num_significant=10, top_k=5, seed=1)
        for row in sampler.candidates:
            assert len(set(row.tolist())) == 10

    def test_candidates_exclude_self_when_possible(self):
        sampler = SignificantNeighborsSampling(num_nodes=25, num_significant=8, top_k=4, seed=2)
        for node, row in enumerate(sampler.candidates):
            assert node not in row

    def test_every_node_appears_as_candidate(self):
        """Amortised coverage: with M·N candidate slots, every node should be considered."""
        sampler = SignificantNeighborsSampling(num_nodes=15, num_significant=8, top_k=4, seed=3)
        assert set(sampler.candidates.reshape(-1).tolist()) == set(range(15))

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            SignificantNeighborsSampling(num_nodes=5, num_significant=6, top_k=3)
        with pytest.raises(ValueError):
            SignificantNeighborsSampling(num_nodes=10, num_significant=5, top_k=0)
        with pytest.raises(ValueError):
            SignificantNeighborsSampling(num_nodes=10, num_significant=5, top_k=6)


class TestSampling:
    def test_index_set_size_and_uniqueness(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=40, num_significant=12, top_k=8, seed=0)
        embeddings = rng.normal(size=(40, 6))
        index_set = sampler.sample(embeddings)
        assert index_set.shape == (12,)
        assert len(set(index_set.tolist())) == 12
        assert index_set.min() >= 0 and index_set.max() < 40

    def test_wrong_embedding_rows_raise(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=10, num_significant=4, top_k=2)
        with pytest.raises(ValueError):
            sampler.sample(rng.normal(size=(11, 4)))

    def test_globally_central_nodes_are_selected(self):
        """Nodes whose embeddings sit at the population centre are close to almost
        everyone, so Algorithm 1 should pick most of them into the index set.
        Averaged over seeds, at least ~3 of the 4 planted central nodes are found."""
        hits = []
        for seed in range(5):
            seeded_rng = np.random.default_rng(seed)
            num_nodes, num_significant, top_k = 40, 16, 12
            embeddings = seeded_rng.normal(size=(num_nodes, 4)) * 5.0
            central = [3, 17, 29, 33]
            embeddings[central] = seeded_rng.normal(size=(len(central), 4)) * 0.01
            sampler = SignificantNeighborsSampling(num_nodes, num_significant, top_k, seed=seed)
            index_set = sampler.sample(embeddings, explore=False)
            hits.append(len(set(central) & set(index_set.tolist())))
        assert np.mean(hits) >= 3.0

    def test_explore_fills_tail_with_random_nodes(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=50, num_significant=10, top_k=6, seed=0)
        embeddings = rng.normal(size=(50, 5))
        first = sampler.sample(embeddings, explore=True)
        second = sampler.sample(embeddings, explore=True)
        # the top-K head is deterministic given the embeddings, the tail explores
        assert np.array_equal(first[:6], second[:6])
        assert not np.array_equal(first[6:], second[6:])

    def test_no_explore_is_deterministic(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=50, num_significant=10, top_k=6, seed=0)
        embeddings = rng.normal(size=(50, 5))
        assert np.array_equal(sampler.sample(embeddings, explore=False),
                              sampler.sample(embeddings, explore=False))

    def test_last_index_set_tracking(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=20, num_significant=5, top_k=3, seed=0)
        assert sampler.last_index_set is None
        index_set = sampler.sample(rng.normal(size=(20, 3)))
        assert np.array_equal(sampler.last_index_set, index_set)

    def test_random_index_set_for_ablation(self):
        sampler = SignificantNeighborsSampling(num_nodes=30, num_significant=10, top_k=5, seed=0)
        random_set = sampler.random_index_set()
        assert random_set.shape == (10,)
        assert len(set(random_set.tolist())) == 10

    def test_top_k_equals_m_uses_no_exploration(self, rng):
        sampler = SignificantNeighborsSampling(num_nodes=20, num_significant=6, top_k=6, seed=0)
        embeddings = rng.normal(size=(20, 4))
        assert np.array_equal(sampler.sample(embeddings, explore=True),
                              sampler.sample(embeddings, explore=True))


class TestSparseVotePadding:
    """Regression for the low-node-id padding bias.

    When the candidate rows overlap so much that fewer than ``M`` distinct
    ids receive any top-K vote, the old implementation padded the index set
    with zero-count ids in *node-id order* (the stable argsort tiebreak) —
    nodes 0, 1, 2… were systematically promoted to "significant".  The tail
    must come from the exploration pool instead.
    """

    def _sparse_vote_sampler(self, seed=0):
        # Nearly all rows share the same 6 candidates, and ids 28/29 sit so
        # far out (in opposite directions) that every row's top-4 votes go to
        # {10, 11, 12, 13} only — 28/29's own rows avoid self-candidates and
        # get a sixth candidate placed farther away than the central four.
        num_nodes, m, top_k = 30, 6, 4
        sampler = SignificantNeighborsSampling(num_nodes, m, top_k, seed=seed)
        candidates = np.tile(np.array([10, 11, 12, 13, 28, 29]), (num_nodes, 1))
        candidates[28] = [10, 11, 12, 13, 29, 9]
        candidates[29] = [10, 11, 12, 13, 28, 8]
        sampler.candidates = candidates
        embeddings = np.random.default_rng(1).normal(size=(num_nodes, 3))
        embeddings[[10, 11, 12, 13]] *= 0.01
        embeddings[28] = [1e9, 0.0, 0.0]
        embeddings[29] = [-1e9, 0.0, 0.0]
        embeddings[9] = [-10.0, 0.0, 0.0]
        embeddings[8] = [10.0, 0.0, 0.0]
        return sampler, embeddings

    def test_voted_ids_fill_the_significant_head(self):
        sampler, embeddings = self._sparse_vote_sampler()
        index_set = sampler.sample(embeddings, explore=False)
        assert set(index_set[:4].tolist()) == {10, 11, 12, 13}
        assert index_set.shape == (6,)
        assert len(np.unique(index_set)) == 6

    def test_deficit_not_padded_with_low_ids(self):
        """The old code always padded the tail with nodes [0, 1]; the fixed
        exploration-pool draw must vary across sampler seeds."""
        fillers = set()
        for seed in range(10):
            sampler, embeddings = self._sparse_vote_sampler(seed=seed)
            index_set = sampler.sample(embeddings, explore=False)
            fillers.update(index_set[4:].tolist())
        assert not fillers <= {0, 1}
        assert len(fillers) > 4

    def test_deficit_padding_is_deterministic(self):
        sampler, embeddings = self._sparse_vote_sampler()
        first = sampler.sample(embeddings, explore=False)
        second = sampler.sample(embeddings, explore=False)
        assert np.array_equal(first, second)

    def test_explore_deficit_draws_from_pool(self):
        sampler, embeddings = self._sparse_vote_sampler()
        index_set = sampler.sample(embeddings, explore=True)
        assert set(index_set[:4].tolist()) == {10, 11, 12, 13}
        assert len(np.unique(index_set)) == 6


@settings(max_examples=20, deadline=None)
@given(st.integers(8, 30), st.integers(2, 8), st.integers(0, 50))
def test_property_index_set_is_valid_subset(num_nodes, num_significant, seed):
    num_significant = min(num_significant, num_nodes)
    top_k = max(1, num_significant - 1)
    sampler = SignificantNeighborsSampling(num_nodes, num_significant, top_k, seed=seed)
    embeddings = np.random.default_rng(seed).normal(size=(num_nodes, 3))
    index_set = sampler.sample(embeddings)
    assert index_set.shape == (num_significant,)
    assert len(np.unique(index_set)) == num_significant
    assert index_set.min() >= 0 and index_set.max() < num_nodes


@settings(max_examples=25, deadline=None)
@given(
    st.integers(8, 40),
    st.integers(2, 10),
    st.integers(0, 50),
    st.integers(1, 13),
    st.booleans(),
)
def test_property_sample_valid_and_chunk_invariant(num_nodes, num_significant, seed,
                                                   chunk, explore):
    """`sample` always yields M distinct in-range ids; explore=False is
    deterministic; and any chunk size reproduces the unchunked result."""
    num_significant = min(num_significant, num_nodes)
    top_k = max(1, num_significant - 1)
    embeddings = np.random.default_rng(seed).normal(size=(num_nodes, 4))
    plain = SignificantNeighborsSampling(num_nodes, num_significant, top_k, seed=seed)
    chunked = SignificantNeighborsSampling(num_nodes, num_significant, top_k, seed=seed,
                                           chunk_size=chunk)
    index_set = plain.sample(embeddings, explore=explore)
    assert index_set.shape == (num_significant,)
    assert len(np.unique(index_set)) == num_significant
    assert index_set.min() >= 0 and index_set.max() < num_nodes
    assert np.array_equal(index_set, chunked.sample(embeddings, explore=explore))
    if not explore:
        assert np.array_equal(index_set, plain.sample(embeddings, explore=False))
