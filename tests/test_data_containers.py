"""Tests for MultivariateTimeSeries, scalers, windows, loaders and splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DataLoader,
    MinMaxScaler,
    MultivariateTimeSeries,
    SlidingWindowDataset,
    SplitRatios,
    StandardScaler,
    chronological_split,
)


@pytest.fixture
def series(rng):
    values = rng.normal(loc=50.0, scale=10.0, size=(200, 5, 1))
    return MultivariateTimeSeries(values, step_minutes=5, name="test")


class TestMultivariateTimeSeries:
    def test_shape_accessors(self, series):
        assert series.num_steps == 200
        assert series.num_nodes == 5
        assert series.num_channels == 1
        assert len(series) == 200

    def test_2d_input_promoted_to_3d(self, rng):
        series = MultivariateTimeSeries(rng.normal(size=(10, 3)))
        assert series.values.shape == (10, 3, 1)

    def test_invalid_shape_raises(self, rng):
        with pytest.raises(ValueError):
            MultivariateTimeSeries(rng.normal(size=(10,)))

    def test_node_ids_default_and_mismatch(self, rng):
        series = MultivariateTimeSeries(rng.normal(size=(5, 3, 1)))
        assert series.node_ids == ["node_0", "node_1", "node_2"]
        with pytest.raises(ValueError):
            MultivariateTimeSeries(rng.normal(size=(5, 3, 1)), node_ids=["a"])

    def test_minute_of_day_wraps(self):
        series = MultivariateTimeSeries(np.zeros((300, 2, 1)), step_minutes=5)
        minutes = series.minute_of_day()
        assert minutes.max() < 24 * 60
        assert minutes[0] == 0
        assert minutes[288] == 0  # one full day of 5-minute steps

    def test_day_of_week_increments(self):
        series = MultivariateTimeSeries(np.zeros((2 * 288, 2, 1)), step_minutes=5)
        days = series.day_of_week()
        assert days[0] == 0 and days[-1] == 1

    def test_time_covariates_channel_count_and_range(self, series):
        augmented = series.with_time_covariates(include_day_of_week=True)
        assert augmented.num_channels == 3
        assert augmented.values[..., 1].max() < 1.0
        assert augmented.values[..., 2].max() < 1.0
        # original channel untouched
        assert np.allclose(augmented.values[..., 0], series.values[..., 0])

    def test_slice_steps_adjusts_start_minute(self, series):
        sliced = series.slice_steps(10, 60)
        assert sliced.num_steps == 50
        assert sliced.start_minute == 10 * 5

    def test_select_nodes_subsets_adjacency(self, rng):
        adjacency = rng.random((5, 5))
        series = MultivariateTimeSeries(rng.normal(size=(20, 5, 1)), adjacency=adjacency)
        subset = series.select_nodes([0, 3])
        assert subset.num_nodes == 2
        assert np.allclose(subset.adjacency, adjacency[np.ix_([0, 3], [0, 3])])
        assert subset.node_ids == ["node_0", "node_3"]


class TestScalers:
    def test_standard_scaler_roundtrip(self, rng):
        values = rng.normal(loc=30, scale=7, size=(50, 4))
        scaler = StandardScaler().fit(values)
        transformed = scaler.transform(values)
        assert abs(transformed.mean()) < 1e-9
        assert np.allclose(scaler.inverse_transform(transformed), values)

    def test_standard_scaler_constant_input(self):
        scaler = StandardScaler().fit(np.full((10, 2), 3.0))
        assert scaler.std_ == 1.0
        assert np.allclose(scaler.transform(np.full((2, 2), 3.0)), 0.0)

    def test_standard_scaler_unfit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones(3))

    def test_minmax_scaler_range_and_roundtrip(self, rng):
        values = rng.normal(size=(40, 3)) * 5
        scaler = MinMaxScaler().fit(values)
        transformed = scaler.transform(values)
        assert transformed.min() >= 0.0 and transformed.max() <= 1.0
        assert np.allclose(scaler.inverse_transform(transformed), values)

    def test_minmax_scaler_constant_input(self):
        scaler = MinMaxScaler().fit(np.full((5, 2), 7.0))
        assert np.allclose(scaler.transform(np.full((3, 2), 7.0)), 0.0)

    def test_fit_transform_shortcut(self, rng):
        values = rng.normal(size=(20, 2))
        assert np.allclose(StandardScaler().fit_transform(values),
                           StandardScaler().fit(values).transform(values))


class TestSlidingWindows:
    def test_sample_shapes_and_count(self, series):
        dataset = SlidingWindowDataset(series, history=12, horizon=6)
        assert len(dataset) == 200 - 12 - 6 + 1
        x, y = dataset[0]
        assert x.shape == (12, 5, 1)
        assert y.shape == (6, 5, 1)

    def test_windows_are_consecutive(self, series):
        dataset = SlidingWindowDataset(series, history=3, horizon=2)
        x, y = dataset[10]
        assert np.allclose(x, series.values[10:13])
        assert np.allclose(y, series.values[13:15, :, :1])

    def test_separate_target_series(self, series, rng):
        scaled = MultivariateTimeSeries(series.values * 0.0, step_minutes=5)
        dataset = SlidingWindowDataset(scaled, history=4, horizon=2, target_series=series)
        x, y = dataset[5]
        assert np.allclose(x, 0.0)
        assert np.allclose(y, series.values[9:11, :, :1])

    def test_out_of_range_index(self, series):
        dataset = SlidingWindowDataset(series, history=4, horizon=2)
        with pytest.raises(IndexError):
            dataset[len(dataset)]

    def test_too_short_series_raises(self, rng):
        short = MultivariateTimeSeries(rng.normal(size=(5, 2, 1)))
        with pytest.raises(ValueError):
            SlidingWindowDataset(short, history=4, horizon=3)

    def test_arrays_materialisation(self, series):
        dataset = SlidingWindowDataset(series, history=4, horizon=2)
        xs, ys = dataset.arrays()
        assert xs.shape == (len(dataset), 4, 5, 1)
        assert ys.shape == (len(dataset), 2, 5, 1)

    def test_batch_matches_per_item_gather_exactly(self, series, rng):
        dataset = SlidingWindowDataset(series, history=7, horizon=3)
        indices = rng.permutation(len(dataset))[:25]
        x_batch, y_batch = dataset.batch(indices)
        x_items, y_items = zip(*(dataset[int(i)] for i in indices))
        assert np.array_equal(x_batch, np.stack(x_items))
        assert np.array_equal(y_batch, np.stack(y_items))

    def test_batch_with_separate_target_series(self, series):
        scaled = MultivariateTimeSeries(series.values * 2.0, step_minutes=5)
        dataset = SlidingWindowDataset(scaled, history=4, horizon=2, target_series=series)
        x, y = dataset.batch(np.array([0, 3, 9]))
        assert np.array_equal(x, np.stack([dataset[i][0] for i in (0, 3, 9)]))
        assert np.array_equal(y, np.stack([dataset[i][1] for i in (0, 3, 9)]))

    def test_batch_rejects_bad_indices(self, series):
        dataset = SlidingWindowDataset(series, history=4, horizon=2)
        with pytest.raises(IndexError):
            dataset.batch(np.array([0, len(dataset)]))
        with pytest.raises(IndexError):
            dataset.batch(np.array([-1]))
        with pytest.raises(ValueError):
            dataset.batch(np.array([[0, 1]]))

    def test_batch_empty_indices(self, series):
        dataset = SlidingWindowDataset(series, history=4, horizon=2)
        x, y = dataset.batch(np.array([], dtype=np.int64))
        assert x.shape == (0, 4, 5, 1)
        assert y.shape == (0, 2, 5, 1)


class TestDataLoader:
    def test_batch_shapes_and_count(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        loader = DataLoader(dataset, batch_size=16)
        batches = list(loader)
        assert len(batches) == len(loader)
        assert batches[0][0].shape == (16, 6, 5, 1)
        total = sum(batch[0].shape[0] for batch in batches)
        assert total == len(dataset)

    def test_drop_last(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        loader = DataLoader(dataset, batch_size=16, drop_last=True)
        assert all(batch[0].shape[0] == 16 for batch in loader)

    def test_shuffle_changes_order_but_not_content(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        plain = np.concatenate([x for x, _ in DataLoader(dataset, batch_size=32)])
        shuffled = np.concatenate([x for x, _ in DataLoader(dataset, batch_size=32, shuffle=True,
                                                            seed=1)])
        assert not np.allclose(plain, shuffled)
        assert np.allclose(np.sort(plain.reshape(plain.shape[0], -1), axis=0),
                           np.sort(shuffled.reshape(shuffled.shape[0], -1), axis=0))

    def test_shuffle_reproducible_given_seed(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        first = np.concatenate([x for x, _ in DataLoader(dataset, batch_size=8, shuffle=True, seed=5)])
        second = np.concatenate([x for x, _ in DataLoader(dataset, batch_size=8, shuffle=True, seed=5)])
        # each DataLoader has its own RNG seeded identically, but successive epochs differ
        assert first.shape == second.shape

    def test_invalid_batch_size(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)

    def test_loader_batches_match_per_item_path(self, series):
        dataset = SlidingWindowDataset(series, history=6, horizon=3)
        for shuffle in (False, True):
            for x, y in DataLoader(dataset, batch_size=13, shuffle=shuffle, seed=3):
                # recover each sample from the dataset and compare exactly
                for row in range(x.shape[0]):
                    matches = [
                        i for i in range(len(dataset))
                        if np.array_equal(dataset[i][0], x[row])
                        and np.array_equal(dataset[i][1], y[row])
                    ]
                    assert matches, "loader produced a batch row not found in the dataset"


class TestSplits:
    def test_default_ratios_are_paper_ratios(self):
        ratios = SplitRatios()
        assert (ratios.train, ratios.val, ratios.test) == (0.7, 0.1, 0.2)

    def test_invalid_ratios_raise(self):
        with pytest.raises(ValueError):
            SplitRatios(0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            SplitRatios(1.0, 0.0, 0.0)

    def test_split_sizes_and_continuity(self, series):
        train, val, test = chronological_split(series)
        assert train.num_steps + val.num_steps + test.num_steps == series.num_steps
        assert train.num_steps == pytest.approx(140, abs=2)
        # continuity: the first test value follows the last val value in the original series
        assert np.allclose(test.values[0], series.values[train.num_steps + val.num_steps])

    def test_split_preserves_order(self, series):
        train, _, _ = chronological_split(series)
        assert np.allclose(train.values, series.values[: train.num_steps])


@settings(max_examples=25, deadline=None)
@given(st.integers(30, 120), st.integers(1, 8), st.integers(1, 6), st.integers(1, 6))
def test_property_window_count_formula(num_steps, num_nodes, history, horizon):
    values = np.zeros((num_steps, num_nodes, 1))
    series = MultivariateTimeSeries(values)
    dataset = SlidingWindowDataset(series, history=history, horizon=horizon)
    assert len(dataset) == num_steps - history - horizon + 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_property_scaler_inverse_is_identity(seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(loc=rng.uniform(-50, 50), scale=rng.uniform(0.1, 20), size=(30, 3))
    scaler = StandardScaler().fit(values)
    assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values, atol=1e-9)
