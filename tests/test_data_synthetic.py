"""Tests for the synthetic road-network, traffic and car-park generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    DATASET_REGISTRY,
    CarparkConfig,
    TrafficConfig,
    generate_carpark_dataset,
    generate_road_network,
    generate_traffic_dataset,
    load_dataset,
)
from repro.graph import row_normalize


class TestRoadNetwork:
    def test_shapes_and_symmetry(self, tiny_network):
        network = tiny_network
        assert network.positions.shape == (12, 2)
        assert network.distances.shape == (12, 12)
        assert network.adjacency.shape == (12, 12)
        assert np.allclose(network.adjacency, network.adjacency.T)
        assert np.allclose(np.diag(network.adjacency), 0.0)

    def test_every_node_has_neighbours(self, tiny_network):
        assert np.all((tiny_network.adjacency > 0).sum(axis=1) >= 3)

    def test_determinism(self):
        a = generate_road_network(10, seed=3)
        b = generate_road_network(10, seed=3)
        assert np.allclose(a.positions, b.positions)
        assert np.allclose(a.adjacency, b.adjacency)

    def test_different_seeds_differ(self):
        a = generate_road_network(10, seed=1)
        b = generate_road_network(10, seed=2)
        assert not np.allclose(a.positions, b.positions)

    def test_too_few_nodes_raises(self):
        with pytest.raises(ValueError):
            generate_road_network(1)

    def test_networkx_graph_matches_adjacency(self, tiny_network):
        assert tiny_network.graph.number_of_nodes() == 12
        for u, v in tiny_network.graph.edges():
            assert tiny_network.adjacency[u, v] > 0


class TestTrafficGenerator:
    def test_shape_and_metadata(self, tiny_traffic_series):
        series = tiny_traffic_series
        assert series.values.shape == (400, 12, 1)
        assert series.step_minutes == 5
        assert series.adjacency is not None

    def test_speeds_are_physical(self, tiny_traffic_series):
        values = tiny_traffic_series.values[..., 0]
        assert values.min() >= 0.0
        assert values.max() < 120.0

    def test_missing_values_fraction(self):
        config = TrafficConfig(num_nodes=20, num_steps=600, missing_rate=0.05, seed=0)
        series = generate_traffic_dataset(config)
        zero_fraction = (series.values == 0).mean()
        assert 0.02 < zero_fraction < 0.12

    def test_rush_hour_dip(self):
        """Average weekday speed at 8am is lower than at 3am."""
        config = TrafficConfig(num_nodes=15, num_steps=288 * 4, seed=1, missing_rate=0.0)
        series = generate_traffic_dataset(config)
        minutes = series.minute_of_day()
        rush = series.values[(minutes >= 7 * 60) & (minutes <= 9 * 60)].mean()
        calm = series.values[(minutes >= 2 * 60) & (minutes <= 4 * 60)].mean()
        assert rush < calm

    def test_spatial_correlation_is_local(self):
        """After removing the shared daily pattern, neighbours correlate more than strangers."""
        config = TrafficConfig(num_nodes=30, num_steps=900, seed=3, missing_rate=0.0)
        network = generate_road_network(30, seed=3)
        series = generate_traffic_dataset(config, network)
        values = series.values[..., 0]
        residual = values - values.mean(axis=1, keepdims=True)
        correlation = np.corrcoef(residual.T)
        neighbour_mask = network.adjacency > 0
        np.fill_diagonal(neighbour_mask, False)
        stranger_mask = ~(network.adjacency > 0)
        np.fill_diagonal(stranger_mask, False)
        assert correlation[neighbour_mask].mean() > correlation[stranger_mask].mean() + 0.05

    def test_determinism(self):
        config = TrafficConfig(num_nodes=10, num_steps=200, seed=5)
        assert np.allclose(generate_traffic_dataset(config).values,
                           generate_traffic_dataset(config).values)

    def test_network_size_mismatch_raises(self):
        config = TrafficConfig(num_nodes=10, num_steps=100)
        with pytest.raises(ValueError):
            generate_traffic_dataset(config, generate_road_network(12))


class TestCarparkGenerator:
    def test_counts_within_capacity(self, tiny_carpark_series):
        values = tiny_carpark_series.values[..., 0]
        assert values.min() >= 0.0
        assert np.allclose(values, np.round(values))

    def test_business_daily_cycle(self):
        """Across all car parks, availability is lower mid-day than early morning on average
        for business-dominated configurations."""
        config = CarparkConfig(num_nodes=30, num_steps=288 * 3, business_fraction=1.0, seed=2)
        series = generate_carpark_dataset(config)
        minutes = series.minute_of_day()
        midday = series.values[(minutes >= 12 * 60) & (minutes <= 15 * 60)].mean()
        early = series.values[(minutes >= 3 * 60) & (minutes <= 5 * 60)].mean()
        assert midday < early

    def test_determinism(self):
        config = CarparkConfig(num_nodes=8, num_steps=150, seed=9)
        assert np.allclose(generate_carpark_dataset(config).values,
                           generate_carpark_dataset(config).values)


class TestRegistry:
    def test_registry_matches_table2(self):
        assert DATASET_REGISTRY["metr_la_like"].num_nodes == 207
        assert DATASET_REGISTRY["london2000_like"].num_nodes == 2000
        assert DATASET_REGISTRY["newyork2000_like"].num_nodes == 2000
        assert DATASET_REGISTRY["carpark1918_like"].num_nodes == 1918
        assert DATASET_REGISTRY["carpark1918_like"].history == 24
        assert DATASET_REGISTRY["metr_la_like"].history == 12

    def test_load_dataset_overrides(self):
        series, spec = load_dataset("metr_la_like", num_nodes=15, num_steps=120)
        assert series.num_nodes == 15
        assert series.num_steps == 120
        assert spec.num_nodes == 15

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not_a_dataset")

    def test_london_and_newyork_differ(self):
        london, _ = load_dataset("london2000_like", num_nodes=20, num_steps=100)
        newyork, _ = load_dataset("newyork2000_like", num_nodes=20, num_steps=100)
        assert not np.allclose(london.values, newyork.values)

    def test_load_dataset_deterministic(self):
        first, _ = load_dataset("metr_la_like", num_nodes=10, num_steps=80, seed=4)
        second, _ = load_dataset("metr_la_like", num_nodes=10, num_steps=80, seed=4)
        assert np.allclose(first.values, second.values)
