"""Smoke tests for the experiment drivers at miniature scale.

These tests verify the *plumbing* of every table/figure driver (correct rows,
OOM markers, returned structure); the benchmark suite under ``benchmarks/``
runs the same drivers at a larger scale and checks the qualitative shape of
the paper's results.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, prepare_data, run_experiment
from repro.experiments.common import run_classical_baseline, run_neural_baseline, train_sagdfn
from repro.experiments.large_datasets import PAPER_SCALE_NODES, run_large_dataset_table
from repro.experiments.table8_ablation import ABLATION_VARIANTS, run_table8
from repro.experiments.table9_non_gnn import run_table9
from repro.experiments.table10_cost import run_table10
from repro.experiments.fig3_sensitivity import run_fig3
from repro.experiments.fig4_visualization import run_fig4

TINY = dict(num_nodes=14, num_steps=260, epochs=1, batch_size=16)


class TestCommonHelpers:
    def test_prepare_data_structure(self):
        data = prepare_data("metr_la_like", num_nodes=10, num_steps=200, batch_size=8)
        assert data.num_nodes == 10
        assert data.input_dim == 2
        assert data.steps_per_day == 288
        assert data.train.num_steps > data.val.num_steps
        assert data.adjacency.shape == (10, 10)
        batch_x, batch_y = next(iter(data.train_loader))
        assert batch_x.shape[2] == 10 and batch_x.shape[3] == 2
        assert batch_y.shape[3] == 1

    def test_train_sagdfn_and_baselines_return_horizon_metrics(self):
        data = prepare_data("metr_la_like", num_nodes=10, num_steps=220, batch_size=16)
        _, metrics = train_sagdfn(data, epochs=1)
        assert [entry.horizon for entry in metrics] == [3, 6, 12]
        classical = run_classical_baseline("ARIMA", data)
        assert len(classical) == 3
        neural = run_neural_baseline("LSTM", data, epochs=1)
        assert all(np.isfinite(entry.mae) for entry in neural)


class TestRunner:
    def test_registry_contains_every_table_and_figure(self):
        expected = {"table1", "table3", "table4", "table5", "table6", "table7", "table8",
                    "table9", "table10", "fig2", "fig3", "fig4"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestTable1:
    def test_reduction_factors(self):
        result = run_experiment("table1")
        assert result["reduction_vs_gts"]["memory"] == pytest.approx(20.0)
        assert result["reduction_vs_gts"]["computation"] == pytest.approx(20.0, rel=0.05)
        models = {profile.model for profile in result["profiles"]}
        assert models == {"AGCRN", "GTS", "STEP", "SAGDFN"}


class TestTable3:
    def test_rows_and_metrics(self):
        table = run_experiment("table3", models=("ARIMA",), **TINY)
        assert set(table.rows) == {"ARIMA", "SAGDFN"}
        assert table.get("SAGDFN", 3).mae > 0

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            run_experiment("table3", models=("NotAModel",), **TINY)


class TestLargeDatasetTables:
    def test_oom_rows_follow_memory_model(self):
        table = run_large_dataset_table(
            "london2000_like", models=("LSTM", "GTS", "AGCRN"), **TINY
        )
        assert table.rows["GTS"] is None  # OOM at paper scale
        assert table.rows["AGCRN"] is None
        assert table.rows["LSTM"] is not None
        assert table.rows["SAGDFN"] is not None

    def test_paper_scale_registry(self):
        assert PAPER_SCALE_NODES["carpark1918_like"] == 1918
        assert PAPER_SCALE_NODES["london2000_like"] == 2000

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            run_large_dataset_table("tiny_dataset", **TINY)

    def test_carpark_uses_history_24(self):
        table = run_large_dataset_table("carpark1918_like", models=("ARIMA",), num_nodes=12,
                                        num_steps=300, epochs=1, batch_size=16)
        assert "carpark" in table.title
        assert table.get("SAGDFN", 12) is not None


class TestAblationTable8:
    def test_all_variants_present(self):
        table = run_table8(num_nodes=12, num_steps=260, epochs=1, batch_size=16)
        assert set(table.rows) == set(ABLATION_VARIANTS)

    def test_subset_of_variants(self):
        table = run_table8(variants=("SAGDFN", "w/o Entmax"), num_nodes=12, num_steps=260,
                           epochs=1, batch_size=16)
        assert set(table.rows) == {"SAGDFN", "w/o Entmax"}

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            run_table8(variants=("w/o Everything",), num_nodes=12, num_steps=260)


class TestTable9:
    def test_structure(self):
        tables = run_table9(datasets=("metr_la_like",), models=("FEDformer",), num_nodes=12,
                            num_steps=260, epochs=1, batch_size=16)
        assert set(tables) == {"metr_la_like"}
        assert set(tables["metr_la_like"].rows) == {"FEDformer", "SAGDFN"}


class TestTable10:
    def test_cost_reports(self):
        reports = run_table10(models=("DCRNN",), num_nodes=12, num_steps=260, batch_size=16,
                              max_batches=1)
        names = [report.model for report in reports]
        assert names == ["DCRNN", "SAGDFN"]
        assert all(report.num_parameters > 0 for report in reports)
        sagdfn = reports[-1]
        dcrnn = reports[0]
        assert sagdfn.train_seconds_per_epoch > 0
        assert dcrnn.train_seconds_per_epoch > 0


class TestFigures:
    def test_fig3_sweeps(self):
        result = run_fig3(alphas=(1.0, 2.0), head_counts=(1,), m_values=(4,),
                          num_nodes=12, num_steps=260, epochs=1, batch_size=16)
        assert set(result) == {"alpha", "heads", "m"}
        assert set(result["alpha"]) == {1.0, 2.0}
        assert all(value > 0 for value in result["alpha"].values())

    def test_fig4_visualisation_series(self):
        result = run_fig4(datasets=("metr_la_like",), sensors=(0,), num_nodes=12,
                          num_steps=300, epochs=1, batch_size=16)
        series = result["metr_la_like"]["sensors"][0]
        assert series["ground_truth"].shape == series["prediction"].shape
        assert series["ground_truth"].ndim == 1
        assert np.isfinite(series["mae"])

    def test_fig2_rejects_m_not_smaller_than_n(self):
        with pytest.raises(ValueError):
            run_experiment("fig2", m_values=(20,), num_nodes=12, num_steps=260)
