"""Fault-tolerance tests: supervision, admission control, fault injection.

Three layers of guarantees:

* **Determinism of the harness** — a :class:`FaultPlan` is a pure function
  of its seed, so two runs inject byte-identical failure sequences.
* **Admission control** — deadlines shed queued work *before* the kernel
  runs, and the pending watermark rejects with a typed
  :class:`Overloaded`; neither path may ever hang a Future.
* **Supervised recovery** — a seeded chaos soak SIGKILLs every worker at
  least once during a concurrent burst: every future must resolve with a
  result or a typed error, surviving batch-1 results must stay
  bit-identical to a single-process service, and the supervisor must
  respawn the pool to full strength (with a circuit breaker parking
  crash-looping slots instead of spinning forever).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.serve import (
    ClusterError,
    DeadlineExceeded,
    FaultPlan,
    ForecastService,
    MicroBatcher,
    Overloaded,
    RingCorruptionError,
    ServingCluster,
)
from repro.serve import cluster as cluster_mod
from repro.serve.faults import FAULT_KINDS, FaultEvent, FaultInjector
from repro.utils import load_bundle, save_bundle
from repro.utils.checkpoint import rehydrate_model


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    """A frozen-graph bundle small enough for fast worker start-up."""
    config = SAGDFNConfig(
        num_nodes=6, history=4, horizon=3, embedding_dim=8,
        num_significant=4, top_k=3, hidden_size=10,
        num_heads=2, ffn_hidden=8, seed=0,
    )
    model = SAGDFN(config)
    model.refresh_graph(0)
    path = save_bundle(model, tmp_path_factory.mktemp("faults") / "bundle")
    return path, config


@pytest.fixture(scope="module")
def windows(bundle):
    _, config = bundle
    rng = np.random.default_rng(11)
    return rng.normal(size=(12, config.history, config.num_nodes,
                            config.input_dim))


def _wait_for(predicate, timeout_s=60.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


# --------------------------------------------------------------------- #
# FaultPlan determinism
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        kwargs = dict(workers=3, seed=42, horizon=16, kills_per_worker=1,
                      stalls_per_worker=2, corruptions_per_worker=1,
                      slow_batches_per_worker=1)
        assert FaultPlan(**kwargs).events == FaultPlan(**kwargs).events

    def test_different_seed_different_schedule(self):
        a = FaultPlan(workers=2, seed=0, horizon=32, kills_per_worker=2)
        b = FaultPlan(workers=2, seed=1, horizon=32, kills_per_worker=2)
        assert a.events != b.events

    def test_every_worker_gets_its_quota(self):
        plan = FaultPlan(workers=4, seed=7, horizon=8, kills_per_worker=1,
                         stalls_per_worker=1)
        for worker_id in range(4):
            schedule = plan.schedule_for(worker_id)
            kinds = sorted(event.kind for event in schedule.values())
            assert kinds == ["kill", "stall"]
            assert all(0 <= index < 8 for index in schedule)

    def test_ordinals_distinct_within_worker(self):
        plan = FaultPlan(workers=2, seed=3, horizon=6, kills_per_worker=2,
                         corruptions_per_worker=2, slow_batches_per_worker=2)
        for worker_id in range(2):
            ordinals = [e.request_index for e in plan.events
                        if e.worker_id == worker_id]
            assert len(ordinals) == len(set(ordinals)) == 6

    def test_summary_is_json_safe(self):
        import json

        plan = FaultPlan(workers=2, seed=0, horizon=8, kills_per_worker=1,
                         stalls_per_worker=1)
        summary = json.loads(json.dumps(plan.summary()))
        assert summary["workers"] == 2
        assert summary["events"] == 4
        assert summary["by_kind"]["kill"] == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FaultPlan(workers=0)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan(workers=1, horizon=2, kills_per_worker=2,
                      stalls_per_worker=2)
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(worker_id=0, request_index=0, kind="explode")
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent(worker_id=0, request_index=0, kind="stall",
                       duration_s=-1.0)

    def test_injector_consumes_ordinals(self):
        plan = FaultPlan(workers=1, seed=5, horizon=4, kills_per_worker=0,
                         stalls_per_worker=1)
        injector = FaultInjector(plan.schedule_for(0))
        fired = [injector.next_event() for _ in range(4)]
        assert sum(event is not None for event in fired) == 1
        assert injector.served == 4
        assert injector.pending == 0

    def test_empty_injector_is_noop(self):
        injector = FaultInjector(None)
        assert injector.next_event() is None
        assert injector.pending == 0

    def test_kinds_are_stable(self):
        # The bench report and the worker seams key off this order.
        assert FAULT_KINDS == ("kill", "stall", "corrupt", "slow")

    def test_plan_smaller_than_pool_rejected(self, bundle):
        path, _ = bundle
        with pytest.raises(ValueError, match="fault plan"):
            ServingCluster(path, workers=2,
                           fault_plan=FaultPlan(workers=1))


# --------------------------------------------------------------------- #
# Admission control (no worker processes: pure MicroBatcher)
# --------------------------------------------------------------------- #
class TestAdmissionControl:
    def _gated_batcher(self, **kwargs):
        started = threading.Event()
        release = threading.Event()
        calls = []

        def predict_fn(batch):
            calls.append(batch.shape[0])
            started.set()
            release.wait(30)
            return batch * 2.0

        batcher = MicroBatcher(predict_fn, max_batch=1, max_wait_ms=0.0,
                               **kwargs)
        return batcher, started, release, calls

    def test_deadline_sheds_before_kernel(self):
        batcher, started, release, calls = self._gated_batcher()
        window = np.ones((4, 3, 2))
        try:
            blocker = batcher.submit(window)
            assert started.wait(10)  # the worker is inside the forward
            doomed = batcher.submit(window, deadline_s=0.05)
            time.sleep(0.15)  # let the deadline lapse while queued
            release.set()
            assert np.array_equal(blocker.result(timeout=10), window * 2.0)
            with pytest.raises(DeadlineExceeded, match="before running"):
                doomed.result(timeout=10)
            # The shed request never reached the kernel.
            assert calls == [1]
            assert batcher.stats.num_expired == 1
            assert batcher.pending == 0
        finally:
            release.set()
            batcher.close()

    def test_unexpired_deadline_serves_normally(self):
        with MicroBatcher(lambda b: b + 1.0, max_batch=4,
                          max_wait_ms=0.5) as batcher:
            window = np.zeros((4, 3, 2))
            result = batcher.predict(window, deadline_s=30.0, timeout=10)
            assert np.array_equal(result, window + 1.0)
            assert batcher.stats.num_expired == 0

    def test_invalid_deadline_rejected_at_submit(self):
        with MicroBatcher(lambda b: b, max_batch=1) as batcher:
            with pytest.raises(ValueError, match="deadline_s"):
                batcher.submit(np.ones((4, 3, 2)), deadline_s=0.0)

    def test_watermark_rejects_with_typed_overloaded(self):
        batcher, started, release, _ = self._gated_batcher(max_pending=2)
        window = np.ones((4, 3, 2))
        try:
            blocker = batcher.submit(window)
            assert started.wait(10)
            queued = [batcher.submit(window) for _ in range(2)]
            with pytest.raises(Overloaded, match="watermark"):
                batcher.submit(window)
            assert batcher.stats.num_rejected == 1
            assert batcher.pending == 2
            release.set()
            for future in [blocker] + queued:
                assert future.result(timeout=10).shape == window.shape
            # Drained: the watermark admits new work again.
            assert batcher.pending == 0
            batcher.submit(window).result(timeout=10)
        finally:
            release.set()
            batcher.close()

    def test_invalid_watermark_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            MicroBatcher(lambda b: b, max_pending=0)

    def test_cluster_sheds_when_every_worker_is_saturated(self, bundle,
                                                          windows):
        """With ``max_pending=1`` and a burst far deeper than the pool can
        queue, some submissions must be rejected with the cluster-level
        typed ``Overloaded`` — and everything admitted must resolve."""
        path, _ = bundle
        with ServingCluster(path, workers=2, max_batch=1, max_wait_ms=0.0,
                            max_pending=1, supervise=False) as cluster:
            cluster.predict(windows[0], timeout=60)  # warm both ends
            futures, rejected = [], 0
            for _ in range(30):
                for window in windows:
                    try:
                        futures.append(cluster.submit(window))
                    except Overloaded:
                        rejected += 1
            for future in futures:
                assert future.result(timeout=60).shape[0] == windows.shape[1] - 1
            assert rejected > 0
            assert rejected + len(futures) == 30 * len(windows)


# --------------------------------------------------------------------- #
# Supervised recovery + chaos soak
# --------------------------------------------------------------------- #
class TestSupervisedRecovery:
    def test_chaos_soak_kill_every_worker_during_burst(self, bundle, windows):
        """The acceptance soak: a seeded plan SIGKILLs each of two workers
        once during a concurrent burst.  Every future resolves (result or
        typed error), successful batch-1 answers are bit-identical to the
        single-process service, and the pool respawns to full strength."""
        path, _ = bundle
        plan = FaultPlan(workers=2, seed=0, horizon=4, kills_per_worker=1)
        service = ForecastService.from_checkpoint(path)
        reference = [service.predict(window[None])[0] for window in windows]
        with ServingCluster(path, workers=2, max_batch=1, max_wait_ms=0.0,
                            request_timeout_s=60.0,
                            supervise=True, supervise_interval_s=0.02,
                            restart_backoff_s=0.05,
                            restart_backoff_ceiling_s=0.4,
                            fault_plan=plan) as cluster:
            futures = []
            for _ in range(4):  # 48 submissions: both kill ordinals < 4 fire
                for index, window in enumerate(windows):
                    futures.append((index, cluster.submit(window)))
            successes, failures = 0, []
            for index, future in futures:
                try:
                    result = future.result(timeout=120)
                except (ClusterError, RingCorruptionError) as error:
                    failures.append(error)
                else:
                    successes += 1
                    assert np.array_equal(result, reference[index])
            assert successes > 0
            # Every failure is typed — nothing hung, nothing leaked a bare
            # exception from the pipe layer.
            assert all(isinstance(e, ClusterError) for e in failures)
            # The supervisor restores the full pool.
            assert _wait_for(lambda: cluster.alive_workers == 2,
                             timeout_s=120.0)
            health = cluster.health()
            assert health.num_alive == 2
            assert health.num_parked == 0
            assert health.total_restarts >= 2  # each worker died once
            assert not health.degraded
            # And the recovered pool still answers bit-identically.
            assert np.array_equal(cluster.predict(windows[0], timeout=60),
                                  reference[0])

    def test_respawned_worker_serves_current_generation(self, bundle,
                                                        windows):
        """A worker respawned after a hot-swap must serve the swapped
        graph, not the bundle's frozen one."""
        from itertools import combinations

        path, config = bundle
        bundle_data = load_bundle(path)
        frozen = np.sort(np.asarray(bundle_data.index_set))
        fresh = None
        for combo in combinations(range(config.num_nodes), frozen.size):
            candidate = np.asarray(combo, dtype=np.int64)
            if not np.array_equal(candidate, frozen):
                fresh = candidate
                break
        cold = rehydrate_model(bundle_data)
        cold._index_set = fresh.copy()
        ref_fresh = ForecastService(cold).predict(windows[0][None])[0]

        with ServingCluster(path, workers=1, max_batch=1, max_wait_ms=0.0,
                            supervise=True, supervise_interval_s=0.02,
                            restart_backoff_s=0.05,
                            restart_backoff_ceiling_s=0.4) as cluster:
            assert cluster.swap_index_set(fresh) == 1
            assert np.array_equal(cluster.predict(windows[0], timeout=60),
                                  ref_fresh)
            cluster._channels[0].process.kill()
            assert _wait_for(
                lambda: cluster.alive_workers == 1
                and cluster._channels[0].restarts >= 1,
                timeout_s=120.0,
            )
            assert np.array_equal(cluster.predict(windows[0], timeout=60),
                                  ref_fresh)
            assert cluster.health().total_restarts >= 1

    def test_crash_loop_parks_worker_and_pool_degrades(self, bundle,
                                                       windows):
        """A slot whose respawns keep failing is parked by the circuit
        breaker; the cluster keeps serving on the surviving worker."""
        path, _ = bundle
        with ServingCluster(path, workers=2, max_batch=2, max_wait_ms=0.5,
                            supervise=True, supervise_interval_s=0.02,
                            restart_backoff_s=0.02,
                            restart_backoff_ceiling_s=0.1,
                            max_crash_loop=2) as cluster:
            cluster.predict(windows[0], timeout=60)
            victim = cluster._channels[0]

            def failing_respawn(*args, **kwargs):
                raise RuntimeError("injected respawn failure")

            victim.respawn = failing_respawn
            victim.process.kill()
            assert _wait_for(lambda: victim.parked, timeout_s=60.0)
            health = cluster.health()
            assert health.num_parked == 1
            assert cluster.parked_workers == 1
            assert health.degraded
            parked = [w for w in health.workers if w.state == "parked"]
            assert parked and parked[0].worker_id == victim.worker_id
            # The survivor still serves, and parked slots stay parked.
            for window in windows[:4]:
                assert cluster.predict(window, timeout=60).shape[0] == 3
            assert cluster.alive_workers == 1

    def test_corruption_outcomes_are_run_deterministic(self, bundle,
                                                       windows):
        """Same seed, same corruption outcome: a 1-worker sequential run
        hits the CRC mismatch on the same request index both times, and
        every other answer is bitwise identical across the runs."""
        path, _ = bundle
        plan = FaultPlan(workers=1, seed=9, horizon=4, kills_per_worker=0,
                         corruptions_per_worker=1)

        def run_once():
            outcomes = []
            with ServingCluster(path, workers=1, max_batch=1,
                                max_wait_ms=0.0, supervise=False,
                                fault_plan=plan) as cluster:
                for window in windows[:6]:
                    try:
                        result = cluster.predict(window, timeout=60)
                    except RingCorruptionError:
                        outcomes.append("corrupt")
                    else:
                        outcomes.append(result.tobytes())
            return outcomes

        first, second = run_once(), run_once()
        assert first == second
        assert first.count("corrupt") == 1

    def test_corrupted_response_is_not_retried(self, bundle, windows):
        """CRC failure means the request *executed*: at-most-once forbids a
        re-dispatch even with a healthy peer available."""
        path, _ = bundle
        plan = FaultPlan(workers=2, seed=9, horizon=1, kills_per_worker=0,
                         corruptions_per_worker=1)
        with ServingCluster(path, workers=2, max_batch=1, max_wait_ms=0.0,
                            supervise=False, fault_plan=plan) as cluster:
            outcomes = {"ok": 0, "corrupt": 0}
            before = cluster.health().redispatches
            for window in windows[:2]:  # round-robin: one request per worker
                try:
                    cluster.predict(window, timeout=60)
                except RingCorruptionError as error:
                    assert "not retried" in str(error)
                    outcomes["corrupt"] += 1
                else:
                    outcomes["ok"] += 1
            # horizon=1 puts both corruptions on ordinal 0: both first
            # requests come back damaged, and neither was re-dispatched.
            assert outcomes["corrupt"] == 2
            assert cluster.health().redispatches == before

    def test_stall_and_slow_faults_delay_but_serve(self, bundle, windows):
        path, _ = bundle
        plan = FaultPlan(workers=1, seed=2, horizon=2, kills_per_worker=0,
                         stalls_per_worker=1, slow_batches_per_worker=1,
                         stall_s=0.2, slow_s=0.1)
        service = ForecastService.from_checkpoint(path)
        with ServingCluster(path, workers=1, max_batch=1, max_wait_ms=0.0,
                            supervise=False, fault_plan=plan) as cluster:
            start = time.monotonic()
            for window in windows[:2]:
                assert np.array_equal(
                    cluster.predict(window, timeout=60),
                    service.predict(window[None])[0],
                )
            assert time.monotonic() - start >= 0.3  # both delays were real

    def test_partial_startup_releases_every_ring(self, bundle, monkeypatch):
        """Worker k of N failing during start-up must stop the already
        started workers and unlink every shared-memory ring."""
        from multiprocessing import shared_memory

        path, _ = bundle
        created = []
        original_init = cluster_mod._WorkerChannel.__init__

        def spying_init(self, *args, **kwargs):
            created.append(self)
            original_init(self, *args, **kwargs)

        def failing_wait(self, timeout_s):
            raise ClusterError(
                f"worker {self.worker_id} injected startup failure"
            )

        monkeypatch.setattr(cluster_mod._WorkerChannel, "__init__",
                            spying_init)
        monkeypatch.setattr(cluster_mod._WorkerChannel, "wait_ready",
                            failing_wait)
        with pytest.raises(ClusterError, match="injected startup failure"):
            ServingCluster(path, workers=2, max_batch=2, max_wait_ms=1.0)
        assert len(created) == 2
        for channel in created:
            assert not channel.process.is_alive()
            for shm in (channel.request_shm, channel.response_shm):
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=shm.name)

    def test_health_snapshot_is_json_safe(self, bundle, windows):
        import json

        path, _ = bundle
        with ServingCluster(path, workers=2, max_batch=2, max_wait_ms=1.0,
                            supervise=False) as cluster:
            cluster.predict(windows[0], timeout=60)
            health = json.loads(json.dumps(cluster.health().to_dict()))
            assert health["num_workers"] == 2
            assert health["num_alive"] == 2
            assert health["num_parked"] == 0
            assert len(health["workers"]) == 2
            assert all(w["state"] == "live" for w in health["workers"])

    def test_supervisor_validation(self, bundle):
        path, _ = bundle
        with pytest.raises(ValueError, match="supervise_interval_s"):
            ServingCluster(path, workers=1, supervise_interval_s=0.0)
        with pytest.raises(ValueError, match="restart_backoff_s"):
            ServingCluster(path, workers=1, restart_backoff_s=0.0)
        with pytest.raises(ValueError, match="restart_backoff_s"):
            ServingCluster(path, workers=1, restart_backoff_s=2.0,
                           restart_backoff_ceiling_s=1.0)
        with pytest.raises(ValueError, match="max_crash_loop"):
            ServingCluster(path, workers=1, max_crash_loop=0)
