"""Equivalence and migration suite for the fused recurrent hot path.

Three implementations of the encoder–decoder recurrence must agree:

* ``SAGDFNEncoderDecoder.forward`` — the fused autograd path (gate fusion,
  shared diffusion states, input-side precompute, stacked-weight gemms);
* ``SAGDFNEncoderDecoder.forward_reference`` — the historical per-gate
  concat loop (the seed implementation's math);
* :class:`~repro.core.serving_kernel.FrozenRecurrenceKernel` — the raw
  ndarray no-grad serving kernel behind ``ForecastService``.

The fused/kernel paths only reorder BLAS reductions, so in float64 they
match the reference to ≤ 1e-10 relative (the PR 1 equivalence methodology);
float32 gets a correspondingly looser envelope.  Legacy per-gate checkpoints
must keep loading bit-exactly through ``_upgrade_state_dict``.
"""

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig, OneStepFastGConvCell
from repro.core.encoder_decoder import SAGDFNEncoderDecoder
from repro.core.serving_kernel import FrozenRecurrenceKernel
from repro.serve import ForecastService
from repro.tensor import Tensor, default_dtype, no_grad

F64_REL = 1e-10
F32_REL = 5e-5


def _max_rel(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a - b).max() / max(np.abs(b).max(), 1e-30))


def _model(num_layers=1, chunk_size=None, seed=0, teacher_forcing=0.0):
    config = SAGDFNConfig(
        num_nodes=22, history=4, horizon=3, num_significant=6, top_k=4,
        hidden_size=8, num_heads=2, ffn_hidden=6, seed=seed,
        num_layers=num_layers, chunk_size=chunk_size,
        teacher_forcing=teacher_forcing,
    )
    model = SAGDFN(config)
    model.refresh_graph(10**6)  # past convergence: frozen index set
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFusedEquivalence:
    @pytest.mark.parametrize("num_layers", [1, 2])
    @pytest.mark.parametrize("dtype,rel", [("float64", F64_REL), ("float32", F32_REL)])
    def test_fused_matches_reference(self, rng, num_layers, dtype, rel):
        with default_dtype(dtype):
            model = _model(num_layers=num_layers)
            model.eval()
            x = Tensor(rng.normal(size=(3, 4, 22, 2)))
            with no_grad():
                fused = model(x).data
                reference = model.forward_reference(x).data
        assert fused.dtype == reference.dtype
        assert _max_rel(fused, reference) <= rel

    @pytest.mark.parametrize("chunk_size", [None, 5])
    def test_node_chunked_fused_matches_reference(self, rng, chunk_size):
        model = _model(chunk_size=chunk_size)
        model.eval()
        x = Tensor(rng.normal(size=(2, 4, 22, 2)))
        with no_grad():
            fused = model(x).data
            reference = model.forward_reference(x).data
        assert _max_rel(fused, reference) <= F64_REL

    def test_teacher_forcing_paths_agree(self, rng):
        """With identical RNG state both paths make the same curriculum draws."""
        model = _model(teacher_forcing=1.0)
        model.train()
        x = Tensor(rng.normal(size=(2, 4, 22, 2)))
        targets = Tensor(rng.normal(size=(2, 3, 22, 1)))
        state = model.forecaster._rng.bit_generator.state
        fused = model(x, targets=targets).data
        model.forecaster._rng.bit_generator.state = state
        reference = model.forward_reference(x, targets=targets).data
        assert _max_rel(fused, reference) <= F64_REL

    def test_gradients_flow_through_fused_path(self, rng):
        model = _model()
        model.train()
        x = Tensor(rng.normal(size=(2, 4, 22, 2)))
        model(x).sum().backward()
        # Encoder/lower-layer projections never feed the loss (their
        # predictions are discarded), exactly as in the per-gate layout.
        dead = {"projection"}
        for name, parameter in model.forecaster.named_parameters():
            if name.split(".")[-1] in dead and "decoder_cells" not in name:
                continue
            assert parameter.grad is not None, name

    def test_cell_standalone_call_matches_reference(self, rng):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=5, diffusion_steps=3, seed=1)
        hidden = Tensor(rng.normal(size=(2, 9, 5)))
        x = Tensor(rng.normal(size=(2, 9, 2)))
        slim = Tensor(rng.random((9, 3)))
        index_set = np.array([0, 4, 7])
        new_hidden, prediction = cell(x, hidden, slim, index_set)
        ref_hidden, ref_prediction = cell.forward_reference(x, hidden, slim, index_set)
        assert _max_rel(new_hidden.data, ref_hidden.data) <= F64_REL
        assert _max_rel(prediction.data, ref_prediction.data) <= F64_REL


class TestServingKernel:
    @pytest.mark.parametrize("num_layers", [1, 2])
    def test_kernel_matches_reference(self, rng, num_layers):
        model = _model(num_layers=num_layers)
        service = ForecastService(model)
        assert service._kernel is not None
        x = rng.normal(size=(3, 4, 22, 2))
        kernel_out = service.predict(x)
        with no_grad():
            reference = model.forecaster.forward_reference(
                Tensor(x), service._adjacency_tensor, service.frozen.index_set,
                degree_scale=service._degree_scale_tensor,
            ).data
        assert _max_rel(kernel_out, reference) <= F64_REL

    def test_kernel_matches_module_forward_float32(self, rng):
        with default_dtype("float32"):
            model = _model()
            fallback = ForecastService(_copy_of(model), use_kernel=False)
            service = ForecastService(model)
            x = rng.normal(size=(2, 4, 22, 2)).astype(np.float32)
            assert service.predict(x).dtype == np.float32
            assert _max_rel(service.predict(x), fallback.predict(x)) <= F32_REL

    def test_kernel_workspace_reuse_is_deterministic(self, rng):
        service = ForecastService(_model())
        x = rng.normal(size=(2, 4, 22, 2))
        first = service.predict(x)
        second = service.predict(x)
        assert np.array_equal(first, second)
        # different batch size allocates a fresh workspace, same rows agree
        one = service.predict(x[:1])
        assert _max_rel(one, first[:1]) <= F64_REL

    def test_kernel_output_is_not_aliased_to_workspace(self, rng):
        service = ForecastService(_model())
        x = rng.normal(size=(1, 4, 22, 2))
        first = service.predict(x)
        snapshot = first.copy()
        service.predict(rng.normal(size=(1, 4, 22, 2)))
        assert np.array_equal(first, snapshot)

    def test_kernel_dense_support_path(self, rng):
        forecaster = SAGDFNEncoderDecoder(input_dim=2, hidden_dim=6, horizon=3, seed=3)
        dense = np.abs(rng.random((10, 10)))
        scale = 1.0 / (dense.sum(axis=-1, keepdims=True) + 1.0)
        kernel = FrozenRecurrenceKernel(forecaster, dense, None, scale)
        x = rng.normal(size=(2, 4, 10, 2))
        forecaster.eval()
        with no_grad():
            reference = forecaster.forward_reference(
                Tensor(x), Tensor(dense), None, degree_scale=Tensor(scale)
            ).data
        assert _max_rel(kernel(x), reference) <= F64_REL

    def test_kernel_validates_shapes(self, rng):
        service = ForecastService(_model())
        with pytest.raises(ValueError):
            service._kernel(rng.normal(size=(4, 22, 2)))
        with pytest.raises(ValueError):
            service._kernel(rng.normal(size=(1, 4, 21, 2)))
        with pytest.raises(ValueError):
            service._kernel(rng.normal(size=(1, 4, 22, 3)))

    def test_use_kernel_false_serves_module_forward(self, rng):
        model = _model()
        service = ForecastService(model, use_kernel=False)
        assert service._kernel is None
        x = rng.normal(size=(2, 4, 22, 2))
        with no_grad():
            expected = model.forecaster(
                Tensor(x), service._adjacency_tensor, service.frozen.index_set,
                degree_scale=service._degree_scale_tensor,
            ).data
        assert np.array_equal(service.predict(x), expected)


def _copy_of(model):
    clone = SAGDFN(model.config)
    clone.sampler.candidates = model.sampler.candidates.copy()
    clone._index_set = model.index_set.copy()
    clone.load_state_dict(model.state_dict())
    return clone


class TestLegacyCheckpointMigration:
    def _legacy_state(self, cell, prefix="", rng=None):
        """Build a legacy per-gate state dict for ``cell`` with random values."""
        rng = rng or np.random.default_rng(11)
        combined = cell.input_dim + cell.hidden_dim
        hidden = cell.hidden_dim
        hops = cell.gates.diffusion_steps
        state = {}
        for gate in ("reset_gate", "update_gate"):
            for j in range(hops):
                state[f"{prefix}{gate}.hop_weights.{j}"] = rng.normal(
                    size=(combined, hidden)
                )
            state[f"{prefix}{gate}.bias"] = rng.normal(size=hidden)
        for j in range(hops):
            state[f"{prefix}candidate.hop_weights.{j}"] = rng.normal(
                size=(combined, hidden)
            )
        state[f"{prefix}candidate.bias"] = rng.normal(size=hidden)
        state[f"{prefix}projection"] = rng.normal(size=(hidden, cell.output_dim))
        return state

    def test_cell_upgrades_per_gate_keys_bit_exactly(self):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=4, diffusion_steps=3, seed=0)
        legacy = self._legacy_state(cell)
        cell.load_state_dict(legacy)
        for j in range(3):
            expected = np.concatenate(
                [legacy[f"reset_gate.hop_weights.{j}"],
                 legacy[f"update_gate.hop_weights.{j}"]], axis=1
            )
            assert np.array_equal(cell.gates.hop_weights[j].data, expected)
        assert np.array_equal(
            cell.gates.bias.data,
            np.concatenate([legacy["reset_gate.bias"], legacy["update_gate.bias"]]),
        )
        assert np.array_equal(
            cell.candidate.hop_weights[0].data, legacy["candidate.hop_weights.0"]
        )

    def test_full_model_round_trips_through_legacy_layout(self):
        """Downgrade a model's state to the per-gate layout and load it back."""
        model = _model(num_layers=2)
        state = model.state_dict()
        legacy = {}
        for key, value in state.items():
            if ".gates.hop_weights." in key:
                head, hop = key.rsplit(".", 1)
                base = head.replace(".gates.hop_weights", "")
                hidden = value.shape[1] // 2
                legacy[f"{base}.reset_gate.hop_weights.{hop}"] = value[:, :hidden]
                legacy[f"{base}.update_gate.hop_weights.{hop}"] = value[:, hidden:]
            elif key.endswith(".gates.bias"):
                base = key.replace(".gates.bias", "")
                hidden = value.shape[0] // 2
                legacy[f"{base}.reset_gate.bias"] = value[:hidden]
                legacy[f"{base}.update_gate.bias"] = value[hidden:]
            else:
                legacy[key] = value
        clone = SAGDFN(model.config)
        clone.load_state_dict(legacy)
        for key, value in clone.state_dict().items():
            assert np.array_equal(value, state[key]), key

    def test_hop_count_mismatch_falls_through_to_key_error(self):
        cell = OneStepFastGConvCell(input_dim=2, hidden_dim=4, diffusion_steps=2, seed=0)
        three_hop = OneStepFastGConvCell(input_dim=2, hidden_dim=4, diffusion_steps=3,
                                         seed=0)
        legacy = self._legacy_state(three_hop)
        with pytest.raises(KeyError):
            cell.load_state_dict(legacy)

    def test_fresh_cell_matches_legacy_seeded_draws(self):
        """Fused weights are assembled from the exact legacy per-gate streams."""
        from repro.nn import init
        from repro.utils.seed import spawn_rng

        cell = OneStepFastGConvCell(input_dim=3, hidden_dim=5, diffusion_steps=2, seed=9)
        combined = 8
        rng_reset, rng_update = spawn_rng(9), spawn_rng(10)
        for hop in cell.gates.hop_weights:
            expected = np.concatenate(
                [init.xavier_uniform((combined, 5), rng_reset),
                 init.xavier_uniform((combined, 5), rng_update)], axis=1
            )
            assert np.array_equal(hop.data, expected)


class TestMicroAllocationFixes:
    def test_initial_state_allocates_directly_in_cell_dtype(self):
        with default_dtype("float32"):
            cell = OneStepFastGConvCell(input_dim=2, hidden_dim=4)
            state = cell.initial_state(3, 7)
        assert state.dtype == np.float32
        assert state.shape == (3, 7, 4)
        assert not state.data.flags.writeable or state.data.sum() == 0.0

    def test_index_conversion_is_hoisted(self, rng):
        """A list index set is converted once per forward, not per hop."""
        from repro.core.gconv import FastGraphConv

        conv = FastGraphConv(input_dim=2, output_dim=2, diffusion_steps=4, seed=0)
        x = Tensor(rng.normal(size=(1, 8, 2)))
        slim = Tensor(rng.random((8, 3)))
        as_list = [0, 3, 5]
        as_array = np.array(as_list, dtype=np.int64)
        assert np.array_equal(conv(x, slim, as_list).data, conv(x, slim, as_array).data)


class TestKernelConcurrency:
    def test_concurrent_predicts_are_correct(self, rng):
        """The shared workspace is lock-protected: parallel callers must get
        the same answers as sequential ones."""
        import concurrent.futures

        service = ForecastService(_model())
        windows = [rng.normal(size=(2, 4, 22, 2)) for _ in range(8)]
        expected = [service.predict(w) for w in windows]
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(service.predict, windows))
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)

    def test_workspace_cache_is_bounded(self, rng):
        from repro.core.serving_kernel import _MAX_WORKSPACES

        service = ForecastService(_model())
        for batch in range(1, _MAX_WORKSPACES + 4):
            service.predict(rng.normal(size=(batch, 4, 22, 2)))
        assert len(service._kernel._workspaces) == _MAX_WORKSPACES
        # the most recent batch sizes survive and still serve correctly
        batch = _MAX_WORKSPACES + 3
        assert batch in service._kernel._workspaces
        out = service.predict(rng.normal(size=(1, 4, 22, 2)))  # evicted size: rebuilt
        assert out.shape == (1, 3, 22, 1)
