"""Golden end-to-end regression: a pinned seeded SAGDFN train + evaluate run.

The exact numbers below were produced by the reference implementation at the
time this test was written.  They are *not* meaningful forecasting scores —
the run is two epochs on a 10-node synthetic series — but they are fully
deterministic given the seeds, so any future refactor that silently changes
the numerics of data generation, sampling, attention, the gconv recurrence,
the optimiser or the masked metrics will fail this test loudly instead of
drifting unnoticed.

The relative tolerance (1e-4) is far above cross-BLAS summation noise
(~1e-10 on these shapes) and far below any genuine behavioural change.
"""

import numpy as np
import pytest

from repro.core import SAGDFN, Trainer
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series, small_sagdfn_config
from repro.optim import Adam

GOLDEN_TRAIN_LOSS_EPOCH0 = 5.93000354697163
GOLDEN_TRAIN_LOSS_EPOCH1 = 2.973198341511868
GOLDEN_VAL_MAE_EPOCH1 = 2.766611310891553
GOLDEN_TEST = {
    "mae": 3.2196475237302886,
    "rmse": 4.144123087317649,
    "mape": 0.060731254923124665,
}
GOLDEN_INDEX_SET = [0, 3, 8, 2, 5, 9, 1, 7, 4, 6]
REL = 1e-4


def _golden_run():
    series = generate_traffic_dataset(TrafficConfig(num_nodes=10, num_steps=200, seed=3))
    data = prepare_data_from_series(series, history=4, horizon=4, batch_size=16,
                                    seed=0, name="golden")
    config = small_sagdfn_config(data, convergence_iteration=5, seed=0)
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    history = trainer.fit(data.train_loader, data.val_loader, epochs=2)
    return model, trainer, history, data


@pytest.fixture(scope="module")
def golden_run():
    return _golden_run()


class TestGoldenRegression:
    def test_training_losses_are_pinned(self, golden_run):
        _, _, history, _ = golden_run
        assert history.train_losses[0] == pytest.approx(GOLDEN_TRAIN_LOSS_EPOCH0, rel=REL)
        assert history.train_losses[1] == pytest.approx(GOLDEN_TRAIN_LOSS_EPOCH1, rel=REL)
        assert history.val_maes[1] == pytest.approx(GOLDEN_VAL_MAE_EPOCH1, rel=REL)

    def test_test_metrics_are_pinned(self, golden_run):
        _, trainer, _, data = golden_run
        metrics = trainer.evaluate(data.test_loader)
        for key, golden in GOLDEN_TEST.items():
            assert metrics[key] == pytest.approx(golden, rel=REL), key

    def test_frozen_index_set_is_pinned(self, golden_run):
        model, _, _, _ = golden_run
        assert model.index_set.tolist() == GOLDEN_INDEX_SET

    def test_evaluation_is_deterministic(self, golden_run):
        _, trainer, _, data = golden_run
        first = trainer.evaluate(data.test_loader)
        second = trainer.evaluate(data.test_loader)
        assert first == second

    def test_full_rerun_reproduces_metrics_exactly(self, golden_run):
        """Two complete train+evaluate runs in one process agree bit-for-bit."""
        _, trainer, _, data = golden_run
        reference = trainer.evaluate(data.test_loader)
        _, trainer2, _, data2 = _golden_run()
        repeat = trainer2.evaluate(data2.test_loader)
        assert repeat == reference