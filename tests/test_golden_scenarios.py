"""Golden regression pins for the quantile and missing-data scenarios.

Companion to ``test_golden_regression.py`` (which pins the legacy
point/dense pipeline): the numbers below were produced by the reference
implementation when the scenario system landed, on fully seeded runs, so
any silent numeric drift in the pinball loss, the quantile decoder head,
the mask-as-channel data pipeline or the coverage accumulators fails
loudly.  Same tolerance rationale as the original golden test: 1e-4
relative is far above BLAS summation noise, far below behavioural change.
"""

import numpy as np
import pytest

from repro.core import SAGDFN, Trainer
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series, small_sagdfn_config
from repro.optim import Adam

REL = 1e-4

GOLDEN_QUANTILE = {
    "train_losses": [3.1619823690562874, 1.3162212109063196],
    "val_maes": [3.566170328068531, 3.354567289625222],
    "test": {
        "mae": 3.9153450097662477,
        "rmse": 4.70198361445099,
        "mape": 0.07971711775792163,
        "pinball": 1.3725178860257026,
        "interval_width": 21.569299145175425,
        "coverage@0.1": 0.0022727272727272726,
        "coverage@0.5": 0.8606060606060606,
        "coverage@0.9": 1.0,
    },
    "index_set": [0, 3, 8, 2, 5, 9, 1, 7, 4, 6],
}

GOLDEN_MISSING = {
    "train_losses": [5.235113588534229, 3.0659723113153015],
    "val_maes": [2.5807026879955997, 2.694478776758359],
    "test": {
        "mae": 2.9250010182297026,
        "rmse": 3.8780068127789478,
        "mape": 0.05401549323996831,
    },
    "index_set": [0, 2, 3, 8, 5, 9, 1, 7, 4, 6],
}

GOLDEN_QUANTILE_MISSING = {
    "train_losses": [3.2532217873029943, 1.4936440296477598],
    "val_maes": [4.456775151004449, 3.5240110222030916],
    "test": {
        "mae": 3.1764677910516217,
        "rmse": 3.9927985604272576,
        "mape": 0.06228030749890122,
        "pinball": 1.2273053976535495,
        "interval_width": 20.144683902358974,
        "coverage@0.1": 0.025768911055694097,
        "coverage@0.5": 0.802161263507897,
        "coverage@0.9": 0.9908561928512053,
    },
    "index_set": [0, 3, 8, 2, 5, 9, 1, 7, 4, 6],
}


def _scenario_run(quantile: bool, missing: bool):
    """Seeded 2-epoch run; the missing cell also carries the exog covariate."""
    series = generate_traffic_dataset(
        TrafficConfig(num_nodes=10, num_steps=200, seed=3,
                      missing_rate=0.1 if missing else 0.0)
    )
    data = prepare_data_from_series(
        series, history=4, horizon=4, batch_size=16, seed=0, name="golden_scenario",
        include_day_of_week=missing, mask_input=missing,
    )
    config = small_sagdfn_config(
        data, convergence_iteration=5, seed=0,
        quantiles=(0.1, 0.5, 0.9) if quantile else None,
    )
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    history = trainer.fit(data.train_loader, data.val_loader, epochs=2)
    metrics = trainer.evaluate(data.test_loader)
    return model, history, metrics


CASES = {
    "quantile": ((True, False), GOLDEN_QUANTILE),
    "missing": ((False, True), GOLDEN_MISSING),
    "quantile_missing": ((True, True), GOLDEN_QUANTILE_MISSING),
}


@pytest.fixture(scope="module", params=sorted(CASES), ids=sorted(CASES))
def scenario_golden(request):
    (quantile, missing), golden = CASES[request.param]
    model, history, metrics = _scenario_run(quantile, missing)
    return (quantile, missing), golden, model, history, metrics


class TestGoldenScenarios:
    def test_training_losses_are_pinned(self, scenario_golden):
        _, golden, _, history, _ = scenario_golden
        for observed, pinned in zip(history.train_losses, golden["train_losses"]):
            assert observed == pytest.approx(pinned, rel=REL)
        for observed, pinned in zip(history.val_maes, golden["val_maes"]):
            assert observed == pytest.approx(pinned, rel=REL)

    def test_test_metrics_are_pinned(self, scenario_golden):
        _, golden, _, _, metrics = scenario_golden
        assert set(metrics) == set(golden["test"])
        for key, pinned in golden["test"].items():
            assert metrics[key] == pytest.approx(pinned, rel=REL, abs=1e-12), key

    def test_frozen_index_set_is_pinned(self, scenario_golden):
        _, golden, model, _, _ = scenario_golden
        assert model.index_set.tolist() == golden["index_set"]

    def test_full_rerun_is_bit_deterministic(self, scenario_golden):
        (quantile, missing), _, _, history, metrics = scenario_golden
        _, history2, metrics2 = _scenario_run(quantile, missing)
        assert history2.train_losses == history.train_losses
        assert history2.val_maes == history.val_maes
        assert metrics2 == metrics


def test_quantile_coverage_brackets_nominal_order():
    """Sanity on the pinned values themselves: coverage rises with the level."""
    for golden in (GOLDEN_QUANTILE, GOLDEN_QUANTILE_MISSING):
        coverage = [golden["test"][f"coverage@{q:g}"] for q in (0.1, 0.5, 0.9)]
        assert coverage == sorted(coverage)
        assert np.all(np.isfinite(coverage))
