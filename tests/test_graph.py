"""Tests for adjacency utilities and the dense/slim diffusion operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    add_self_loops,
    cheb_polynomials,
    degree_vector,
    dense_diffusion,
    gaussian_kernel_adjacency,
    knn_adjacency,
    random_walk_matrix,
    row_normalize,
    scaled_laplacian,
    slim_degree_vector,
    slim_diffusion_step,
    slim_graph_conv,
    symmetric_normalize,
    threshold_sparsify,
)
from repro.tensor import Tensor, check_gradients


@pytest.fixture
def adjacency(rng):
    matrix = rng.random((6, 6))
    matrix = (matrix + matrix.T) / 2
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestAdjacencyUtilities:
    def test_degree_vector(self, adjacency):
        assert np.allclose(degree_vector(adjacency), adjacency.sum(axis=1))

    def test_add_self_loops(self, adjacency):
        looped = add_self_loops(adjacency, weight=2.0)
        assert np.allclose(np.diag(looped), 2.0)

    def test_add_self_loops_rejects_non_square(self):
        with pytest.raises(ValueError):
            add_self_loops(np.ones((2, 3)))

    def test_row_normalize_rows_sum_to_one(self, adjacency):
        normalised = row_normalize(adjacency)
        assert np.allclose(normalised.sum(axis=1), 1.0)

    def test_row_normalize_handles_isolated_nodes(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        normalised = row_normalize(matrix)
        assert np.allclose(normalised[2], 0.0)

    def test_random_walk_alias(self, adjacency):
        assert np.allclose(random_walk_matrix(adjacency), row_normalize(adjacency))

    def test_symmetric_normalize_is_symmetric(self, adjacency):
        normalised = symmetric_normalize(adjacency)
        assert np.allclose(normalised, normalised.T)

    def test_scaled_laplacian_eigenvalues_in_range(self, adjacency):
        laplacian = scaled_laplacian(adjacency)
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1.0 - 1e-8
        assert eigenvalues.max() <= 1.0 + 1e-8

    def test_cheb_polynomials_first_two_terms(self, adjacency):
        laplacian = scaled_laplacian(adjacency)
        polynomials = cheb_polynomials(laplacian, order=3)
        assert len(polynomials) == 3
        assert np.allclose(polynomials[0], np.eye(6))
        assert np.allclose(polynomials[1], laplacian)
        assert np.allclose(polynomials[2], 2 * laplacian @ laplacian - np.eye(6))

    def test_cheb_polynomials_invalid_order(self, adjacency):
        with pytest.raises(ValueError):
            cheb_polynomials(adjacency, order=0)

    def test_gaussian_kernel_thresholds_and_no_diagonal(self):
        distances = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        weights = gaussian_kernel_adjacency(distances, sigma=1.0, threshold=0.1)
        assert weights[0, 2] == 0.0  # far pair thresholded away
        assert weights[0, 1] > 0.0
        assert np.allclose(np.diag(weights), 0.0)

    def test_knn_adjacency_row_counts(self, rng):
        distances = rng.random((8, 8))
        distances = (distances + distances.T) / 2
        np.fill_diagonal(distances, 0.0)
        knn = knn_adjacency(distances, k=3, symmetric=False)
        assert np.all(knn.sum(axis=1) == 3)
        symmetric = knn_adjacency(distances, k=3, symmetric=True)
        assert np.allclose(symmetric, symmetric.T)

    def test_knn_invalid_k(self, rng):
        with pytest.raises(ValueError):
            knn_adjacency(np.zeros((4, 4)), k=4)

    def test_threshold_sparsify_keeps_top_entries(self, rng):
        matrix = rng.random((5, 10))
        sparsified = threshold_sparsify(matrix, keep_top=3)
        assert np.all((sparsified > 0).sum(axis=1) == 3)
        # the kept entries are the largest ones
        for row, sparse_row in zip(matrix, sparsified):
            kept = set(np.nonzero(sparse_row)[0])
            expected = set(np.argsort(-row)[:3])
            assert kept == expected

    def test_threshold_sparsify_noop_when_keep_top_large(self, rng):
        matrix = rng.random((3, 4))
        assert np.allclose(threshold_sparsify(matrix, keep_top=10), matrix)


class TestDenseDiffusion:
    def test_returns_powers_of_support(self, adjacency, rng):
        signal = Tensor(rng.normal(size=(6, 3)))
        support = row_normalize(adjacency)
        outputs = dense_diffusion(support, signal, steps=3)
        assert len(outputs) == 3
        assert np.allclose(outputs[1].data, support @ signal.data)
        assert np.allclose(outputs[2].data, support @ support @ signal.data)

    def test_invalid_steps(self, adjacency, rng):
        with pytest.raises(ValueError):
            dense_diffusion(adjacency, Tensor(rng.normal(size=(6, 2))), steps=0)


class TestSlimDiffusion:
    def test_degree_vector_matches_row_sums(self, rng):
        slim = Tensor(rng.random((6, 3)))
        assert np.allclose(slim_degree_vector(slim), slim.data.sum(axis=1))

    def test_single_step_matches_manual_computation(self, rng):
        num_nodes, num_significant, channels = 5, 2, 3
        slim = rng.random((num_nodes, num_significant))
        indices = np.array([1, 3])
        signal = rng.normal(size=(num_nodes, channels))
        result = slim_diffusion_step(Tensor(slim), Tensor(signal), indices).data
        expected = (slim @ signal[indices] + signal) / (slim.sum(axis=1, keepdims=True) + 1.0)
        assert np.allclose(result, expected)

    def test_batched_signal(self, rng):
        slim = Tensor(rng.random((4, 2)))
        signal = Tensor(rng.normal(size=(3, 4, 5)))
        out = slim_diffusion_step(slim, signal, np.array([0, 2]))
        assert out.shape == (3, 4, 5)

    def test_mismatched_indices_raise(self, rng):
        with pytest.raises(ValueError):
            slim_diffusion_step(Tensor(rng.random((4, 3))), Tensor(rng.normal(size=(4, 2))),
                                np.array([0, 1]))

    def test_slim_graph_conv_shapes_and_gradients(self, rng):
        slim = Tensor(rng.random((5, 2)), requires_grad=True)
        signal = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        weights = [Tensor(rng.normal(size=(3, 4)), requires_grad=True) for _ in range(2)]
        indices = np.array([0, 4])
        out = slim_graph_conv(slim, signal, indices, weights)
        assert out.shape == (5, 4)
        assert check_gradients(
            lambda adjacency, x, w0, w1: slim_graph_conv(adjacency, x, indices, [w0, w1]),
            [slim, signal, weights[0], weights[1]],
            atol=1e-4,
        )

    def test_slim_graph_conv_requires_weights(self, rng):
        with pytest.raises(ValueError):
            slim_graph_conv(Tensor(rng.random((3, 2))), Tensor(rng.normal(size=(3, 2))),
                            np.array([0, 1]), [])

    def test_equivalence_with_dense_when_m_equals_n(self, rng):
        """With I = all nodes, the slim diffusion equals the dense formulation."""
        num_nodes, channels = 4, 3
        dense = rng.random((num_nodes, num_nodes))
        indices = np.arange(num_nodes)
        signal = rng.normal(size=(num_nodes, channels))
        slim_result = slim_diffusion_step(Tensor(dense), Tensor(signal), indices).data
        expected = (dense @ signal + signal) / (dense.sum(axis=1, keepdims=True) + 1.0)
        assert np.allclose(slim_result, expected)


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 8), st.integers(1, 5))
def test_property_row_normalised_matrix_is_stochastic(num_nodes, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.random((num_nodes, num_nodes)) + 0.01
    normalised = row_normalize(matrix)
    assert np.allclose(normalised.sum(axis=1), 1.0)
    assert np.all(normalised >= 0.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(4, 9), st.integers(1, 3), st.integers(0, 100))
def test_property_knn_graph_is_connected_enough(num_nodes, k, seed):
    rng = np.random.default_rng(seed)
    points = rng.random((num_nodes, 2))
    distances = np.linalg.norm(points[:, None] - points[None, :], axis=-1)
    adjacency = knn_adjacency(distances, k=min(k, num_nodes - 1))
    assert np.all(adjacency.sum(axis=1) >= min(k, num_nodes - 1))
